"""Squirrel integration mediators — a reproduction of Hull & Zhou,
"A Framework for Supporting Data Integration Using the Materialized and
Virtual Approaches" (SIGMOD 1996).

Quickstart::

    from repro import generate_mediator, make_sources

    SPEC = '''
    source db1 { relation R(r1 key, r2, r3, r4) }
    source db2 { relation S(s1 key, s2, s3) }
    view R_p = project[r1, r2, r3](select[r4 = 100](R))
    view S_p = project[s1, s2](select[s3 < 50](S))
    export T = project[r1, r3, s1, s2](R_p join[r2 = s1] S_p)
    annotate T [r1^m, r3^v, s1^m, s2^v]
    annotate R_p virtual
    annotate S_p virtual
    '''

    sources = make_sources(SPEC, initial={"db1": {"R": [(1, 10, 7, 100)]},
                                          "db2": {"S": [(10, 42, 5)]}})
    mediator = generate_mediator(SPEC, sources)
    print(mediator.query("project[r1, s1](T)").to_sorted_list())

Package map: :mod:`repro.relalg` (algebra substrate), :mod:`repro.deltas`
(Heraclitus deltas), :mod:`repro.sources` (autonomous sources, incl.
SQLite), :mod:`repro.sim` + :mod:`repro.runtime` (discrete-event
environments), :mod:`repro.core` (VDPs and the mediator), :mod:`repro.planner`
(Section 5.3 heuristics), :mod:`repro.generator` (spec language),
:mod:`repro.correctness` (Section 3 checkers), :mod:`repro.workloads` and
:mod:`repro.bench` (experiment scaffolding).
"""

from repro.core import (
    Annotation,
    AnnotatedVDP,
    SquirrelMediator,
    VDP,
    annotate,
    build_vdp,
)
from repro.correctness import (
    assert_view_correct,
    check_consistency,
    check_freshness,
    view_function_from_vdp,
)
from repro.generator import generate_mediator, make_sources, parse_spec
from repro.relalg import parse_expression, parse_predicate
from repro.sources import MemorySource, SQLiteSource

__version__ = "1.0.0"

__all__ = [
    "Annotation",
    "AnnotatedVDP",
    "VDP",
    "SquirrelMediator",
    "annotate",
    "build_vdp",
    "generate_mediator",
    "make_sources",
    "parse_spec",
    "parse_expression",
    "parse_predicate",
    "MemorySource",
    "SQLiteSource",
    "assert_view_correct",
    "check_consistency",
    "check_freshness",
    "view_function_from_vdp",
    "__version__",
]
