"""Exception hierarchy for the Squirrel reproduction.

Every error raised by this package derives from :class:`ReproError`, so
downstream users can catch the whole family with one ``except`` clause while
still being able to distinguish schema problems from planning problems from
runtime mediator faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible.

    Raised, for example, when a projection references an attribute that the
    input relation does not have, or when a join would produce duplicate
    attribute names.
    """


class EvaluationError(ReproError):
    """An algebra expression could not be evaluated against a catalog."""


class ParseError(ReproError):
    """A textual algebra expression or mediator spec failed to parse."""


class DeltaError(ReproError):
    """A delta value is inconsistent or incompatible with its target."""


class VDPError(ReproError):
    """A View Decomposition Plan is structurally invalid.

    Covers violations of the node-definition restrictions of Section 5.1 of
    the paper (e.g. a leaf-parent node using a join, or a difference nested
    under a join within a single node definition).
    """


class AnnotationError(ReproError):
    """An attribute annotation (materialized/virtual) is invalid for its VDP."""


class MediatorError(ReproError):
    """The mediator was driven into an unsupported state at runtime."""


class SourceError(ReproError):
    """A source database rejected an operation (unknown relation, bad delta)."""


class SourceUnavailableError(MediatorError):
    """A source is inside an outage window and cannot be polled.

    Raised instead of hanging when the VAP (or a poll-backed query) needs a
    source whose link is down.  Materialized-only queries keep working —
    served with an explicit staleness tag — so callers can distinguish
    "degraded but answerable" from "requires the unreachable source".
    """

    def __init__(self, source: str, until=None, message=None):
        self.source = source
        self.until = until
        if message is None:
            message = f"source {source!r} is unavailable"
            if until is not None:
                message += f" (outage until t={until})"
        super().__init__(message)


class StaleReadError(MediatorError):
    """No read replica can satisfy a query's staleness budget.

    Raised by :class:`repro.replication.ReadRouter` when routing with
    ``on_stale="reject"``: every replica's lag exceeds the per-query
    budget (a resyncing replica's lag is unbounded).  ``budget`` is the
    budget that failed; ``lags`` maps each replica to its lag at routing
    time, so callers can see how close the freshest copy came — or route
    again with ``on_stale="degrade"`` to accept a tagged stale answer.
    """

    def __init__(self, budget, lags, message=None):
        self.budget = budget
        self.lags = dict(lags)
        if message is None:
            detail = ", ".join(
                f"{name}: {lag:g}" for name, lag in sorted(self.lags.items())
            )
            message = (
                f"no replica within staleness budget {budget:g} "
                f"(lags: {detail or 'no replicas'})"
            )
        super().__init__(message)


class SnapshotStaleError(MediatorError):
    """A persisted snapshot's cursors outrun a source's transaction log.

    Raised by :func:`repro.core.persistence.restore_mediator` (and the
    recovery path built on it) when a source's log has been truncated past
    the saved cursor, so the missed updates can no longer be replayed.
    ``gaps`` maps each such source to ``(saved_cursor, log_floor)`` where
    ``log_floor`` is the lowest transaction sequence the log still holds
    (``source.txn_count + 1`` when the log is empty) — the caller can see
    exactly how far each log fell short.  Pass ``on_stale="reinit"`` to
    fall back to selective re-initialization of only the stale sources'
    subtrees instead.
    """

    def __init__(self, gaps, message=None):
        self.gaps = dict(gaps)
        if message is None:
            detail = ", ".join(
                f"{source}: cursor {cursor} < log floor {floor}"
                for source, (cursor, floor) in sorted(self.gaps.items())
            )
            message = (
                f"snapshot stale for {len(self.gaps)} source(s) ({detail}); "
                'replay impossible — pass on_stale="reinit" for selective '
                "re-initialization"
            )
        super().__init__(message)


class OrphanStateError(MediatorError):
    """A persisted snapshot holds state for sources no longer federated.

    Raised by :func:`repro.core.persistence.restore_mediator` with
    ``on_orphan="raise"`` when the snapshot images nodes (or carries
    cursors) belonging to a source that was detached between save and
    restore.  The default policy (``on_orphan="drop"``) silently discards
    the orphan state instead — a detach is an intentional shrink of the
    federation, not corruption.  ``nodes`` lists the orphan storing nodes,
    ``cursors`` the orphan source cursors.
    """

    def __init__(self, nodes, cursors, message=None):
        self.nodes = sorted(nodes)
        self.cursors = sorted(cursors)
        if message is None:
            message = (
                f"snapshot holds orphan state (nodes {self.nodes}, "
                f"cursors {self.cursors}) for sources outside the current "
                'federation; pass on_orphan="drop" to discard it'
            )
        super().__init__(message)


class SimulatedCrash(ReproError):
    """A crash-injection point fired: the mediator process "dies" here.

    Raised by the durability layer's crash injector
    (:class:`repro.faults.CrashPoint` schedules) so crash-recovery tests can
    kill a mediator at a precisely chosen instant — after a WAL append,
    mid-checkpoint, or mid-record — and then drive recovery over whatever
    the filesystem holds.  Never raised in production configurations.
    """

    def __init__(self, phase: str, txn: int):
        self.phase = phase
        self.txn = txn
        super().__init__(f"injected crash at txn {txn} ({phase})")


class SimulationError(ReproError):
    """The discrete-event simulator was misconfigured or used out of order."""


class PlanningError(ReproError):
    """The annotation planner could not produce a plan for a VDP."""


class ConsistencyError(ReproError):
    """A correctness checker found the recorded trace to be malformed.

    Note: a trace that is well-formed but *inconsistent* is reported through
    checker verdict objects, not exceptions; this error means the trace itself
    could not be analyzed.
    """
