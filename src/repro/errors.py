"""Exception hierarchy for the Squirrel reproduction.

Every error raised by this package derives from :class:`ReproError`, so
downstream users can catch the whole family with one ``except`` clause while
still being able to distinguish schema problems from planning problems from
runtime mediator faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible.

    Raised, for example, when a projection references an attribute that the
    input relation does not have, or when a join would produce duplicate
    attribute names.
    """


class EvaluationError(ReproError):
    """An algebra expression could not be evaluated against a catalog."""


class ParseError(ReproError):
    """A textual algebra expression or mediator spec failed to parse."""


class DeltaError(ReproError):
    """A delta value is inconsistent or incompatible with its target."""


class VDPError(ReproError):
    """A View Decomposition Plan is structurally invalid.

    Covers violations of the node-definition restrictions of Section 5.1 of
    the paper (e.g. a leaf-parent node using a join, or a difference nested
    under a join within a single node definition).
    """


class AnnotationError(ReproError):
    """An attribute annotation (materialized/virtual) is invalid for its VDP."""


class MediatorError(ReproError):
    """The mediator was driven into an unsupported state at runtime."""


class SourceError(ReproError):
    """A source database rejected an operation (unknown relation, bad delta)."""


class SourceUnavailableError(MediatorError):
    """A source is inside an outage window and cannot be polled.

    Raised instead of hanging when the VAP (or a poll-backed query) needs a
    source whose link is down.  Materialized-only queries keep working —
    served with an explicit staleness tag — so callers can distinguish
    "degraded but answerable" from "requires the unreachable source".
    """

    def __init__(self, source: str, until=None, message=None):
        self.source = source
        self.until = until
        if message is None:
            message = f"source {source!r} is unavailable"
            if until is not None:
                message += f" (outage until t={until})"
        super().__init__(message)


class SimulationError(ReproError):
    """The discrete-event simulator was misconfigured or used out of order."""


class PlanningError(ReproError):
    """The annotation planner could not produce a plan for a VDP."""


class ConsistencyError(ReproError):
    """A correctness checker found the recorded trace to be malformed.

    Note: a trace that is well-formed but *inconsistent* is reported through
    checker verdict objects, not exceptions; this error means the trace itself
    could not be analyzed.
    """
