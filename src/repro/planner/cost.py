"""Analytic cost model for annotated VDPs.

Section 5.3 frames the materialized-vs-virtual decision as "an issue of
space vs. performance" and gives qualitative guidance: leaf-parents are
expensive to evaluate (they poll remote sources), non-indexable joins are
very expensive to compute virtually, and rarely-accessed attributes are
candidates for virtualization.  This module turns that guidance into
numbers so the heuristics and the enumerator can rank annotations.

The model takes per-node cardinality *statistics* (measured from live data
via :func:`node_statistics`, or supplied) and a :class:`WorkloadProfile`
(update rates per source, query rate, attribute access frequencies) and
produces a :class:`CostEstimate` with three components:

* ``storage`` — materialized cells held by the mediator;
* ``update_cost`` — expected per-time-unit work to propagate updates,
  including poll penalties when rules must read virtual siblings;
* ``query_cost`` — expected per-time-unit work to answer queries,
  including temp-construction penalties for virtual attributes.

The absolute numbers are unit-less; only comparisons between annotations
of the same VDP are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.derived_from import child_requirements
from repro.core.vdp import VDP, AnnotatedVDP, NodeKind
from repro.correctness.recompute import recompute_all
from repro.relalg import TRUE
from repro.sources.base import SourceDatabase

__all__ = ["WorkloadProfile", "CostEstimate", "CostModel", "node_statistics"]

# Relative expense of one polled row vs one locally scanned row, plus a
# fixed per-poll round-trip charge: Section 5.3's "leaf-parent nodes are
# expensive to evaluate" made concrete.
POLL_ROW_FACTOR = 10.0
POLL_ROUNDTRIP = 50.0


@dataclass(frozen=True)
class WorkloadProfile:
    """How the integration environment is exercised.

    ``attr_access`` maps ``(node, attribute)`` to the fraction of queries
    touching that attribute (the paper's "frequently accessed attributes");
    unspecified attributes default to ``default_access``.
    """

    update_rates: Mapping[str, float] = field(default_factory=dict)  # per source
    query_rate: float = 1.0
    attr_access: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    default_access: float = 0.5

    def update_rate(self, source: str) -> float:
        """Updates per time unit committed by one source."""
        return self.update_rates.get(source, 0.0)

    def access(self, node: str, attr: str) -> float:
        """Fraction of queries touching ``node.attr``."""
        return self.attr_access.get((node, attr), self.default_access)


def node_statistics(
    vdp: VDP, sources: Mapping[str, SourceDatabase]
) -> Dict[str, int]:
    """Measured cardinality of every VDP node over the current sources."""
    return {name: rel.cardinality() for name, rel in recompute_all(vdp, sources).items()}


@dataclass
class CostEstimate:
    """The three cost components of one annotation."""

    storage: float
    update_cost: float
    query_cost: float

    def total(self, storage_weight: float = 0.01) -> float:
        """Scalarized cost; storage is cheap relative to work by default."""
        return self.storage * storage_weight + self.update_cost + self.query_cost

    def __str__(self) -> str:
        return (
            f"storage={self.storage:.0f} update={self.update_cost:.1f} "
            f"query={self.query_cost:.1f}"
        )


class CostModel:
    """Estimates the running cost of an annotation under a workload."""

    def __init__(self, vdp: VDP, statistics: Mapping[str, int], profile: WorkloadProfile):
        self.vdp = vdp
        self.stats = dict(statistics)
        self.profile = profile

    # ------------------------------------------------------------------
    def estimate(self, annotated: AnnotatedVDP) -> CostEstimate:
        """Full cost estimate for one annotation of this VDP."""
        return CostEstimate(
            storage=self._storage(annotated),
            update_cost=self._update_cost(annotated),
            query_cost=self._query_cost(annotated),
        )

    # ------------------------------------------------------------------
    def _size(self, name: str) -> float:
        return float(self.stats.get(name, 0))

    def _storage(self, annotated: AnnotatedVDP) -> float:
        total = 0.0
        for name in self.vdp.non_leaves():
            ann = annotated.annotation(name)
            total += self._size(name) * len(ann.materialized_attrs)
        return total

    def _covered(self, annotated: AnnotatedVDP, node: str, attrs: FrozenSet[str]) -> bool:
        ann = annotated.annotation(node)
        if not ann.materialized_attrs:
            return False
        return set(attrs) <= set(ann.materialized_attrs)

    def _fetch_cost(self, annotated: AnnotatedVDP, node: str, attrs: FrozenSet[str]) -> float:
        """Cost of obtaining ``π_attrs(node)`` (repo read or temp build)."""
        node_obj = self.vdp.node(node)
        if node_obj.is_leaf:
            # Reading a source relation directly is a poll.
            return POLL_ROUNDTRIP + POLL_ROW_FACTOR * self._size(node)
        if self._covered(annotated, node, attrs):
            return self._size(node)  # local scan
        children = self.vdp.children(node)
        if any(self.vdp.node(c).is_leaf for c in children):
            # Leaf-parent: a poll of the source.
            return POLL_ROUNDTRIP + POLL_ROW_FACTOR * self._size(node)
        requirements = child_requirements(
            node_obj.definition, frozenset(attrs), TRUE, self.vdp.schemas()
        )
        cost = self._size(node)  # assembling the temp
        for child, request in requirements.items():
            cost += self._fetch_cost(annotated, child, frozenset(request.attrs))
        return cost

    # ------------------------------------------------------------------
    def _update_cost(self, annotated: AnnotatedVDP) -> float:
        """Expected propagation work per time unit."""
        total = 0.0
        for leaf in self.vdp.leaves():
            source = self.vdp.source_of_leaf(leaf)
            rate = self.profile.update_rate(source)
            if rate <= 0:
                continue
            total += rate * self._propagation_cost(annotated, leaf)
        return total

    def _propagation_cost(self, annotated: AnnotatedVDP, changed: str) -> float:
        """Work to push one update from ``changed`` to every ancestor."""
        cost = 0.0
        affected = {changed}
        for name in self.vdp.topological_order():
            node = self.vdp.node(name)
            if node.is_leaf or not (set(self.vdp.children(name)) & affected):
                continue
            affected.add(name)
            # The rule reads each sibling the definition references.
            requirements = child_requirements(
                node.definition,
                frozenset(node.schema.attribute_names),
                TRUE,
                self.vdp.schemas(),
            )
            for child, request in requirements.items():
                if child in affected:
                    continue  # the delta itself (or a fresher sibling) — not a read
                cost += self._fetch_cost(annotated, child, frozenset(request.attrs))
            # Applying the delta to storage is proportional to stored width.
            cost += len(annotated.annotation(name).materialized_attrs)
        return cost

    # ------------------------------------------------------------------
    def _query_cost(self, annotated: AnnotatedVDP) -> float:
        """Expected per-time-unit query work over the export relations."""
        rate = self.profile.query_rate
        if rate <= 0:
            return 0.0
        total = 0.0
        for export in self.vdp.exports:
            node = self.vdp.node(export)
            for attr in node.schema.attribute_names:
                access = self.profile.access(export, attr)
                if access <= 0:
                    continue
                total += rate * access * self._fetch_cost(
                    annotated, export, frozenset((attr,))
                )
        return total
