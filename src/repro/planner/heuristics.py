"""The Section 5.3 annotation heuristics.

The paper gives "general suggestions about the trade-offs of virtual and
materialized approaches" rather than precise guidelines; this module encodes
them as a deterministic suggestion procedure:

1. **Rarely-accessed attributes are virtualization candidates** — an export
   attribute whose access frequency is below a threshold may be virtual,
   *provided* it can be fetched efficiently later (see rule 3).
2. **Frequently-updated, rarely-read auxiliaries go virtual** (Example
   2.2): a leaf-parent whose source updates much more often than the view
   is queried is kept virtual, so the mediator does not pay continual
   maintenance for data it seldom reads.
3. **Expensive joins need at least their keys materialized** — "the minimal
   suggested amount of materialization for expensive join relations are the
   key attributes from the underlying relations, so that the virtual
   attributes of the join relation can be fetched efficiently" (key-based
   construction).  A join is *expensive* when no equality conjunct can
   drive an index (a pure theta join, like Figure 4's arithmetic
   condition).
4. **Attributes needed by parent rules stay materialized** — Example 5.1
   materializes ``a1``/``b1`` in ``E`` partly because updates propagating
   to ``G`` read them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.core.annotations import MATERIALIZED, VIRTUAL, Annotation
from repro.core.derived_from import child_requirements
from repro.core.vdp import VDP, AnnotatedVDP, NodeKind
from repro.planner.cost import WorkloadProfile
from repro.relalg import TRUE, Join, equi_join_pairs

__all__ = ["suggest_annotation", "is_expensive_join", "attrs_needed_by_parents"]


def is_expensive_join(vdp: VDP, name: str) -> bool:
    """True when the node's definition contains a join no hash index can
    drive (no extractable equality conjunct between operand attribute
    sets)."""
    node = vdp.node(name)
    if node.is_leaf:
        return False

    def scan(expr) -> bool:
        if isinstance(expr, Join):
            left_attrs = frozenset(
                expr.left.infer_schema(vdp.schemas(), "l").attribute_names
            )
            right_attrs = frozenset(
                expr.right.infer_schema(vdp.schemas(), "r").attribute_names
            )
            if expr.condition is not None:
                pairs, _ = equi_join_pairs(expr.condition, left_attrs, right_attrs)
                if not pairs:
                    return True
            return scan(expr.left) or scan(expr.right)
        return any(scan(c) for c in expr.children())

    return scan(node.definition)


def attrs_needed_by_parents(vdp: VDP, name: str) -> FrozenSet[str]:
    """Attributes of ``name`` that some parent's rule must read.

    These must stay cheap to obtain during update propagation; the
    suggestion procedure keeps them materialized on storing nodes.
    """
    needed: Set[str] = set()
    for parent in vdp.parents(name):
        parent_node = vdp.node(parent)
        requirements = child_requirements(
            parent_node.definition,
            frozenset(parent_node.schema.attribute_names),
            TRUE,
            vdp.schemas(),
        )
        request = requirements.get(name)
        if request is not None:
            needed |= set(request.attrs)
    return frozenset(needed)


def suggest_annotation(
    vdp: VDP,
    profile: WorkloadProfile,
    hot_threshold: float = 0.25,
    update_heavy_ratio: float = 2.0,
) -> AnnotatedVDP:
    """Produce the Section 5.3-style suggested annotation for a VDP.

    ``hot_threshold`` — export attributes accessed by at least this
    fraction of queries are materialized.  ``update_heavy_ratio`` — a
    leaf-parent is virtualized when its source's update rate exceeds the
    query rate by this factor (Example 2.2's regime).
    """
    annotations: Dict[str, Annotation] = {}
    exports = set(vdp.exports)

    for name in vdp.non_leaves():
        node = vdp.node(name)
        attrs = node.schema.attribute_names

        if name in exports:
            annotations[name] = _annotate_export(
                vdp, name, profile, hot_threshold
            )
            continue

        if name in vdp.leaf_parents():
            source = vdp.source_of_leaf(vdp.children(name)[0])
            update_rate = profile.update_rate(source)
            if profile.query_rate > 0 and update_rate > update_heavy_ratio * profile.query_rate:
                annotations[name] = Annotation.all_virtual(attrs)
            else:
                annotations[name] = Annotation.all_materialized(attrs)
            continue

        # Internal, non-export node: materialize when expensive to rebuild,
        # keep virtual when cheap (Example 5.1's F).
        if is_expensive_join(vdp, name) or node.kind is NodeKind.SET:
            annotations[name] = Annotation.all_materialized(attrs)
        else:
            annotations[name] = Annotation.all_virtual(attrs)

    return AnnotatedVDP(vdp, annotations)


def _annotate_export(
    vdp: VDP, name: str, profile: WorkloadProfile, hot_threshold: float
) -> Annotation:
    node = vdp.node(name)
    attrs = node.schema.attribute_names
    if node.kind is NodeKind.SET:
        # Set nodes cannot be hybrid; an export set node is materialized.
        return Annotation.all_materialized(attrs)

    keep: Set[str] = set(attrs_needed_by_parents(vdp, name))
    fds = vdp.fds(name)
    # Minimal key materialization for expensive joins (rule 3): keep the
    # children's key attributes that survive into this node.
    if is_expensive_join(vdp, name):
        for child in vdp.children(name):
            child_key = vdp.node(child).schema.key
            keep.update(k for k in child_key if k in attrs)

    marks: Dict[str, str] = {}
    for attr in attrs:
        if attr in keep or profile.access(name, attr) >= hot_threshold:
            marks[attr] = MATERIALIZED
        else:
            marks[attr] = VIRTUAL
    annotation = Annotation.of(marks)
    # A fully virtual *expensive* export would be repolled per query; keep
    # at least the key materialized if one exists.
    if annotation.fully_virtual and is_expensive_join(vdp, name):
        key = node.schema.key or attrs[:1]
        marks.update({k: MATERIALIZED for k in key})
        annotation = Annotation.of(marks)
    return annotation
