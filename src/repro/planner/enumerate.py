"""Exhaustive annotation search for small VDPs.

Complements the Section 5.3 heuristics with ground truth: enumerate a
candidate annotation lattice per node (fully materialized, fully virtual,
plus structured hybrids), score every combination with the
:class:`~repro.planner.cost.CostModel`, and return the ranking.  Practical
for the paper-sized VDPs the benchmarks use (the search space is
``∏ candidates(node)``; nodes contribute 2–4 candidates each).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.annotations import MATERIALIZED, VIRTUAL, Annotation
from repro.core.vdp import VDP, AnnotatedVDP, NodeKind
from repro.errors import AnnotationError, PlanningError
from repro.planner.cost import CostEstimate, CostModel, WorkloadProfile
from repro.planner.heuristics import attrs_needed_by_parents

__all__ = ["RankedAnnotation", "candidate_annotations", "enumerate_annotations", "best_annotation"]


@dataclass
class RankedAnnotation:
    """One scored annotation."""

    annotated: AnnotatedVDP
    estimate: CostEstimate
    total: float

    def describe(self) -> str:
        parts = [
            f"{name}{self.annotated.annotation(name)}"
            for name in self.annotated.vdp.non_leaves()
        ]
        return f"total={self.total:.1f} [{self.estimate}] " + " ".join(parts)


def candidate_annotations(vdp: VDP, name: str) -> List[Annotation]:
    """The annotation lattice considered for one node.

    Always includes fully-materialized; adds fully-virtual when legal, and
    for hybrid-capable bag nodes a "keys + parent-needed attributes only"
    hybrid (the Example 2.3 / Example 5.1 shape).
    """
    node = vdp.node(name)
    attrs = node.schema.attribute_names
    candidates = [Annotation.all_materialized(attrs)]
    candidates.append(Annotation.all_virtual(attrs))
    if node.kind is NodeKind.BAG and len(attrs) > 1:
        keep = set(attrs_needed_by_parents(vdp, name))
        for child in vdp.children(name):
            child_schema = vdp.node(child).schema
            keep.update(k for k in child_schema.key if k in attrs)
        if keep and keep != set(attrs):
            marks = {
                a: (MATERIALIZED if a in keep else VIRTUAL) for a in attrs
            }
            candidates.append(Annotation.of(marks))
    # Deduplicate (the hybrid may coincide with fully-materialized).
    unique: List[Annotation] = []
    for c in candidates:
        if c not in unique:
            unique.append(c)
    return unique


def enumerate_annotations(
    vdp: VDP,
    statistics: Mapping[str, int],
    profile: WorkloadProfile,
    storage_weight: float = 0.01,
    limit: int = 100_000,
) -> List[RankedAnnotation]:
    """Score every candidate annotation combination, best first."""
    names = list(vdp.non_leaves())
    per_node = [candidate_annotations(vdp, n) for n in names]
    space = 1
    for options in per_node:
        space *= len(options)
    if space > limit:
        raise PlanningError(
            f"annotation space of size {space} exceeds limit {limit}; "
            "use the heuristics instead"
        )
    model = CostModel(vdp, statistics, profile)
    ranked: List[RankedAnnotation] = []
    for combo in itertools.product(*per_node):
        try:
            annotated = AnnotatedVDP(vdp, dict(zip(names, combo)))
        except AnnotationError:
            continue  # e.g. a hybrid candidate on a set node
        estimate = model.estimate(annotated)
        ranked.append(
            RankedAnnotation(annotated, estimate, estimate.total(storage_weight))
        )
    ranked.sort(key=lambda r: r.total)
    if not ranked:
        raise PlanningError("no legal annotation found")
    return ranked


def best_annotation(
    vdp: VDP,
    statistics: Mapping[str, int],
    profile: WorkloadProfile,
    storage_weight: float = 0.01,
) -> AnnotatedVDP:
    """The cost-minimal annotation over the candidate lattice."""
    return enumerate_annotations(vdp, statistics, profile, storage_weight)[0].annotated
