"""Annotation planning: the Section 5.3 heuristics made executable.

:mod:`~repro.planner.cost` prices an annotation under a workload profile;
:mod:`~repro.planner.heuristics` implements the paper's qualitative
guidelines; :mod:`~repro.planner.enumerate` searches the candidate lattice
exhaustively for small VDPs (ground truth for the heuristics).
"""

from repro.planner.cost import CostEstimate, CostModel, WorkloadProfile, node_statistics
from repro.planner.enumerate import (
    RankedAnnotation,
    best_annotation,
    candidate_annotations,
    enumerate_annotations,
)
from repro.planner.heuristics import (
    attrs_needed_by_parents,
    is_expensive_join,
    suggest_annotation,
)

__all__ = [
    "WorkloadProfile",
    "CostModel",
    "CostEstimate",
    "node_statistics",
    "suggest_annotation",
    "is_expensive_join",
    "attrs_needed_by_parents",
    "RankedAnnotation",
    "candidate_annotations",
    "enumerate_annotations",
    "best_annotation",
]
