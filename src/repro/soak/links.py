"""The soak harness's source link: outage-aware, harness-clocked.

A :class:`SoakLink` is a :class:`~repro.core.DirectLink` whose transport
is played by the harness: announcements do not flow straight into the
mediator's queue but through the harness's faulty message pump, and the
link can be taken down for a window of harness steps (the churn
schedule's ``outage`` events).

The Eager Compensation Algorithm's FIFO contract — *every announcement
the source sent before answering a poll is delivered before the answer
is used* — still holds: before taking the poll snapshot the link makes
the harness **expedite** every in-flight message for this source
(dropped-and-awaiting-retransmit ones included, since their payload
exists only in the harness's buffers once taken from the source), then
delivers the freshly flushed pending net itself, in sequence.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.links import DirectLink
from repro.errors import SourceUnavailableError
from repro.relalg import Evaluator, Expression, Relation
from repro.sources.base import SourceDatabase

__all__ = ["SoakLink"]


class SoakLink(DirectLink):
    """In-process link whose delivery and availability the harness plays."""

    # The harness drives a single-threaded step clock; polls must not race.
    supports_parallel_poll = False

    def __init__(self, source: SourceDatabase, harness, announces: bool = True):
        super().__init__(source, announcement_sink=None, announces=announces)
        self.harness = harness
        #: Step until which the link is unreachable (half-open), or None.
        self.down_until: Optional[int] = None

    # -- availability ---------------------------------------------------
    def is_available(self) -> bool:
        return self.down_until is None or self.harness.step >= self.down_until

    def outage_until(self) -> Optional[float]:
        return None if self.is_available() else float(self.down_until)

    def now(self) -> Optional[float]:
        return float(self.harness.step)

    # -- polling ---------------------------------------------------------
    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        if not self.is_available():
            raise SourceUnavailableError(
                f"source {self.source_name!r} is down until step {self.down_until}"
            )
        # FIFO / flush-before-answer across the *simulated* network: every
        # message already sent must land in the queue before this snapshot
        # is used, no matter what fate the fault plan had decided for it.
        self.harness.expedite(self.source_name)
        announcement, cursor, snapshot = self.source.poll_transaction_versioned()
        if announcement is not None and self.announces:
            self.harness.deliver_direct(self.source_name, announcement, cursor)
        self.source.query_count += len(queries)
        self.poll_count += 1
        answers: Dict[str, Relation] = {}
        evaluator = Evaluator(snapshot)
        for name, expr in queries.items():
            answer = evaluator.evaluate(expr, name)
            self.polled_rows += answer.cardinality()
            answers[name] = answer
        return answers
