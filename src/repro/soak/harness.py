"""The churn & soak harness: seeded chaos with provable convergence.

One :class:`SoakHarness` run executes a :class:`~repro.generator.ChurnPlan`
against a live mediator, step by step:

1. **churn** — ``leave`` events detach sources (dropping their in-flight
   messages), ``join`` events attach new or previously detached sources
   with staleness-tagged backfill, ``outage`` events take links down for a
   window of steps, ``update`` events commit deterministic source
   transactions;
2. **messaging** — announcements are taken from announcing members and
   pushed through a :class:`~repro.faults.FaultPlan`: drops retransmit on
   later steps, delays hold delivery, duplicates exercise the queue's
   sequence-number dedup.  All of it is a pure function of the seed;
3. **propagation** — one IUP transaction per step; transactions deferred
   by an outage retry on later steps.  A :class:`~repro.faults.CrashSchedule`
   may kill the mediator mid-durability-protocol, after which the harness
   runs full recovery (:class:`~repro.durability.RecoveryManager`) and
   carries on;
4. **freshness** — each step's staleness tag is checked against the
   Theorem 7.2 SLO bound for announcing members (see
   ``docs/scenarios.md`` for the bound's derivation and the attach-age
   adjustment);
5. **convergence checkpoints** — periodically the harness clears
   outages, drains the network, quiesces, and proves *churned ≡ static*:
   every export equals a freshly generated mediator over the same member
   set and live sources, and every materialized repository equals a
   from-scratch rebuild.

Any discrepancy is recorded as a violation in the :class:`SoakResult`
(the ``repro soak`` CLI turns violations into a non-zero exit).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.correctness import (
    assert_materialized_correct,
    assert_view_correct,
    check_tagged_staleness,
)
from repro.deltas import SetDelta
from repro.durability import (
    CheckpointPolicy,
    DurabilityManager,
    RecoveryManager,
)
from repro.errors import SimulatedCrash, SourceUnavailableError
from repro.faults import CrashPoint, CrashSchedule, ChannelFaults, FaultPlan
from repro.faults.staleness import StalenessTag
from repro.generator import (
    ChurnPlan,
    FederationSpec,
    build_annotated_from_spec,
    generate_mediator,
    make_federation,
    make_sources,
    plan_events,
)
from repro.generator.federation import KEY_DOMAIN, _subrng
from repro.faults.reliable import BackoffPolicy
from repro.obs.export import export_jsonl
from repro.obs.profile import CostProfiler
from repro.obs.telemetry import (
    BurnRateAlert,
    FreshnessBurnRateMonitor,
    TelemetryPipeline,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import Row
from repro.replication import ReplicaMediator, WalShipper
from repro.soak.links import SoakLink

__all__ = ["SoakConfig", "SoakHarness", "SoakResult", "SoakStats", "run_soak"]


#: Mild default chaos: every channel loses, duplicates, and delays some
#: messages.  ``fault_free_after_attempt`` (plan default 3) guarantees every
#: retransmission chain terminates, bounding delivery latency.
DEFAULT_CHANNEL_FAULTS = ChannelFaults(
    drop_rate=0.10,
    duplicate_rate=0.10,
    delay_rate=0.20,
    reorder_rate=0.10,
    delay_range=(1.0, 2.0),
    max_duplicates=2,
)


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's parameters (everything derives from ``seed``)."""

    sources: int = 50
    seed: int = 0
    steps: int = 40
    checkpoint_every: int = 10
    #: Theorem 7.2 SLO bound (steps) applied to announcing members' tagged
    #: staleness; see ``docs/scenarios.md`` for the derivation.
    staleness_bound: float = 15.0
    updates_per_step: Optional[int] = None
    faults: Optional[FaultPlan] = None
    #: ``(txn, phase)`` crash points; non-empty implies durability.
    crash_points: Tuple[Tuple[int, str], ...] = ()
    durability_dir: Optional[str] = None
    eca_enabled: bool = True
    key_based_enabled: bool = True
    #: Hash-partitioned parallel propagation (1 = serial, the default).
    shards: int = 1
    #: Node-repository storage layout (``"row"`` or ``"columnar"``).
    layout: str = "row"
    #: WAL-shipped read replicas fed by the durability manager (implies
    #: durability).  Each replica applies shipped records over the fault
    #: plan's ``ship:replica-<i>`` channels, is checked for lag-SLO burn
    #: every step, and must equal the primary's materialized state at
    #: every convergence checkpoint.
    replicas: int = 0
    #: How many members (lowest-sorted names) are backed by SQLite rather
    #: than memory; defaults to 1 when replicas are enabled, else 0.
    sqlite_sources: Optional[int] = None
    #: When set, the run streams continuous telemetry into this directory:
    #: ``metrics.jsonl`` (cadenced registry snapshots + burn-rate alerts),
    #: ``trace.jsonl`` (the schema-validated trace), and ``profile.json``
    #: (the folded :class:`~repro.obs.profile.CostProfile`).
    telemetry_dir: Optional[str] = None
    #: Steps between metrics snapshots in the telemetry stream.
    telemetry_cadence: int = 1


@dataclass
class SoakStats:
    """Counters registered as ``soak.*`` in the mediator's metrics."""

    attaches: int = 0
    detaches: int = 0
    outages: int = 0
    updates_applied: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    deferred_txns: int = 0
    crashes: int = 0
    recoveries: int = 0
    convergence_checks: int = 0
    backfill_rows: int = 0
    #: Replica-fleet rebuilds forced by membership changes or recovery.
    replica_rebuilds: int = 0


@dataclass
class SoakResult:
    """What one soak run observed."""

    config: SoakConfig
    steps_run: int
    final_members: Tuple[str, ...]
    convergence_violations: List[str] = field(default_factory=list)
    slo_violations: List[str] = field(default_factory=list)
    worst_staleness: Dict[str, float] = field(default_factory=dict)
    checkpoints: List[Dict] = field(default_factory=list)
    stats: SoakStats = field(default_factory=SoakStats)
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Burn-rate alerts raised by the live SLO monitors (the telemetry
    #: pipeline's per-source monitor and the per-replica lag monitor).
    alerts: List[BurnRateAlert] = field(default_factory=list)
    #: Worst observed per-replica lag (steps), by replica name.
    replica_worst_lag: Dict[str, float] = field(default_factory=dict)
    telemetry_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no convergence or SLO violation was recorded."""
        return not self.convergence_violations and not self.slo_violations


class _Message:
    """One announcement in flight across the simulated network."""

    __slots__ = ("source", "seq", "delta", "cursor", "send_step", "attempt",
                 "deliver_at", "retry_at", "copies")

    def __init__(self, source: str, seq: int, delta: SetDelta, cursor: int,
                 send_step: int):
        self.source = source
        self.seq = seq
        self.delta = delta
        self.cursor = cursor
        self.send_step = send_step
        self.attempt = 0
        self.deliver_at: Optional[int] = None
        self.retry_at: Optional[int] = None
        self.copies = 1


class SoakHarness:
    """Drives one seeded churn & soak run; see the module docstring."""

    def __init__(self, config: SoakConfig, tracer: Tracer = NULL_TRACER):
        self.config = config
        # Telemetry needs a live trace stream (for the profiler and the
        # exported trace.jsonl); upgrade the default disabled tracer.
        if config.telemetry_dir and not tracer.enabled:
            tracer = Tracer(enabled=True)
        self.tracer = tracer
        self.profiler: Optional[CostProfiler] = None
        self.telemetry: Optional[TelemetryPipeline] = None
        if config.telemetry_dir:
            os.makedirs(config.telemetry_dir, exist_ok=True)
            self.profiler = CostProfiler().attach(tracer)
            self.telemetry = TelemetryPipeline(
                os.path.join(config.telemetry_dir, "metrics.jsonl"),
                # A callable, not a registry: crash recovery replaces the
                # mediator (and its registry) mid-run.
                snapshot_fn=lambda: self.mediator.metrics.snapshot(),
                bound=config.staleness_bound,
                cadence=config.telemetry_cadence,
                tracer=tracer,
            )
        self.fed: FederationSpec = make_federation(config.sources, seed=config.seed)
        self.plan: ChurnPlan = plan_events(
            self.fed, config.steps, updates_per_step=config.updates_per_step
        )
        self.faults = config.faults or FaultPlan(
            seed=config.seed, default=DEFAULT_CHANNEL_FAULTS
        )
        self.step = 0
        self.members: set = set(self.plan.initial_members)
        self.stats = SoakStats()
        self.result = SoakResult(
            config=config, steps_run=0, final_members=(), stats=self.stats
        )
        # All source objects ever created; a source keeps accumulating
        # committed transactions while detached, so re-attach backfills
        # real divergence.
        spec = self.fed.spec_text_for(sorted(self.members))
        self.sources = make_sources(spec, self.fed.initial_data(sorted(self.members)))
        # Heterogeneous backends: the first N sorted members live in
        # SQLite, exercising the pushdown source under churn, shipping,
        # and recovery exactly like the memory-backed ones.
        n_sqlite = config.sqlite_sources
        if n_sqlite is None:
            n_sqlite = 1 if config.replicas > 0 else 0
        for name in sorted(self.members)[:n_sqlite]:
            self.sources.update(
                make_sources(
                    self.fed.spec_text_for([name]),
                    self.fed.initial_data([name]),
                    backend="sqlite",
                )
            )
        self.links: Dict[str, SoakLink] = {
            name: SoakLink(self.sources[name], self) for name in sorted(self.sources)
        }
        self.in_flight: Dict[str, List[_Message]] = {}
        self._update_counts: Dict[str, int] = {}
        self._fresh_keys: Dict[str, int] = {}
        self._live_rows: Dict[str, List[Tuple[int, int, int]]] = {
            name: list(self.fed.initial_rows(name)) for name in self.sources
        }
        # Per-source freshness floor: the latest step at which the
        # source's state was known fully reflected (init, attach
        # backfill, recovery catch-up, or a quiesced checkpoint).
        self.reflected_floor: Dict[str, int] = {name: 0 for name in self.members}

        self.mediator = generate_mediator(
            spec,
            self.sources,
            eca_enabled=config.eca_enabled,
            key_based_enabled=config.key_based_enabled,
            shards=config.shards,
            layout=config.layout,
            tracer=tracer,
        )
        # generate_mediator builds its own DirectLinks; swap in the
        # harness-played links (with correct announce flags) post-init.
        self._install_links()
        self.mediator.metrics.register_stats("soak", self.stats)

        self.durability: Optional[DurabilityManager] = None
        self.durability_dir: Optional[str] = None
        if config.crash_points or config.durability_dir or config.replicas > 0:
            self.durability_dir = config.durability_dir or tempfile.mkdtemp(
                prefix="repro-soak-"
            )
            schedule = CrashSchedule(
                [CrashPoint(txn, phase) for txn, phase in config.crash_points]
            )
            self.durability = DurabilityManager.attach(
                self.mediator, self.durability_dir, crash_schedule=schedule
            )

        self.shipper: Optional[WalShipper] = None
        self.replicas: List[ReplicaMediator] = []
        self.replica_monitor: Optional[FreshnessBurnRateMonitor] = None
        if config.replicas > 0:
            self.replica_monitor = FreshnessBurnRateMonitor(
                bound=config.staleness_bound
            )
            self._rebuild_replication()

    # ------------------------------------------------------------------
    # Read replicas
    # ------------------------------------------------------------------
    def _rebuild_replication(self) -> None:
        """(Re)build the replica fleet against the current membership.

        Called at startup and after any event that invalidates the fleet's
        schema or shipping tap: attach/detach (the member set changed, and
        both leave a fresh full checkpoint to resync from) and crash
        recovery (the durability manager itself was replaced).  Each
        rebuild bootstraps every replica from the newest checkpoint chain
        plus the live WAL tail — counted in ``replication.replica_resyncs``.
        """
        if self.config.replicas <= 0 or self.durability is None:
            return
        if self.shipper is not None:
            self.shipper.close()
            self.stats.replica_rebuilds += 1
        self.shipper = WalShipper(
            self.durability,
            faults=self.faults,
            policy=BackoffPolicy(),
            tracer=self.tracer,
        )
        members = sorted(self.members)
        member_sources = {n: self.sources[n] for n in members}
        self.replicas = []
        for i in range(self.config.replicas):
            replica = ReplicaMediator(
                f"replica-{i}",
                build_annotated_from_spec(self.fed.spec_text_for(members)),
                member_sources,
                self.durability_dir,
                tracer=self.tracer,
                eca_enabled=self.config.eca_enabled,
                key_based_enabled=self.config.key_based_enabled,
                # Promotion is the only moment a replica propagates (and so
                # polls); serial polls keep thread-bound SQLite sources safe.
                parallel_polls=False,
            )
            self.replicas.append(replica)
            self.shipper.attach_replica(replica, now=float(self.step))

    def _tick_replication(self) -> None:
        """Advance shipping one step and check every replica's lag SLO."""
        if self.shipper is None:
            return
        now = float(self.step)
        self.shipper.tick(now)
        observed: Dict[str, float] = {}
        for replica in self.replicas:
            lag = replica.lag(now)
            # A mid-resync replica's lag is unbounded; feed the monitor a
            # finite over-bound reading so the burn-rate math stays sane
            # while still guaranteeing an alert if it persists.
            value = (
                lag
                if lag != float("inf")
                else 2.0 * self.config.staleness_bound
            )
            observed[replica.name] = value
            if value > self.result.replica_worst_lag.get(replica.name, 0.0):
                self.result.replica_worst_lag[replica.name] = value
        if self.replica_monitor is not None and observed:
            for alert in self.replica_monitor.observe(self.step, observed):
                self.result.alerts.append(alert)
                self.result.slo_violations.append(
                    f"step {alert.step}: replica {alert.source} lag burn-rate "
                    f"alert ({alert.staleness:g} vs bound {alert.bound:g})"
                )

    # ------------------------------------------------------------------
    # Link plumbing
    # ------------------------------------------------------------------
    def _install_links(self) -> None:
        for name in self.mediator.sources:
            link = self.links[name]
            kind = self.mediator.contributor_kinds.get(name)
            link.announces = bool(kind and kind.announces)
            self.mediator.links[name] = link
        self.mediator.vap.links = dict(self.mediator.links)

    def deliver_direct(self, source: str, delta: SetDelta, cursor: int) -> None:
        """Deliver one just-flushed announcement synchronously (poll path)."""
        self.mediator.enqueue_update(
            source,
            delta,
            send_time=float(self.step),
            arrival_time=float(self.step),
            seq=cursor,
            cursor=cursor,
        )
        self.stats.messages_sent += 1
        self.stats.messages_delivered += 1

    def expedite(self, source: str) -> None:
        """Force-deliver every in-flight message for one source, in order."""
        pending = self.in_flight.pop(source, None)
        if not pending:
            return
        for msg in sorted(pending, key=lambda m: m.seq):
            self._deliver(msg)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _deliver(self, msg: _Message) -> None:
        for _ in range(max(1, msg.copies)):
            self.mediator.enqueue_update(
                msg.source,
                msg.delta,
                send_time=float(msg.send_step),
                arrival_time=float(self.step),
                seq=msg.seq,
                cursor=msg.cursor,
            )
            self.stats.messages_delivered += 1

    def _transmit(self, msg: _Message) -> None:
        """Decide one physical transmission's fate per the fault plan."""
        decision = self.faults.decide(
            msg.source, msg.seq, msg.attempt, now=float(self.step)
        )
        if decision.drop:
            self.stats.messages_dropped += 1
            msg.attempt += 1
            msg.retry_at = self.step + 1
            msg.deliver_at = None
        else:
            msg.retry_at = None
            msg.deliver_at = self.step + int(round(decision.extra_delay))
            msg.copies = 1 + decision.duplicates
            self.stats.duplicates += decision.duplicates

    def _pump(self) -> None:
        """Take announcements from reachable announcing members and move
        the in-flight mail one step forward."""
        for name in sorted(self.members):
            kind = self.mediator.contributor_kinds.get(name)
            if not (kind and kind.announces):
                continue
            if not self.links[name].is_available():
                continue  # a down link sends nothing; pending accumulates
            delta, cursor = self.sources[name].take_announcement_versioned()
            if delta is None:
                continue
            msg = _Message(name, cursor, delta, cursor, self.step)
            self.stats.messages_sent += 1
            self._transmit(msg)
            self.in_flight.setdefault(name, []).append(msg)
        for name in sorted(self.in_flight):
            remaining: List[_Message] = []
            for msg in sorted(self.in_flight[name], key=lambda m: m.seq):
                if msg.retry_at is not None and self.step >= msg.retry_at:
                    self.stats.retransmissions += 1
                    self._transmit(msg)
                # Head-of-line blocking restores Section 4's per-source
                # in-order contract across steps: once one message is held
                # back (dropped awaiting retry, or delayed), every
                # later-seq sibling waits behind it.  Without this, a
                # delayed insert can be overtaken by the matching delete —
                # the queue's in-queue reorder defense cannot help when the
                # earlier message is still on the wire at flush time, and
                # the reversed fold corrupts leaf-parent bag
                # multiplicities.  (The replication path gets the same
                # guarantee from :class:`~repro.faults.ReliableInbox`.)
                if (
                    not remaining
                    and msg.deliver_at is not None
                    and self.step >= msg.deliver_at
                ):
                    self._deliver(msg)
                else:
                    remaining.append(msg)
            if remaining:
                self.in_flight[name] = remaining
            else:
                self.in_flight.pop(name, None)

    def _drain_network(self) -> None:
        for name in sorted(self.in_flight):
            self.expedite(name)

    # ------------------------------------------------------------------
    # Churn events
    # ------------------------------------------------------------------
    def _apply_update(self, name: str) -> None:
        count = self._update_counts.get(name, 0)
        self._update_counts[name] = count + 1
        rng = _subrng(self.config.seed, "op", name, count)
        relation = self.fed.relation(name)
        k, a, b = self.fed.attributes(name)
        rows = self._live_rows[name]
        delta = SetDelta()
        if rows and rng.random() < 0.3:
            victim = rows.pop(rng.randrange(len(rows)))
            delta.delete(relation, Row({k: victim[0], a: victim[1], b: victim[2]}))
        else:
            key = KEY_DOMAIN + self._fresh_keys.get(name, 0)
            self._fresh_keys[name] = key - KEY_DOMAIN + 1
            row = (key, rng.randrange(KEY_DOMAIN), rng.randrange(1000))
            rows.append(row)
            delta.insert(relation, Row({k: row[0], a: row[1], b: row[2]}))
        self.sources[name].execute(delta)
        self.stats.updates_applied += 1

    def _attach(self, name: str) -> None:
        if name not in self.sources:
            spec = self.fed.spec_text_for([name])
            self.sources.update(make_sources(spec, self.fed.initial_data([name])))
            self.links[name] = SoakLink(self.sources[name], self)
            self._live_rows[name] = list(self.fed.initial_rows(name))
        views, annotations = self.fed.attach_payload(name, sorted(self.members))
        link = self.links[name]
        link.down_until = None
        try:
            result = self.mediator.attach_source(
                self.sources[name], views, annotations, link=link
            )
        except SourceUnavailableError:
            # The plan never schedules a join during a *planned* outage,
            # but crash/recovery timing can still leave a partner down at
            # backfill time; model the join as waiting out the outage.
            for other in self.links.values():
                other.down_until = None
            result = self.mediator.attach_source(
                self.sources[name], views, annotations, link=link
            )
        self.members.add(name)
        self.reflected_floor[name] = self.step
        self.stats.attaches += 1
        self.stats.backfill_rows += result.backfill_rows
        # attach_source checkpoints (full) under durability, so the fleet
        # can re-baseline against the widened membership immediately.
        self._rebuild_replication()

    def _detach(self, name: str) -> None:
        self.mediator.detach_source(name)
        self.members.discard(name)
        self.in_flight.pop(name, None)
        self.stats.detaches += 1
        self._rebuild_replication()

    def _apply_events(self) -> None:
        # Tolerant of plan/actual membership divergence: a crash during an
        # attach/detach checkpoint recovers to the *pre-change* membership,
        # losing that membership event — later planned events referring to
        # the diverged state are skipped rather than failed.
        for event in self.plan.events_at(self.step):
            try:
                if event.kind == "leave" and event.source in self.members:
                    self._detach(event.source)
                elif event.kind == "join" and event.source not in self.members:
                    self._attach(event.source)
                elif event.kind == "outage" and event.source in self.members:
                    self.links[event.source].down_until = self.step + event.duration
                    self.stats.outages += 1
                elif event.kind == "update" and event.source in self.sources:
                    # Detached sources keep committing — re-attach backfills
                    # the divergence.
                    self._apply_update(event.source)
            except SimulatedCrash:
                self._recover()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.stats.crashes += 1
        if self.durability is not None:
            self.durability.close()
        # In-flight payloads are already in the source logs; recovery's
        # catch-up replays them from there, so delivering stale copies
        # afterwards would be wrong.
        self.in_flight.clear()
        annotated = build_annotated_from_spec(
            self.fed.spec_text_for(sorted(self.members))
        )
        member_sources = {n: self.sources[n] for n in sorted(self.members)}
        member_links = {n: self.links[n] for n in sorted(self.members)}
        recovery = RecoveryManager(self.durability_dir).recover(
            annotated,
            member_sources,
            on_stale="reinit",
            links=member_links,
            eca_enabled=self.config.eca_enabled,
            key_based_enabled=self.config.key_based_enabled,
            shards=self.config.shards,
            layout=self.config.layout,
            tracer=self.tracer,
        )
        self.mediator = recovery.mediator
        self._install_links()
        self.mediator.metrics.register_stats("soak", self.stats)
        self.durability = DurabilityManager.attach(
            self.mediator,
            self.durability_dir,
            crash_schedule=self.durability.crash_schedule if self.durability else None,
        )
        # Recovery's catch-up replays every member's source log to its
        # current end, so every member's state is known reflected as of now.
        for name in self.members:
            self.reflected_floor[name] = self.step
        self.stats.recoveries += 1
        # The shipper's tap died with the old durability manager; rebuild
        # the fleet against the recovered one.
        self._rebuild_replication()

    def _run_txn(self) -> None:
        try:
            result = self.mediator.run_update_transaction()
            if result.deferred:
                self.stats.deferred_txns += 1
        except SimulatedCrash:
            self._recover()

    # ------------------------------------------------------------------
    # Freshness SLO
    # ------------------------------------------------------------------
    def _check_slo(self) -> None:
        tag = self.mediator.staleness_tag(now=float(self.step))
        adjusted: Dict[str, float] = {}
        for name, value in tag.staleness.items():
            # The SLO is checked on the *ignorance window* — time since
            # the newest source state known fully reflected — which is the
            # queue's now−last_flushed_send measure capped by the floor a
            # backfill, recovery catch-up, or quiesced checkpoint
            # established (the queue's bookkeeping restarts empty after a
            # recovery, so its "stale since init" fallback over-reports).
            age = float(self.step - self.reflected_floor.get(name, 0))
            adjusted[name] = min(value, age)
        bound = {
            name: self.config.staleness_bound
            for name in sorted(self.members)
            if (kind := self.mediator.contributor_kinds.get(name)) and kind.announces
        }
        if adjusted:
            tags = [StalenessTag(time=tag.time, staleness=adjusted)]
            for violation in check_tagged_staleness(tags, bound):
                self.result.slo_violations.append(violation)
            for name, value in adjusted.items():
                if value > self.result.worst_staleness.get(name, 0.0):
                    self.result.worst_staleness[name] = value
        if self.telemetry is not None:
            # The burn monitor sees every announcing member every step —
            # a fresh reading when the tag has one, a zero burn otherwise
            # — so the fast/slow windows stay step-aligned across sources.
            observed = {name: adjusted.get(name, 0.0) for name in sorted(bound)}
            self.result.alerts.extend(self.telemetry.observe(self.step, observed))

    # ------------------------------------------------------------------
    # Convergence checkpoints
    # ------------------------------------------------------------------
    def _quiesce(self) -> bool:
        for link in self.links.values():
            link.down_until = None
        for _ in range(200):
            self._drain_network()
            pumped_any = False
            for name in sorted(self.members):
                kind = self.mediator.contributor_kinds.get(name)
                if not (kind and kind.announces):
                    continue
                delta, cursor = self.sources[name].take_announcement_versioned()
                if delta is not None:
                    self.deliver_direct(name, delta, cursor)
                    pumped_any = True
            try:
                result = self.mediator.run_update_transaction()
            except SimulatedCrash:
                self._recover()
                continue
            if (
                not pumped_any
                and result.was_empty
                and not result.deferred
                and self.mediator.queue.is_empty()
            ):
                return True
        return False

    def _check_convergence(self) -> None:
        self.stats.convergence_checks += 1
        step = self.step
        violations_before = len(self.result.convergence_violations)
        if not self._quiesce():
            self.result.convergence_violations.append(
                f"step {step}: failed to quiesce within the iteration cap"
            )
            return
        for name in self.members:
            self.reflected_floor[name] = step
        try:
            assert_materialized_correct(self.mediator)
        except AssertionError as exc:
            self.result.convergence_violations.append(f"step {step}: {exc}")
        try:
            assert_view_correct(self.mediator)
        except AssertionError as exc:
            self.result.convergence_violations.append(f"step {step}: {exc}")
        # The headline churned ≡ static property: a mediator *freshly
        # generated* over the surviving member set and the same live
        # sources must agree on every export.
        members = sorted(self.members)
        fresh = generate_mediator(
            self.fed.spec_text_for(members),
            {n: self.sources[n] for n in members},
            eca_enabled=self.config.eca_enabled,
            key_based_enabled=self.config.key_based_enabled,
        )
        if set(self.mediator.vdp.exports) != set(fresh.vdp.exports):
            self.result.convergence_violations.append(
                f"step {step}: export sets diverged "
                f"(churned {sorted(self.mediator.vdp.exports)}, "
                f"static {sorted(fresh.vdp.exports)})"
            )
        else:
            for export in sorted(fresh.vdp.exports):
                churned = self.mediator.query_relation(export)
                static = fresh.query_relation(export)
                if churned != static:
                    self.result.convergence_violations.append(
                        f"step {step}: export {export!r} diverged from the "
                        f"statically built mediator"
                    )
        # Replica ≡ primary: after a full drain of the shipping pipeline
        # every replica's materialized repositories must equal the
        # primary's, node for node.  (Repos, not exports: bulk-tier
        # exports are virtual, and a replica never polls a source.)
        if self.shipper is not None:
            self.shipper.drain(float(step))
            primary_repos = self.mediator.store.repos()
            for replica in self.replicas:
                assert replica.mediator is not None
                replica_repos = replica.mediator.store.repos()
                if set(replica_repos) != set(primary_repos):
                    self.result.convergence_violations.append(
                        f"step {step}: {replica.name} node sets diverged "
                        f"(replica {sorted(replica_repos)}, "
                        f"primary {sorted(primary_repos)})"
                    )
                    continue
                for node in sorted(primary_repos):
                    if replica_repos[node] != primary_repos[node]:
                        self.result.convergence_violations.append(
                            f"step {step}: {replica.name} diverged from the "
                            f"primary on node {node!r}"
                        )
        self.result.checkpoints.append(
            {
                "step": step,
                "members": len(members),
                "violations": len(self.result.convergence_violations)
                - violations_before,
            }
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SoakResult:
        """Execute the whole schedule; returns the populated result."""
        for step in range(self.config.steps):
            self.step = step
            self._apply_events()
            self._pump()
            self._run_txn()
            self._tick_replication()
            self._check_slo()
            self.result.steps_run = step + 1
            if (step + 1) % self.config.checkpoint_every == 0:
                self._check_convergence()
        if self.config.steps % self.config.checkpoint_every != 0:
            self.step = self.config.steps
            self._check_convergence()
        self.result.final_members = tuple(sorted(self.members))
        self.result.metrics = {
            name: value
            for name, value in self.mediator.metrics.snapshot().items()
            if isinstance(value, (int, float))
        }
        if self.telemetry is not None and self.profiler is not None:
            final_step = float(self.config.steps)
            profile = self.profiler.profile()
            self.telemetry.write_profile(final_step, profile.to_dict())
            self.telemetry.close(step=final_step)
            telemetry_dir = self.config.telemetry_dir
            assert telemetry_dir is not None
            with open(os.path.join(telemetry_dir, "profile.json"), "w") as handle:
                handle.write(profile.to_json(indent=2) + "\n")
            export_jsonl(self.tracer, os.path.join(telemetry_dir, "trace.jsonl"))
            self.result.telemetry_dir = telemetry_dir
        if self.shipper is not None:
            self.shipper.close()
        if self.durability is not None:
            self.durability.close()
        return self.result


def run_soak(config: SoakConfig, tracer: Tracer = NULL_TRACER) -> SoakResult:
    """Run one soak schedule; see :class:`SoakHarness`."""
    return SoakHarness(config, tracer=tracer).run()
