"""Long-running churn & soak harness over generated federations.

Composes the fault plans (:mod:`repro.faults`), crash schedules and
recovery (:mod:`repro.durability`), freshness SLOs
(:mod:`repro.correctness.freshness`) and dynamic federation membership
(:meth:`repro.core.SquirrelMediator.attach_source` /
:meth:`~repro.core.SquirrelMediator.detach_source`) into one verifiable
workload: a seeded schedule of join / leave / outage / update events runs
against a mediator while every message crosses a faulty simulated
network, and at periodic checkpoints the harness proves *churned ≡
static* — the churned mediator's state equals a mediator freshly built
over the surviving member set — and that tagged staleness stayed within
the configured SLO bound.
"""

from repro.soak.harness import (
    SoakConfig,
    SoakHarness,
    SoakResult,
    SoakStats,
    run_soak,
)
from repro.soak.links import SoakLink
from repro.soak.report import slo_report, write_slo_report

__all__ = [
    "SoakConfig",
    "SoakHarness",
    "SoakLink",
    "SoakResult",
    "SoakStats",
    "run_soak",
    "slo_report",
    "write_slo_report",
]
