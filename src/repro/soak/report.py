"""Machine-readable freshness-SLO / convergence report for soak runs.

The report is the artifact the ``soak-smoke`` CI job uploads: a single
JSON document with the run's configuration, every violation, worst
observed per-source staleness, checkpoint summaries, and the soak
counters — enough to audit a run without re-executing it.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict

from repro.soak.harness import SoakResult

__all__ = ["slo_report", "write_slo_report"]


def slo_report(result: SoakResult) -> Dict:
    """The report document for one finished run (JSON-serializable)."""
    config = result.config
    return {
        "kind": "soak-slo-report",
        "version": 1,
        "ok": result.ok,
        "config": {
            "sources": config.sources,
            "seed": config.seed,
            "steps": config.steps,
            "checkpoint_every": config.checkpoint_every,
            "staleness_bound": config.staleness_bound,
            "crash_points": [list(p) for p in config.crash_points],
            "replicas": config.replicas,
        },
        "steps_run": result.steps_run,
        "final_members": list(result.final_members),
        "convergence": {
            "checkpoints": result.checkpoints,
            "violations": result.convergence_violations,
        },
        "freshness": {
            "bound": config.staleness_bound,
            "worst_staleness": {
                name: value
                for name, value in sorted(result.worst_staleness.items())
            },
            "violations": result.slo_violations,
            "burn_rate_alerts": [alert.as_dict() for alert in result.alerts],
        },
        "replication": {
            "replicas": config.replicas,
            "worst_lag": {
                name: value
                for name, value in sorted(result.replica_worst_lag.items())
            },
        },
        "telemetry_dir": result.telemetry_dir,
        "counters": asdict(result.stats),
    }


def write_slo_report(result: SoakResult, path: str) -> Dict:
    """Write the report JSON to ``path``; returns the document."""
    document = slo_report(result)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
