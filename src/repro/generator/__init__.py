"""The Squirrel generator: mediator specs → deployed mediators."""

from repro.generator.federation import (
    ChurnEvent,
    ChurnPlan,
    FederationSource,
    FederationSpec,
    make_federation,
    plan_events,
)
from repro.generator.generate import (
    build_annotated_from_spec,
    build_vdp_from_spec,
    generate_mediator,
    make_sources,
)
from repro.generator.spec import (
    MediatorSpec,
    RelationSpec,
    SourceSpec,
    ViewSpec,
    parse_spec,
)

__all__ = [
    "MediatorSpec",
    "SourceSpec",
    "RelationSpec",
    "ViewSpec",
    "parse_spec",
    "build_annotated_from_spec",
    "build_vdp_from_spec",
    "generate_mediator",
    "make_sources",
    "FederationSource",
    "FederationSpec",
    "ChurnEvent",
    "ChurnPlan",
    "make_federation",
    "plan_events",
]
