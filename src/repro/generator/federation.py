"""Randomized large federations with seeded churn schedules.

The soak suite (:mod:`repro.soak`) needs federations of hundreds of
autonomous sources whose membership changes while updates flow.  This
module generates them deterministically from a single seed:

* :func:`make_federation` — ``n`` sources in three *tiers* (``curated`` /
  ``expanded`` / ``bulk``) that map onto the paper's annotation spectrum
  (fully materialized / hybrid / fully virtual), each contributing one
  relation ``R<i>(k<i> key, a<i>, b<i>)`` and a leaf-parent view, plus a
  sparse layer of materialized join views between partner sources;
* :meth:`FederationSpec.spec_text_for` — the mediator-spec text for any
  member subset, byte-identical for equal inputs (the determinism
  contract pinned by the suite);
* :meth:`FederationSpec.attach_payload` — the views/annotations a source
  brings when it joins a running federation via
  :meth:`~repro.core.SquirrelMediator.attach_source`;
* :func:`plan_events` — a seeded churn schedule (join / leave / outage /
  update events) whose membership simulation matches what a harness
  replaying it will observe.

Every random draw goes through :func:`_subrng`, a SHA-256 sub-generator
keyed by the federation seed and a stable label — never by dict or set
iteration order — so the same seed always yields the same federation,
the same spec text, and the same schedule.

Key and join-attribute values share one small domain (:data:`KEY_DOMAIN`)
so the generated join conditions actually produce rows.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "KEY_DOMAIN",
    "TIERS",
    "ChurnEvent",
    "ChurnPlan",
    "FederationSource",
    "FederationSpec",
    "make_federation",
    "plan_events",
]

#: Shared value domain for keys and join attributes.
KEY_DOMAIN = 64

#: Data-volume tiers, mapped onto annotation styles: curated sources are
#: small and fully materialized, expanded sources are hybrid (key and join
#: attribute materialized, payload virtual), bulk sources are larger and
#: fully virtual.
TIERS = ("curated", "expanded", "bulk")

_TIER_ROWS = {"curated": (3, 6), "expanded": (6, 12), "bulk": (12, 24)}
_TIER_WEIGHTS = (0.35, 0.35, 0.30)


def _subrng(seed: int, *parts) -> random.Random:
    """A deterministic sub-generator keyed by seed and stable labels."""
    material = ":".join([str(seed), *(str(p) for p in parts)]).encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class FederationSource:
    """One generated source: its tier and initial data volume."""

    name: str
    index: int
    tier: str
    rows: int


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership or workload event.

    ``kind`` is ``"join"`` / ``"leave"`` / ``"outage"`` / ``"update"``;
    ``duration`` (steps) applies to outages only.
    """

    step: int
    kind: str
    source: str
    duration: int = 0


@dataclass(frozen=True)
class ChurnPlan:
    """A complete churn schedule: who starts attached, and what happens."""

    initial_members: Tuple[str, ...]
    events: Tuple[ChurnEvent, ...]
    steps: int

    def events_at(self, step: int) -> Tuple[ChurnEvent, ...]:
        """The events scheduled for one step, in execution order."""
        return tuple(e for e in self.events if e.step == step)

    def final_members(self) -> Tuple[str, ...]:
        """Membership after the whole schedule runs."""
        members = set(self.initial_members)
        for event in self.events:
            if event.kind == "join":
                members.add(event.source)
            elif event.kind == "leave":
                members.discard(event.source)
        return tuple(sorted(members))


@dataclass(frozen=True)
class FederationSpec:
    """A generated federation: sources, tiers, and the join topology.

    ``joins`` holds ``(left, right)`` source-name pairs with
    ``index(left) < index(right)``; the join view joins the two sources'
    leaf parents on ``a<left> = k<right>``.
    """

    seed: int
    sources: Tuple[FederationSource, ...]
    joins: Tuple[Tuple[str, str], ...]

    # -- naming --------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """All source names, in index order."""
        return tuple(s.name for s in self.sources)

    def source(self, name: str) -> FederationSource:
        """Look up one generated source by name."""
        for s in self.sources:
            if s.name == name:
                return s
        raise KeyError(name)

    def relation(self, name: str) -> str:
        """The base relation a source contributes."""
        return f"R{self.source(name).index:03d}"

    def leaf_parent(self, name: str) -> str:
        """The leaf-parent view name over a source's relation."""
        return f"{self.relation(name)}_p"

    def attributes(self, name: str) -> Tuple[str, str, str]:
        """A source relation's attribute names, in ``(k, a, b)`` order."""
        i = self.source(name).index
        return (f"k{i:03d}", f"a{i:03d}", f"b{i:03d}")

    def join_name(self, left: str, right: str) -> str:
        """The join view name between two partner sources."""
        return f"J_{self.source(left).index:03d}_{self.source(right).index:03d}"

    def joins_of(self, name: str, members: Iterable[str]) -> List[Tuple[str, str]]:
        """The join pairs involving ``name`` whose other endpoint is a member."""
        member_set = set(members)
        out = []
        for left, right in self.joins:
            if left == name and right in member_set:
                out.append((left, right))
            elif right == name and left in member_set:
                out.append((left, right))
        return out

    # -- definitions ---------------------------------------------------
    def _attr(self, name: str, prefix: str) -> str:
        return f"{prefix}{self.source(name).index:03d}"

    def _leaf_parent_def(self, name: str) -> str:
        k, a, b = (self._attr(name, p) for p in ("k", "a", "b"))
        return f"project[{k}, {a}, {b}]({self.relation(name)})"

    def _join_def(self, left: str, right: str) -> str:
        kl, al = self._attr(left, "k"), self._attr(left, "a")
        kr, ar = self._attr(right, "k"), self._attr(right, "a")
        return (
            f"project[{kl}, {al}, {kr}, {ar}]"
            f"({self.leaf_parent(left)} join[{al} = {kr}] {self.leaf_parent(right)})"
        )

    def annotation_for(self, name: str) -> str:
        """The leaf-parent annotation text a source's tier prescribes."""
        tier = self.source(name).tier
        if tier == "curated":
            return "materialized"
        if tier == "bulk":
            return "virtual"
        k, a, b = (self._attr(name, p) for p in ("k", "a", "b"))
        return f"[{k}^m, {a}^m, {b}^v]"

    # -- spec text -----------------------------------------------------
    def spec_text_for(self, members: Optional[Iterable[str]] = None) -> str:
        """The mediator-spec text for a member subset (default: everyone).

        Byte-identical for equal ``(seed, members)``: sources, views, and
        annotations are emitted in sorted index order, never in set or
        dict iteration order.
        """
        member_list = sorted(self.names if members is None else members)
        member_set = set(member_list)
        unknown = member_set - set(self.names)
        if unknown:
            raise KeyError(f"unknown federation members {sorted(unknown)}")
        lines: List[str] = []
        for name in member_list:
            k, a, b = (self._attr(name, p) for p in ("k", "a", "b"))
            lines.append(
                f"source {name} {{ relation {self.relation(name)}({k} key, {a}, {b}) }}"
            )
        for name in member_list:
            lines.append(f"export {self.leaf_parent(name)} = {self._leaf_parent_def(name)}")
        live_joins = [
            (l, r) for l, r in self.joins if l in member_set and r in member_set
        ]
        for left, right in live_joins:
            lines.append(
                f"export {self.join_name(left, right)} = {self._join_def(left, right)}"
            )
        for name in member_list:
            lines.append(f"annotate {self.leaf_parent(name)} {self.annotation_for(name)}")
        for left, right in live_joins:
            lines.append(f"annotate {self.join_name(left, right)} materialized")
        return "\n".join(lines) + "\n"

    # -- data ----------------------------------------------------------
    def initial_rows(self, name: str) -> List[Tuple[int, int, int]]:
        """A source's initial rows, as value tuples in ``(k, a, b)`` order.

        Derived from the federation seed and the source name alone, so
        the same source carries the same data into every federation size
        (the backfill-cost benchmark depends on this)."""
        src = self.source(name)
        rng = _subrng(self.seed, "rows", name)
        keys = rng.sample(range(KEY_DOMAIN), src.rows)
        return [
            (k, rng.randrange(KEY_DOMAIN), rng.randrange(1000)) for k in keys
        ]

    def initial_data(
        self, members: Optional[Iterable[str]] = None
    ) -> Dict[str, Dict[str, List[Tuple[int, int, int]]]]:
        """Initial data for :func:`repro.generator.make_sources`."""
        member_list = sorted(self.names if members is None else members)
        return {
            name: {self.relation(name): self.initial_rows(name)}
            for name in member_list
        }

    # -- dynamic membership --------------------------------------------
    def attach_payload(
        self, name: str, members: Iterable[str]
    ) -> Tuple[Dict[str, str], Dict[str, str]]:
        """The ``(views, annotations)`` a joining source contributes.

        ``members`` is the membership *before* the join.  The payload is
        the source's leaf parent plus every join view whose other
        endpoint is currently attached — so after any join order, the
        running VDP holds exactly the joins with both endpoints present,
        matching :meth:`spec_text_for` of the new membership.
        """
        member_set = set(members) - {name}
        views: Dict[str, str] = {self.leaf_parent(name): self._leaf_parent_def(name)}
        annotations: Dict[str, str] = {self.leaf_parent(name): self.annotation_for(name)}
        for left, right in self.joins_of(name, member_set):
            join = self.join_name(left, right)
            views[join] = self._join_def(left, right)
            annotations[join] = "materialized"
        return views, annotations


def make_federation(
    n_sources: int,
    seed: int = 0,
    join_prob: float = 0.6,
) -> FederationSpec:
    """Generate a tiered federation of ``n_sources`` sources.

    Each source past the first draws (with probability ``join_prob``) one
    partner among earlier sources, yielding a sparse join layer whose
    views are materialized over leaf parents of mixed annotation.
    """
    if n_sources < 2:
        raise ValueError("a federation needs at least 2 sources")
    sources: List[FederationSource] = []
    joins: List[Tuple[str, str]] = []
    for i in range(n_sources):
        name = f"s{i:03d}"
        rng = _subrng(seed, "source", name)
        tier = rng.choices(TIERS, weights=_TIER_WEIGHTS)[0]
        lo, hi = _TIER_ROWS[tier]
        sources.append(FederationSource(name, i, tier, rng.randint(lo, hi)))
        if i > 0 and rng.random() < join_prob:
            partner = sources[rng.randrange(i)].name
            joins.append((partner, name))
    return FederationSpec(seed=seed, sources=tuple(sources), joins=tuple(joins))


def plan_events(
    fed: FederationSpec,
    steps: int,
    initial_members: Optional[Sequence[str]] = None,
    min_members: Optional[int] = None,
    leave_prob: float = 0.12,
    join_prob: float = 0.25,
    outage_prob: float = 0.15,
    max_outage: int = 3,
    updates_per_step: Optional[int] = None,
) -> ChurnPlan:
    """Schedule ``steps`` of churn over a federation, deterministically.

    Per step, at most one leave (never below ``min_members``), at most
    one join of an absent source, at most one outage (1..``max_outage``
    steps), and a round-robin batch of update events covering every
    member within a few steps (the freshness-SLO bound in
    :mod:`repro.soak` depends on that cadence).  Events within a step are
    ordered leave → join → outage → update, which is also the order a
    harness must execute them in for the membership simulation here to
    match.
    """
    names = list(fed.names)
    if initial_members is None:
        initial_members = names[: max(2, (len(names) * 2) // 3)]
    else:
        initial_members = sorted(initial_members)
    members = set(initial_members)
    if min_members is None:
        min_members = max(2, len(names) // 4)
    events: List[ChurnEvent] = []
    outage_until: Dict[str, int] = {}
    for step in range(steps):
        rng = _subrng(fed.seed, "churn", step)
        outage_active = any(end > step for end in outage_until.values())
        if len(members) > min_members and rng.random() < leave_prob:
            victim = rng.choice(sorted(members))
            members.discard(victim)
            events.append(ChurnEvent(step, "leave", victim))
        absent = sorted(set(names) - members)
        # A join's backfill may need to poll a virtual-contributor partner,
        # so joins are never scheduled while any outage window is active.
        if absent and not outage_active and rng.random() < join_prob:
            joiner = rng.choice(absent)
            members.add(joiner)
            events.append(ChurnEvent(step, "join", joiner))
        ordered = sorted(members)
        if rng.random() < outage_prob:
            target = rng.choice(ordered)
            duration = rng.randint(1, max_outage)
            outage_until[target] = step + duration
            events.append(ChurnEvent(step, "outage", target, duration=duration))
        k = updates_per_step or max(1, len(ordered) // 3)
        k = min(k, len(ordered))
        for i in range(k):
            events.append(ChurnEvent(step, "update", ordered[(step * k + i) % len(ordered)]))
    return ChurnPlan(
        initial_members=tuple(initial_members), events=tuple(events), steps=steps
    )
