"""The mediator specification language.

Squirrel "is a tool that can be used to generate these mediators from
high-level specifications" ([ZHK95], Section 1).  This module implements a
compact textual spec format covering the parts of that language this paper
exercises — source declarations, named view definitions in the algebra
mini-language, export marking, and annotations::

    source db1 {
        relation R(r1 key, r2, r3, r4)
    }
    source db2 {
        relation S(s1 key, s2, s3)
    }

    view R_p = project[r1, r2, r3](select[r4 = 100](R))
    view S_p = project[s1, s2](select[s3 < 50](S))
    export T = project[r1, r3, s1, s2](R_p join[r2 = s1] S_p)

    annotate T [r1^m, r3^v, s1^m, s2^v]
    annotate R_p virtual
    annotate S_p virtual

Unannotated relations default to fully materialized; ``annotate X virtual``
and ``annotate X materialized`` are shorthands.  Attribute types may be
given as ``name: int`` (used by the SQLite source for column affinities).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import Annotation
from repro.errors import ParseError
from repro.relalg import Attribute, RelationSchema

__all__ = ["RelationSpec", "SourceSpec", "ViewSpec", "MediatorSpec", "parse_spec"]

_SOURCE_RE = re.compile(r"^source\s+([A-Za-z_][\w]*)\s*\{$")
_SOURCE_INLINE_RE = re.compile(r"^source\s+([A-Za-z_][\w]*)\s*\{(.*)\}$")
_RELATION_RE = re.compile(r"^relation\s+([A-Za-z_][\w]*)\s*\((.*)\)$")
_RELATION_FIND_RE = re.compile(r"relation\s+([A-Za-z_][\w]*)\s*\(([^)]*)\)")
_VIEW_RE = re.compile(r"^(view|export)\s+([A-Za-z_][\w]*)\s*=\s*(.+)$")
_ANNOTATE_RE = re.compile(r"^annotate\s+([A-Za-z_][\w]*)\s+(.+)$")


@dataclass(frozen=True)
class RelationSpec:
    """One declared source relation."""

    schema: RelationSchema


@dataclass
class SourceSpec:
    """One declared source database."""

    name: str
    relations: List[RelationSpec] = field(default_factory=list)

    def schemas(self) -> List[RelationSchema]:
        """The relation schemas declared for this source."""
        return [r.schema for r in self.relations]


@dataclass(frozen=True)
class ViewSpec:
    """One named view definition (text form; parsed lazily by the builder)."""

    name: str
    definition: str
    export: bool


@dataclass
class MediatorSpec:
    """A parsed mediator specification."""

    sources: Dict[str, SourceSpec] = field(default_factory=dict)
    views: List[ViewSpec] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)  # name -> text/keyword

    def source_schemas(self) -> Dict[str, RelationSchema]:
        """All declared relation schemas, keyed by relation name."""
        out: Dict[str, RelationSchema] = {}
        for source in self.sources.values():
            for rel in source.relations:
                if rel.schema.name in out:
                    raise ParseError(
                        f"relation {rel.schema.name!r} declared in two sources"
                    )
                out[rel.schema.name] = rel.schema
        return out

    def source_of(self) -> Dict[str, str]:
        """Relation name -> owning source name."""
        return {
            rel.schema.name: source.name
            for source in self.sources.values()
            for rel in source.relations
        }

    def exports(self) -> List[str]:
        """The export relation names, in declaration order."""
        return [v.name for v in self.views if v.export]


def _parse_attribute(token: str) -> Tuple[Attribute, bool]:
    """Parse ``name``, ``name key``, ``name: type``, ``name: type key``."""
    is_key = False
    token = token.strip()
    if token.endswith(" key"):
        is_key = True
        token = token[: -len(" key")].strip()
    if ":" in token:
        name, _, dtype = token.partition(":")
        return Attribute(name.strip(), dtype.strip()), is_key
    if not token:
        raise ParseError("empty attribute declaration")
    return Attribute(token), is_key


def _parse_relation(rel_name: str, attr_list: str) -> RelationSchema:
    attributes: List[Attribute] = []
    key: List[str] = []
    for token in attr_list.split(","):
        attribute, is_key = _parse_attribute(token)
        attributes.append(attribute)
        if is_key:
            key.append(attribute.name)
    return RelationSchema(rel_name, tuple(attributes), tuple(key))


def parse_spec(text: str) -> MediatorSpec:
    """Parse a mediator specification; raises :class:`ParseError` on errors."""
    spec = MediatorSpec()
    current_source: Optional[SourceSpec] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        def fail(message: str) -> ParseError:
            return ParseError(f"spec line {line_no}: {message}: {raw.strip()!r}")

        if current_source is not None:
            if line == "}":
                if not current_source.relations:
                    raise fail(f"source {current_source.name!r} declares no relations")
                current_source = None
                continue
            match = _RELATION_RE.match(line)
            if not match:
                raise fail("expected a relation declaration or '}'")
            rel_name, attr_list = match.groups()
            current_source.relations.append(RelationSpec(_parse_relation(rel_name, attr_list)))
            continue

        match = _SOURCE_INLINE_RE.match(line)
        if match:
            # Single-line form: source db { relation R(a, b) relation S(c) }
            name, body = match.groups()
            if name in spec.sources:
                raise fail(f"source {name!r} declared twice")
            source = SourceSpec(name)
            declarations = list(_RELATION_FIND_RE.finditer(body))
            if not declarations or _RELATION_FIND_RE.sub("", body).strip():
                raise fail("inline source block must contain only relation declarations")
            for declaration in declarations:
                rel_name, attr_list = declaration.groups()
                source.relations.append(RelationSpec(_parse_relation(rel_name, attr_list)))
            spec.sources[name] = source
            continue

        match = _SOURCE_RE.match(line)
        if match:
            name = match.group(1)
            if name in spec.sources:
                raise fail(f"source {name!r} declared twice")
            current_source = SourceSpec(name)
            spec.sources[name] = current_source
            continue

        match = _VIEW_RE.match(line)
        if match:
            kind, name, definition = match.groups()
            if any(v.name == name for v in spec.views):
                raise fail(f"view {name!r} declared twice")
            spec.views.append(ViewSpec(name, definition, export=(kind == "export")))
            continue

        match = _ANNOTATE_RE.match(line)
        if match:
            name, annotation = match.groups()
            if name in spec.annotations:
                raise fail(f"{name!r} annotated twice")
            spec.annotations[name] = annotation.strip()
            continue

        raise fail("unrecognized statement")

    if current_source is not None:
        raise ParseError(f"unterminated source block {current_source.name!r}")
    if not spec.sources:
        raise ParseError("spec declares no sources")
    if not any(v.export for v in spec.views):
        raise ParseError("spec declares no export relations")
    return spec
