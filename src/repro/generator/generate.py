"""Generating deployed mediators from specifications.

The back half of the Squirrel generator: take a parsed
:class:`~repro.generator.spec.MediatorSpec` (or its text), check it against
the actual source databases, build and annotate the VDP, wire up a
:class:`~repro.core.SquirrelMediator`, and initialize it.

Annotation resolution: the paper's bracket notation is used verbatim
(``annotate T [r1^m, r3^v]``); ``materialized`` / ``virtual`` annotate all
attributes; unmentioned relations default to fully materialized.  Passing
``plan_profile`` instead lets the Section 5.3 planner choose annotations
from a workload profile.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union as TypingUnion

from repro.core import SquirrelMediator, annotate, build_vdp
from repro.core.annotations import Annotation
from repro.core.vdp import VDP
from repro.errors import ParseError, SourceError
from repro.generator.spec import MediatorSpec, parse_spec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.planner import WorkloadProfile, suggest_annotation
from repro.sources.base import SourceDatabase
from repro.sources.memory import MemorySource

__all__ = [
    "build_annotated_from_spec",
    "build_vdp_from_spec",
    "generate_mediator",
    "make_sources",
]

SpecInput = TypingUnion[str, MediatorSpec]


def _resolve(spec: SpecInput) -> MediatorSpec:
    return parse_spec(spec) if isinstance(spec, str) else spec


def build_vdp_from_spec(spec: SpecInput) -> VDP:
    """Build the (unannotated) VDP a spec describes."""
    spec = _resolve(spec)
    return build_vdp(
        source_schemas=spec.source_schemas(),
        source_of=spec.source_of(),
        views={v.name: v.definition for v in spec.views},
        exports=spec.exports(),
    )


def make_sources(
    spec: SpecInput,
    initial: Optional[Mapping[str, Mapping]] = None,
    backend: str = "memory",
) -> Dict[str, SourceDatabase]:
    """Create sources matching a spec's declarations.

    ``initial`` maps source name to ``{relation: iterable of value rows}``.
    ``backend`` is ``"memory"`` (default) or ``"sqlite"`` (each source gets
    its own in-memory SQLite database; attribute types from the spec become
    column affinities).
    """
    spec = _resolve(spec)
    if backend not in ("memory", "sqlite"):
        raise SourceError(f"unknown source backend {backend!r}")
    sources: Dict[str, SourceDatabase] = {}
    # Iterate in sorted-name order, not dict insertion order: creation order
    # is observable (SQLite connection ids, RNG draws in callers that zip
    # over the result), and determinism must derive from the spec alone.
    for name in sorted(spec.sources):
        source_spec = spec.sources[name]
        data = (initial or {}).get(name)
        if backend == "memory":
            sources[name] = MemorySource(name, source_spec.schemas(), initial=data)
        else:
            from repro.sources.sqlite_source import SQLiteSource

            sources[name] = SQLiteSource(name, source_spec.schemas(), initial=data)
    return sources


def build_annotated_from_spec(
    spec: SpecInput, plan_profile: Optional[WorkloadProfile] = None
):
    """Resolve a spec's annotations into an :class:`AnnotatedVDP`.

    This is the declarative half of :func:`generate_mediator` — recovery
    needs it on its own, because a recovered mediator is *not* initialized
    from the sources (its repositories come from the checkpoint chain).
    """
    spec = _resolve(spec)
    vdp = build_vdp_from_spec(spec)

    overrides: Dict[str, Annotation] = {}
    for name, text in spec.annotations.items():
        if name not in vdp.nodes or vdp.node(name).is_leaf:
            raise ParseError(f"annotation for unknown view {name!r}")
        attrs = vdp.node(name).schema.attribute_names
        lowered = text.lower()
        if lowered in ("materialized", "m"):
            overrides[name] = Annotation.all_materialized(attrs)
        elif lowered in ("virtual", "v"):
            overrides[name] = Annotation.all_virtual(attrs)
        else:
            overrides[name] = Annotation.parse(text)

    if plan_profile is not None:
        suggested = suggest_annotation(vdp, plan_profile)
        resolved = {
            name: overrides.get(name, suggested.annotation(name))
            for name in vdp.non_leaves()
        }
        return annotate(vdp, resolved)
    return annotate(vdp, overrides)


def generate_mediator(
    spec: SpecInput,
    sources: Mapping[str, SourceDatabase],
    plan_profile: Optional[WorkloadProfile] = None,
    eca_enabled: bool = True,
    key_based_enabled: bool = True,
    shards: int = 1,
    parallel_propagation: Optional[bool] = None,
    layout: str = "row",
    smash_enabled: bool = True,
    tracer: Tracer = NULL_TRACER,
    profiling_enabled: bool = False,
) -> SquirrelMediator:
    """Generate, wire, and initialize a mediator from a specification.

    When ``plan_profile`` is given, relations the spec leaves unannotated
    get planner-suggested annotations instead of defaulting to fully
    materialized; explicit spec annotations always win.  ``shards`` /
    ``parallel_propagation`` configure hash-partitioned parallel
    propagation and ``layout`` / ``smash_enabled`` the storage layout and
    net-effect compaction exactly as on :class:`SquirrelMediator`.
    """
    spec = _resolve(spec)
    _check_sources_match(spec, sources)
    annotated = build_annotated_from_spec(spec, plan_profile)
    mediator = SquirrelMediator(
        annotated,
        sources,
        eca_enabled=eca_enabled,
        key_based_enabled=key_based_enabled,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
        tracer=tracer,
        profiling_enabled=profiling_enabled,
    )
    mediator.initialize()
    return mediator


def _check_sources_match(spec: MediatorSpec, sources: Mapping[str, SourceDatabase]) -> None:
    for name, source_spec in spec.sources.items():
        source = sources.get(name)
        if source is None:
            raise SourceError(f"spec declares source {name!r} but none was supplied")
        for rel in source_spec.relations:
            declared = rel.schema
            if declared.name not in source.schemas:
                raise SourceError(
                    f"source {name!r} lacks declared relation {declared.name!r}"
                )
            actual = source.schemas[declared.name]
            if actual.attribute_names != declared.attribute_names:
                raise SourceError(
                    f"relation {declared.name!r}: spec declares attributes "
                    f"{declared.attribute_names}, source has {actual.attribute_names}"
                )
