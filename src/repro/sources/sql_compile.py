"""Compilation of algebra expressions to SQLite SQL.

The paper stresses that virtual-contributor sources "can be played by all
kinds of DBMS, including legacy systems".  To exercise that claim with a
real DBMS, :class:`~repro.sources.sqlite_source.SQLiteSource` pushes whole
algebra expressions down to SQLite; this module is the compiler.

Mapping:

=================  =======================================
Algebra            SQL
=================  =======================================
``Scan``           ``SELECT cols FROM "table"``
``Select``         ``SELECT * FROM (child) WHERE pred``
``Project``        ``SELECT cols FROM (child)`` (``DISTINCT`` when dedup)
``Join`` (theta)   ``... JOIN ... ON cond`` (names are globally unique)
``Join`` (natural) ``... NATURAL JOIN ...``
``Union``          ``UNION ALL`` (bag union)
``Difference``     ``EXCEPT``   (set semantics — matches paper set nodes)
``Rename``         ``SELECT old AS new, ...``
=================  =======================================

Constants are always emitted as ``?`` parameters, never interpolated.  The
``^`` power operator is unrolled into repeated multiplication for small
non-negative integer exponents (SQLite has no ``pow`` without extensions);
anything else raises :class:`~repro.errors.EvaluationError`.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Tuple

from repro.errors import EvaluationError
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.relalg.schema import RelationSchema

__all__ = ["compile_expression", "compile_chain_select", "compile_predicate"]

_MAX_UNROLLED_EXPONENT = 8


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def compile_predicate(pred: Predicate, params: List[Any]) -> str:
    """Compile a predicate to a SQL boolean expression, appending parameters."""
    if isinstance(pred, TruePredicate):
        return "1"
    if isinstance(pred, Comparison):
        left = _compile_term(pred.left, params)
        right = _compile_term(pred.right, params)
        op = "<>" if pred.op == "!=" else pred.op
        return f"({left} {op} {right})"
    if isinstance(pred, And):
        return f"({compile_predicate(pred.left, params)} AND {compile_predicate(pred.right, params)})"
    if isinstance(pred, Or):
        return f"({compile_predicate(pred.left, params)} OR {compile_predicate(pred.right, params)})"
    if isinstance(pred, Not):
        return f"(NOT {compile_predicate(pred.child, params)})"
    raise EvaluationError(f"cannot compile predicate node {type(pred).__name__} to SQL")


def _compile_term(term: Term, params: List[Any]) -> str:
    if isinstance(term, Attr):
        return _quote(term.name)
    if isinstance(term, Const):
        params.append(term.value)
        return "?"
    if isinstance(term, Arith):
        if term.op == "^":
            return _compile_power(term, params)
        left = _compile_term(term.left, params)
        right = _compile_term(term.right, params)
        return f"({left} {term.op} {right})"
    raise EvaluationError(f"cannot compile term node {type(term).__name__} to SQL")


def _compile_power(term: Arith, params: List[Any]) -> str:
    if not isinstance(term.right, Const):
        raise EvaluationError("SQL compilation supports ^ only with a constant exponent")
    exponent = term.right.value
    if not isinstance(exponent, int) or exponent < 0 or exponent > _MAX_UNROLLED_EXPONENT:
        raise EvaluationError(
            f"SQL compilation supports integer exponents in [0, {_MAX_UNROLLED_EXPONENT}], got {exponent!r}"
        )
    if exponent == 0:
        return "1"
    base = _compile_term(term.left, params)
    return "(" + " * ".join([base] * exponent) + ")"


def _rewrite_term(term: Term, mapping: Mapping[str, str]) -> Term:
    if isinstance(term, Attr):
        try:
            return Attr(mapping[term.name])
        except KeyError as exc:
            raise EvaluationError(
                f"attribute {term.name!r} is not visible at this point in the chain"
            ) from exc
    if isinstance(term, Const):
        return term
    if isinstance(term, Arith):
        return Arith(_rewrite_term(term.left, mapping), term.op, _rewrite_term(term.right, mapping))
    raise EvaluationError(f"cannot rewrite term node {type(term).__name__}")


def _rewrite_predicate(pred: Predicate, mapping: Mapping[str, str]) -> Predicate:
    """Substitute every attribute reference with its base-table column."""
    if isinstance(pred, TruePredicate):
        return pred
    if isinstance(pred, Comparison):
        return Comparison(
            _rewrite_term(pred.left, mapping), pred.op, _rewrite_term(pred.right, mapping)
        )
    if isinstance(pred, And):
        return And(_rewrite_predicate(pred.left, mapping), _rewrite_predicate(pred.right, mapping))
    if isinstance(pred, Or):
        return Or(_rewrite_predicate(pred.left, mapping), _rewrite_predicate(pred.right, mapping))
    if isinstance(pred, Not):
        return Not(_rewrite_predicate(pred.child, mapping))
    raise EvaluationError(f"cannot rewrite predicate node {type(pred).__name__}")


def compile_chain_select(
    expr: Expression, schemas: Mapping[str, RelationSchema]
) -> Tuple[str, List[Any]]:
    """Compile a select/project/rename chain to one flat ``SELECT``.

    :func:`compile_expression` nests a subquery per algebra node, which
    keeps the translation obviously correct but hides the base table from
    SQLite's planner behind a wall of derived tables.  Poll predicates and
    compiled delta rewrites are overwhelmingly *chains* — selects, projects
    and renames stacked on a single scan — and for those this emits

        ``SELECT base_col AS out_name, ... FROM "base" WHERE p1 AND p2 ...``

    with every predicate rewritten onto base-table columns, so the WHERE
    clause sits directly on the stored table and key lookups hit the
    automatic indexes SQLite builds for PRIMARY KEY / UNIQUE constraints
    (observable via ``EXPLAIN QUERY PLAN``).

    Raises :class:`~repro.errors.EvaluationError` for any shape it cannot
    flatten (joins, unions, differences, a deduplicating project below a
    later project); callers fall back to :func:`compile_expression`.
    """
    steps = []
    node = expr
    while not isinstance(node, Scan):
        if isinstance(node, Select):
            steps.append(("select", node.predicate))
            node = node.child
        elif isinstance(node, Project):
            steps.append(("project", node))
            node = node.child
        elif isinstance(node, Rename):
            steps.append(("rename", node.mapping_dict))
            node = node.child
        else:
            raise EvaluationError(
                f"cannot flatten expression node {type(node).__name__} into a chain select"
            )
    if node.name not in schemas:
        raise EvaluationError(f"unknown base relation {node.name!r}")
    steps.reverse()  # innermost-first

    # Walk the chain tracking visible-name -> base-column; rewrite every
    # selection predicate into base columns as it is encountered.
    mapping = {a: a for a in schemas[node.name].attribute_names}
    predicates: List[Predicate] = []
    distinct = False
    for kind, payload in steps:
        if kind == "select":
            rewritten = _rewrite_predicate(payload, mapping)
            if not isinstance(rewritten, TruePredicate):
                predicates.append(rewritten)
        elif kind == "project":
            if distinct:
                # A projection after a dedup can re-introduce duplicates the
                # flat DISTINCT would erase; only the nested form is safe.
                raise EvaluationError("cannot flatten a projection applied after a dedup")
            mapping = {a: mapping[a] for a in payload.attrs}
            distinct = payload.dedup
        else:  # rename
            mapping = {payload.get(name, name): base for name, base in mapping.items()}

    out_names = expr.infer_schema(schemas, "q").attribute_names
    params: List[Any] = []
    cols = ", ".join(
        _quote(mapping[n]) if mapping[n] == n else f"{_quote(mapping[n])} AS {_quote(n)}"
        for n in out_names
    )
    sql = f"SELECT {'DISTINCT ' if distinct else ''}{cols} FROM {_quote(node.name)}"
    if predicates:
        sql += " WHERE " + " AND ".join(compile_predicate(p, params) for p in predicates)
    return sql, params


def compile_expression(
    expr: Expression, schemas: Mapping[str, RelationSchema]
) -> Tuple[str, List[Any]]:
    """Compile an expression to ``(sql, params)``.

    ``schemas`` maps base-relation names to their schemas (needed to emit
    explicit column lists, which keeps column order deterministic through
    unions and joins).
    """
    params: List[Any] = []
    sql = _compile(expr, schemas, params)
    return sql, params


def _columns(expr: Expression, schemas: Mapping[str, RelationSchema]) -> List[str]:
    return list(expr.infer_schema(schemas, "q").attribute_names)


def _compile(expr: Expression, schemas: Mapping[str, RelationSchema], params: List[Any]) -> str:
    if isinstance(expr, Scan):
        cols = ", ".join(_quote(c) for c in schemas[expr.name].attribute_names)
        return f"SELECT {cols} FROM {_quote(expr.name)}"
    if isinstance(expr, Select):
        child = _compile(expr.child, schemas, params)
        cond = compile_predicate(expr.predicate, params)
        return f"SELECT * FROM ({child}) WHERE {cond}"
    if isinstance(expr, Project):
        child = _compile(expr.child, schemas, params)
        cols = ", ".join(_quote(c) for c in expr.attrs)
        distinct = "DISTINCT " if expr.dedup else ""
        return f"SELECT {distinct}{cols} FROM ({child})"
    if isinstance(expr, Join):
        # Compile operands first so parameter order matches text order.
        left_sql = _compile(expr.left, schemas, params)
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        if expr.condition is None:
            right_sql = _compile(expr.right, schemas, params)
            return (
                f"SELECT {cols} FROM ({left_sql}) AS _l NATURAL JOIN ({right_sql}) AS _r"
            )
        right_sql = _compile(expr.right, schemas, params)
        cond = compile_predicate(expr.condition, params)
        return f"SELECT {cols} FROM ({left_sql}) AS _l JOIN ({right_sql}) AS _r ON {cond}"
    if isinstance(expr, Union):
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        left_sql = _compile(expr.left, schemas, params)
        right_sql = _compile(expr.right, schemas, params)
        return (
            f"SELECT {cols} FROM ({left_sql}) UNION ALL SELECT {cols} FROM ({right_sql})"
        )
    if isinstance(expr, Difference):
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        left_sql = _compile(expr.left, schemas, params)
        right_sql = _compile(expr.right, schemas, params)
        return f"SELECT {cols} FROM ({left_sql}) EXCEPT SELECT {cols} FROM ({right_sql})"
    if isinstance(expr, Rename):
        child = _compile(expr.child, schemas, params)
        mapping = expr.mapping_dict
        child_cols = _columns(expr.child, schemas)
        cols = ", ".join(
            f"{_quote(c)} AS {_quote(mapping[c])}" if c in mapping else _quote(c)
            for c in child_cols
        )
        return f"SELECT {cols} FROM ({child})"
    raise EvaluationError(f"cannot compile expression node {type(expr).__name__} to SQL")
