"""Compilation of algebra expressions to SQLite SQL.

The paper stresses that virtual-contributor sources "can be played by all
kinds of DBMS, including legacy systems".  To exercise that claim with a
real DBMS, :class:`~repro.sources.sqlite_source.SQLiteSource` pushes whole
algebra expressions down to SQLite; this module is the compiler.

Mapping:

=================  =======================================
Algebra            SQL
=================  =======================================
``Scan``           ``SELECT cols FROM "table"``
``Select``         ``SELECT * FROM (child) WHERE pred``
``Project``        ``SELECT cols FROM (child)`` (``DISTINCT`` when dedup)
``Join`` (theta)   ``... JOIN ... ON cond`` (names are globally unique)
``Join`` (natural) ``... NATURAL JOIN ...``
``Union``          ``UNION ALL`` (bag union)
``Difference``     ``EXCEPT``   (set semantics — matches paper set nodes)
``Rename``         ``SELECT old AS new, ...``
=================  =======================================

Constants are always emitted as ``?`` parameters, never interpolated.  The
``^`` power operator is unrolled into repeated multiplication for small
non-negative integer exponents (SQLite has no ``pow`` without extensions);
anything else raises :class:`~repro.errors.EvaluationError`.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Tuple

from repro.errors import EvaluationError
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.relalg.schema import RelationSchema

__all__ = ["compile_expression", "compile_predicate"]

_MAX_UNROLLED_EXPONENT = 8


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def compile_predicate(pred: Predicate, params: List[Any]) -> str:
    """Compile a predicate to a SQL boolean expression, appending parameters."""
    if isinstance(pred, TruePredicate):
        return "1"
    if isinstance(pred, Comparison):
        left = _compile_term(pred.left, params)
        right = _compile_term(pred.right, params)
        op = "<>" if pred.op == "!=" else pred.op
        return f"({left} {op} {right})"
    if isinstance(pred, And):
        return f"({compile_predicate(pred.left, params)} AND {compile_predicate(pred.right, params)})"
    if isinstance(pred, Or):
        return f"({compile_predicate(pred.left, params)} OR {compile_predicate(pred.right, params)})"
    if isinstance(pred, Not):
        return f"(NOT {compile_predicate(pred.child, params)})"
    raise EvaluationError(f"cannot compile predicate node {type(pred).__name__} to SQL")


def _compile_term(term: Term, params: List[Any]) -> str:
    if isinstance(term, Attr):
        return _quote(term.name)
    if isinstance(term, Const):
        params.append(term.value)
        return "?"
    if isinstance(term, Arith):
        if term.op == "^":
            return _compile_power(term, params)
        left = _compile_term(term.left, params)
        right = _compile_term(term.right, params)
        return f"({left} {term.op} {right})"
    raise EvaluationError(f"cannot compile term node {type(term).__name__} to SQL")


def _compile_power(term: Arith, params: List[Any]) -> str:
    if not isinstance(term.right, Const):
        raise EvaluationError("SQL compilation supports ^ only with a constant exponent")
    exponent = term.right.value
    if not isinstance(exponent, int) or exponent < 0 or exponent > _MAX_UNROLLED_EXPONENT:
        raise EvaluationError(
            f"SQL compilation supports integer exponents in [0, {_MAX_UNROLLED_EXPONENT}], got {exponent!r}"
        )
    if exponent == 0:
        return "1"
    base = _compile_term(term.left, params)
    return "(" + " * ".join([base] * exponent) + ")"


def compile_expression(
    expr: Expression, schemas: Mapping[str, RelationSchema]
) -> Tuple[str, List[Any]]:
    """Compile an expression to ``(sql, params)``.

    ``schemas`` maps base-relation names to their schemas (needed to emit
    explicit column lists, which keeps column order deterministic through
    unions and joins).
    """
    params: List[Any] = []
    sql = _compile(expr, schemas, params)
    return sql, params


def _columns(expr: Expression, schemas: Mapping[str, RelationSchema]) -> List[str]:
    return list(expr.infer_schema(schemas, "q").attribute_names)


def _compile(expr: Expression, schemas: Mapping[str, RelationSchema], params: List[Any]) -> str:
    if isinstance(expr, Scan):
        cols = ", ".join(_quote(c) for c in schemas[expr.name].attribute_names)
        return f"SELECT {cols} FROM {_quote(expr.name)}"
    if isinstance(expr, Select):
        child = _compile(expr.child, schemas, params)
        cond = compile_predicate(expr.predicate, params)
        return f"SELECT * FROM ({child}) WHERE {cond}"
    if isinstance(expr, Project):
        child = _compile(expr.child, schemas, params)
        cols = ", ".join(_quote(c) for c in expr.attrs)
        distinct = "DISTINCT " if expr.dedup else ""
        return f"SELECT {distinct}{cols} FROM ({child})"
    if isinstance(expr, Join):
        # Compile operands first so parameter order matches text order.
        left_sql = _compile(expr.left, schemas, params)
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        if expr.condition is None:
            right_sql = _compile(expr.right, schemas, params)
            return (
                f"SELECT {cols} FROM ({left_sql}) AS _l NATURAL JOIN ({right_sql}) AS _r"
            )
        right_sql = _compile(expr.right, schemas, params)
        cond = compile_predicate(expr.condition, params)
        return f"SELECT {cols} FROM ({left_sql}) AS _l JOIN ({right_sql}) AS _r ON {cond}"
    if isinstance(expr, Union):
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        left_sql = _compile(expr.left, schemas, params)
        right_sql = _compile(expr.right, schemas, params)
        return (
            f"SELECT {cols} FROM ({left_sql}) UNION ALL SELECT {cols} FROM ({right_sql})"
        )
    if isinstance(expr, Difference):
        cols = ", ".join(_quote(c) for c in _columns(expr, schemas))
        left_sql = _compile(expr.left, schemas, params)
        right_sql = _compile(expr.right, schemas, params)
        return f"SELECT {cols} FROM ({left_sql}) EXCEPT SELECT {cols} FROM ({right_sql})"
    if isinstance(expr, Rename):
        child = _compile(expr.child, schemas, params)
        mapping = expr.mapping_dict
        child_cols = _columns(expr.child, schemas)
        cols = ", ".join(
            f"{_quote(c)} AS {_quote(mapping[c])}" if c in mapping else _quote(c)
            for c in child_cols
        )
        return f"SELECT {cols} FROM ({child})"
    raise EvaluationError(f"cannot compile expression node {type(expr).__name__} to SQL")
