"""Autonomous source databases.

Two concrete stores share one protocol (:class:`SourceDatabase`): the
in-memory :class:`MemorySource` used by most tests and benchmarks, and the
:class:`SQLiteSource`, which compiles algebra queries to SQL and executes
them inside SQLite — exercising the paper's claim that virtual contributors
can be ordinary legacy DBMSs.  :class:`ContributorKind` is the Section 4
classification of how a source participates in the integrated view.
"""

from repro.sources.base import SourceDatabase
from repro.sources.contributors import ContributorKind
from repro.sources.memory import MemorySource
from repro.sources.sql_compile import compile_expression, compile_predicate
from repro.sources.sqlite_source import SQLiteSource

__all__ = [
    "SourceDatabase",
    "MemorySource",
    "SQLiteSource",
    "ContributorKind",
    "compile_expression",
    "compile_predicate",
]
