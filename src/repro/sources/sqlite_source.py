"""SQLite-backed source database.

Demonstrates the paper's claim that a virtual-contributor's "role can be
played by all kinds of DBMS" — here an actual SQL DBMS.  Relations map to
SQLite tables; transactions run inside SQLite transactions; queries are
compiled to SQL by :mod:`repro.sources.sql_compile` and executed inside the
database, so the mediator's polls genuinely travel through a SQL engine.

Set semantics is enforced with a UNIQUE index over all columns (source
relations are sets in the paper's model); the declared primary key, when
present, is also declared to SQLite.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.deltas import SetDelta
from repro.errors import SourceError
from repro.relalg import (
    BagRelation,
    Expression,
    Project,
    Relation,
    RelationSchema,
    Row,
    SetRelation,
)
from repro.relalg.expressions import Difference
from repro.sources.base import SourceDatabase
from repro.sources.sql_compile import compile_expression

__all__ = ["SQLiteSource"]


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_AFFINITY = {"int": "INTEGER", "float": "REAL", "str": "TEXT", "any": ""}


class SQLiteSource(SourceDatabase):
    """A source database backed by a SQLite database."""

    def __init__(
        self,
        name: str,
        schemas: Sequence[RelationSchema],
        path: str = ":memory:",
        initial: Optional[Dict[str, Sequence[Tuple[Any, ...]]]] = None,
    ):
        super().__init__(name, schemas)
        self._conn = sqlite3.connect(path)
        self._conn.isolation_level = None  # explicit transaction control
        self._create_tables()
        if initial:
            for rel_name, value_rows in initial.items():
                schema = self.schema(rel_name)
                self._bulk_insert(rel_name, schema, value_rows)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def _create_tables(self) -> None:
        cur = self._conn.cursor()
        for schema in self.schemas.values():
            cols = []
            for a in schema.attributes:
                affinity = _AFFINITY.get(a.dtype, "")
                cols.append(f"{_quote(a.name)} {affinity}".strip())
            constraints = []
            if schema.key:
                key_cols = ", ".join(_quote(k) for k in schema.key)
                constraints.append(f"PRIMARY KEY ({key_cols})")
            all_cols = ", ".join(_quote(a.name) for a in schema.attributes)
            constraints.append(f"UNIQUE ({all_cols})")
            ddl = (
                f"CREATE TABLE {_quote(schema.name)} ("
                + ", ".join(cols + constraints)
                + ")"
            )
            cur.execute(ddl)
        self._conn.commit()

    def _bulk_insert(
        self, rel_name: str, schema: RelationSchema, value_rows: Sequence[Tuple[Any, ...]]
    ) -> None:
        placeholders = ", ".join("?" for _ in schema.attributes)
        cols = ", ".join(_quote(a.name) for a in schema.attributes)
        sql = f"INSERT INTO {_quote(rel_name)} ({cols}) VALUES ({placeholders})"
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        cur.executemany(sql, [tuple(v) for v in value_rows])
        cur.execute("COMMIT")

    # ------------------------------------------------------------------
    # SourceDatabase storage protocol
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, SetRelation]:
        snap: Dict[str, SetRelation] = {}
        cur = self._conn.cursor()
        for rel_name, schema in self.schemas.items():
            cols = ", ".join(_quote(a.name) for a in schema.attributes)
            cur.execute(f"SELECT {cols} FROM {_quote(rel_name)}")
            names = schema.attribute_names
            snap[rel_name] = SetRelation(
                schema, (Row(dict(zip(names, values))) for values in cur.fetchall())
            )
        return snap

    def _apply(self, delta: SetDelta) -> None:
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        try:
            for rel_name in delta.relations():
                schema = self.schema(rel_name)
                names = schema.attribute_names
                cols = ", ".join(_quote(n) for n in names)
                placeholders = ", ".join("?" for _ in names)
                insert_sql = (
                    f"INSERT INTO {_quote(rel_name)} ({cols}) VALUES ({placeholders})"
                )
                delete_sql = (
                    f"DELETE FROM {_quote(rel_name)} WHERE "
                    + " AND ".join(f"{_quote(n)} = ?" for n in names)
                )
                for r in delta.deletions(rel_name):
                    cur.execute(delete_sql, r.values_for(names))
                for r in delta.insertions(rel_name):
                    cur.execute(insert_sql, r.values_for(names))
            cur.execute("COMMIT")
        except sqlite3.DatabaseError as exc:
            cur.execute("ROLLBACK")
            raise SourceError(f"SQLite transaction failed on {self.name!r}: {exc}") from exc

    def query(self, expr: Expression, name: str = "answer") -> Relation:
        """Compile to SQL and execute inside SQLite (one transaction)."""
        unknown = expr.relation_names() - set(self.schemas)
        if unknown:
            raise SourceError(
                f"source {self.name!r} cannot answer query over {sorted(unknown)}"
            )
        self.query_count += 1
        sql, params = compile_expression(expr, self.schemas)
        schema = expr.infer_schema(self.schemas, name)
        cur = self._conn.cursor()
        cur.execute(sql, params)
        rows = cur.fetchall()
        names = schema.attribute_names
        if isinstance(expr, Difference) or (isinstance(expr, Project) and expr.dedup):
            return SetRelation(schema, (Row(dict(zip(names, v))) for v in rows))
        return BagRelation.from_rows(schema, (Row(dict(zip(names, v))) for v in rows))

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._conn.close()
