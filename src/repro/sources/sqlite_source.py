"""SQLite-backed source database.

Demonstrates the paper's claim that a virtual-contributor's "role can be
played by all kinds of DBMS" — here an actual SQL DBMS.  Relations map to
SQLite tables; transactions run inside SQLite transactions; queries are
compiled to SQL by :mod:`repro.sources.sql_compile` and executed inside the
database, so the mediator's polls genuinely travel through a SQL engine.

Set semantics is enforced with a UNIQUE index over all columns (source
relations are sets in the paper's model); the declared primary key, when
present, is also declared to SQLite.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.deltas import SetDelta
from repro.errors import EvaluationError, SourceError
from repro.relalg import (
    BagRelation,
    Evaluator,
    Expression,
    Project,
    Relation,
    RelationSchema,
    Row,
    SetRelation,
)
from repro.relalg.expressions import Difference
from repro.sources.base import SourceDatabase
from repro.sources.sql_compile import compile_chain_select, compile_expression

__all__ = ["SQLiteSource"]


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_AFFINITY = {"int": "INTEGER", "float": "REAL", "str": "TEXT", "any": ""}


class SQLiteSource(SourceDatabase):
    """A source database backed by a SQLite database."""

    #: Links probe this to route whole poll rounds through
    #: :meth:`poll_and_query`, which executes the queries inside the
    #: database instead of snapshotting every relation into Python.
    supports_pushdown = True

    def __init__(
        self,
        name: str,
        schemas: Sequence[RelationSchema],
        path: str = ":memory:",
        initial: Optional[Dict[str, Sequence[Tuple[Any, ...]]]] = None,
    ):
        super().__init__(name, schemas)
        self.pushdown_queries = 0
        self.fallback_queries = 0
        self._conn = sqlite3.connect(path)
        self._conn.isolation_level = None  # explicit transaction control
        self._create_tables()
        if initial:
            for rel_name, value_rows in initial.items():
                schema = self.schema(rel_name)
                self._bulk_insert(rel_name, schema, value_rows)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def _create_tables(self) -> None:
        cur = self._conn.cursor()
        for schema in self.schemas.values():
            cols = []
            for a in schema.attributes:
                affinity = _AFFINITY.get(a.dtype, "")
                cols.append(f"{_quote(a.name)} {affinity}".strip())
            constraints = []
            if schema.key:
                key_cols = ", ".join(_quote(k) for k in schema.key)
                constraints.append(f"PRIMARY KEY ({key_cols})")
            all_cols = ", ".join(_quote(a.name) for a in schema.attributes)
            constraints.append(f"UNIQUE ({all_cols})")
            ddl = (
                f"CREATE TABLE {_quote(schema.name)} ("
                + ", ".join(cols + constraints)
                + ")"
            )
            cur.execute(ddl)
        self._conn.commit()

    def _bulk_insert(
        self, rel_name: str, schema: RelationSchema, value_rows: Sequence[Tuple[Any, ...]]
    ) -> None:
        placeholders = ", ".join("?" for _ in schema.attributes)
        cols = ", ".join(_quote(a.name) for a in schema.attributes)
        sql = f"INSERT INTO {_quote(rel_name)} ({cols}) VALUES ({placeholders})"
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        cur.executemany(sql, [tuple(v) for v in value_rows])
        cur.execute("COMMIT")

    # ------------------------------------------------------------------
    # SourceDatabase storage protocol
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, SetRelation]:
        snap: Dict[str, SetRelation] = {}
        cur = self._conn.cursor()
        for rel_name, schema in self.schemas.items():
            cols = ", ".join(_quote(a.name) for a in schema.attributes)
            cur.execute(f"SELECT {cols} FROM {_quote(rel_name)}")
            names = schema.attribute_names
            snap[rel_name] = SetRelation(
                schema, (Row(dict(zip(names, values))) for values in cur.fetchall())
            )
        return snap

    def _apply(self, delta: SetDelta) -> None:
        cur = self._conn.cursor()
        cur.execute("BEGIN")
        try:
            for rel_name in delta.relations():
                schema = self.schema(rel_name)
                names = schema.attribute_names
                cols = ", ".join(_quote(n) for n in names)
                placeholders = ", ".join("?" for _ in names)
                insert_sql = (
                    f"INSERT INTO {_quote(rel_name)} ({cols}) VALUES ({placeholders})"
                )
                delete_sql = (
                    f"DELETE FROM {_quote(rel_name)} WHERE "
                    + " AND ".join(f"{_quote(n)} = ?" for n in names)
                )
                for r in delta.deletions(rel_name):
                    cur.execute(delete_sql, r.values_for(names))
                for r in delta.insertions(rel_name):
                    cur.execute(insert_sql, r.values_for(names))
            cur.execute("COMMIT")
        except sqlite3.DatabaseError as exc:
            cur.execute("ROLLBACK")
            raise SourceError(f"SQLite transaction failed on {self.name!r}: {exc}") from exc

    def query(self, expr: Expression, name: str = "answer") -> Relation:
        """Compile to SQL and execute inside SQLite (one transaction)."""
        unknown = expr.relation_names() - set(self.schemas)
        if unknown:
            raise SourceError(
                f"source {self.name!r} cannot answer query over {sorted(unknown)}"
            )
        self.query_count += 1
        return self._execute_pushdown(expr, name)

    def _compile(self, expr: Expression) -> Tuple[str, List[Any]]:
        """Flat chain select when the shape allows it, nested SQL otherwise.

        The flat form keeps predicates on the base table where SQLite's
        automatic PRIMARY KEY / UNIQUE indexes can serve them; anything the
        flattener rejects still compiles through the general nested path.
        Raises :class:`~repro.errors.EvaluationError` only when *neither*
        compiler can express the expression (e.g. ``^`` with a non-constant
        exponent) — the signal for the Python evaluation fallback.
        """
        try:
            return compile_chain_select(expr, self.schemas)
        except EvaluationError:
            return compile_expression(expr, self.schemas)

    def _execute_pushdown(self, expr: Expression, name: str) -> Relation:
        sql, params = self._compile(expr)
        schema = expr.infer_schema(self.schemas, name)
        cur = self._conn.cursor()
        cur.execute(sql, params)
        rows = cur.fetchall()
        names = schema.attribute_names
        if isinstance(expr, Difference) or (isinstance(expr, Project) and expr.dedup):
            return SetRelation(schema, (Row(dict(zip(names, v))) for v in rows))
        return BagRelation.from_rows(schema, (Row(dict(zip(names, v))) for v in rows))

    def poll_and_query(
        self, queries: Mapping[str, Expression]
    ) -> Tuple[Optional[SetDelta], int, Dict[str, Relation]]:
        """One atomic poll round answered *inside* the database.

        The announcement take, the cursor read, and every query execute
        under the source lock as one source transaction — the same
        flush-before-answer contract as
        :meth:`~repro.sources.base.SourceDatabase.poll_transaction_versioned`,
        but without materializing a full Python snapshot of every relation:
        each query is compiled to SQL and runs where the data lives.  A
        query the compiler cannot express (counted in ``fallback_queries``)
        is answered from a lazily-built snapshot of the same state, so the
        answer set is identical either way.
        """
        with self._lock:
            announcement = self.take_announcement()
            cursor = self.txn_count
            answers: Dict[str, Relation] = {}
            snapshot: Optional[Dict[str, SetRelation]] = None
            for name, expr in queries.items():
                unknown = expr.relation_names() - set(self.schemas)
                if unknown:
                    raise SourceError(
                        f"source {self.name!r} cannot answer query over {sorted(unknown)}"
                    )
                self.query_count += 1
                try:
                    answers[name] = self._execute_pushdown(expr, name)
                    self.pushdown_queries += 1
                except EvaluationError:
                    if snapshot is None:
                        snapshot = self._snapshot()
                    answers[name] = Evaluator(snapshot).evaluate(expr, name)
                    self.fallback_queries += 1
            return announcement, cursor, answers

    def explain_query_plan(self, expr: Expression) -> List[str]:
        """SQLite's query plan for ``expr``, one detail string per step.

        Compiles exactly as :meth:`query` would and runs ``EXPLAIN QUERY
        PLAN``; tests use this to assert that pushed-down key predicates
        are served by the automatic indexes (``USING INDEX`` /
        ``USING COVERING INDEX`` / integer primary-key search) rather than
        full table scans.
        """
        sql, params = self._compile(expr)
        cur = self._conn.cursor()
        cur.execute("EXPLAIN QUERY PLAN " + sql, params)
        return [str(row[-1]) for row in cur.fetchall()]

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._conn.close()
