"""The source-database protocol.

Section 4 classifies sources by what the mediator needs from them:

* **materialized-contributors** must "actively send relevant net updates" —
  they need the announcement half of this protocol;
* **hybrid-contributors** need both halves (announcements and queries);
* **virtual-contributors** only need to answer queries — "its role can be
  played by all kinds of DBMS, including legacy systems that do not have
  active database capabilities".

:class:`SourceDatabase` captures both halves.  Transactions are applied as
:class:`~repro.deltas.SetDelta` values committed atomically;
``take_announcement`` returns the *net* delta since the last announcement,
smashed into "a single undividable message" exactly as the paper requires.
A source can be asked to *prefilter* announcements (the source-side
optimization mentioned at the end of Section 6.2).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.deltas import SetDelta, net_accumulate
from repro.deltas.filtering import LeafParentFilter
from repro.errors import SourceError
from repro.relalg import Expression, Relation, RelationSchema, Row, SetRelation

__all__ = ["SourceDatabase", "net_accumulate"]


class SourceDatabase:
    """Abstract autonomous source database.

    Concrete stores implement ``_snapshot``, ``_apply`` and ``query``; the
    transaction log, announcement machinery, and commit hooks live here.
    """

    def __init__(self, name: str, schemas: Sequence[RelationSchema]):
        self.name = name
        self.schemas: Dict[str, RelationSchema] = {s.name: s for s in schemas}
        if len(self.schemas) != len(schemas):
            raise SourceError(f"duplicate relation names in source {name!r}")
        self.txn_count = 0
        self.query_count = 0
        self._pending: SetDelta = SetDelta()
        self._log: List[Tuple[int, SetDelta]] = []
        self._on_commit: List[Callable[["SourceDatabase", SetDelta], None]] = []
        self._prefilters: List[LeafParentFilter] = []
        # Commits, announcement takes, and snapshots may now be driven from
        # different threads (the VAP polls independent sources concurrently);
        # reentrant because commit hooks can read back through public methods.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Abstract storage operations
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, SetRelation]:
        """A consistent copy of every relation."""
        raise NotImplementedError

    def _apply(self, delta: SetDelta) -> None:
        """Atomically apply a validated transaction delta to storage."""
        raise NotImplementedError

    def _peek(self, relation: str) -> SetRelation:
        """Read-only view of one relation for validation.

        Defaults to a snapshot copy; stores with cheap direct access
        override this (validation only reads, so no copy is needed).
        """
        return self._snapshot()[relation]

    def query(self, expr: Expression, name: str = "answer") -> Relation:
        """Answer a query over this source's relations (one transaction)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, SetRelation]:
        """A consistent snapshot of the whole source (copies)."""
        with self._lock:
            return self._snapshot()

    def poll_transaction(self) -> Tuple[Optional[SetDelta], Dict[str, SetRelation]]:
        """Atomically take the pending announcement and snapshot the source.

        This is the read half of one poll round as a single source
        transaction: no commit can slip between the announcement take and
        the snapshot, so the returned snapshot reflects *exactly* the
        announced state — the ordering property the Eager Compensation
        Algorithm relies on, preserved even with links polling from worker
        threads.
        """
        with self._lock:
            return self.take_announcement(), self._snapshot()

    def poll_transaction_versioned(
        self,
    ) -> Tuple[Optional[SetDelta], int, Dict[str, SetRelation]]:
        """:meth:`poll_transaction` plus the cursor the answer reflects.

        The cursor is this source's transaction count at take time — the
        announced state covers exactly transactions ``1..cursor``, which is
        what the durability layer records so a restart knows where to
        resume this source's log.
        """
        with self._lock:
            return self.take_announcement(), self.txn_count, self._snapshot()

    def initial_snapshot(self) -> Tuple[Dict[str, SetRelation], int]:
        """One atomic (snapshot, cursor) pair for view initialization.

        Discards the pending announcement (the snapshot already reflects
        it — delivering it afterwards would double-apply) and returns the
        transaction cursor the snapshot corresponds to, all under one
        source transaction so no commit can slip between the three reads.
        """
        with self._lock:
            self.take_announcement()
            return self._snapshot(), self.txn_count

    def relation(self, name: str) -> SetRelation:
        """A snapshot copy of one relation."""
        snap = self._snapshot()
        try:
            return snap[name]
        except KeyError as exc:
            raise SourceError(f"source {self.name!r} has no relation {name!r}") from exc

    def schema(self, name: str) -> RelationSchema:
        """The schema of one relation."""
        try:
            return self.schemas[name]
        except KeyError as exc:
            raise SourceError(f"source {self.name!r} has no relation {name!r}") from exc

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def execute(self, delta: SetDelta) -> int:
        """Commit a transaction; returns the transaction sequence number.

        The delta must mention only this source's relations, and every atom
        must be non-redundant (insert absent rows, delete present rows) —
        the paper's deltas are never redundant, and enforcing that here
        catches workload bugs early.
        """
        with self._lock:
            self._validate(delta)
            self._apply(delta)
            self.txn_count += 1
            committed = delta.copy()
            self._log.append((self.txn_count, committed))
            self._pending = net_accumulate(self._pending, committed)
            for hook in self._on_commit:
                hook(self, committed)
            return self.txn_count

    def _validate(self, delta: SetDelta) -> None:
        for rel_name in delta.relations():
            if rel_name not in self.schemas:
                raise SourceError(f"source {self.name!r} has no relation {rel_name!r}")
            current = self._peek(rel_name)
            for r, sign in delta.atoms_for(rel_name):
                present = current.contains(r)
                if sign > 0 and present:
                    raise SourceError(
                        f"redundant insert into {self.name}.{rel_name}: {dict(r)}"
                    )
                if sign < 0 and not present:
                    raise SourceError(
                        f"redundant delete from {self.name}.{rel_name}: {dict(r)}"
                    )

    def insert(self, relation: str, **values) -> int:
        """Single-row insert transaction."""
        delta = SetDelta()
        delta.insert(relation, Row(values))
        return self.execute(delta)

    def delete(self, relation: str, **values) -> int:
        """Single-row delete transaction."""
        delta = SetDelta()
        delta.delete(relation, Row(values))
        return self.execute(delta)

    def update(self, relation: str, old: Dict, new: Dict) -> int:
        """Single-row replace transaction (delete old, insert new)."""
        delta = SetDelta()
        delta.delete(relation, Row(old))
        delta.insert(relation, Row(new))
        return self.execute(delta)

    # ------------------------------------------------------------------
    # Announcements (the "active" capability)
    # ------------------------------------------------------------------
    def on_commit(self, hook: Callable[["SourceDatabase", SetDelta], None]) -> None:
        """Register a hook invoked after every commit (observers, drivers)."""
        self._on_commit.append(hook)

    def set_prefilters(self, filters: Sequence[LeafParentFilter]) -> None:
        """Install source-side announcement filters (Section 6.2 optimization)."""
        self._prefilters = list(filters)

    def has_pending_announcement(self) -> bool:
        """True when commits have happened since the last announcement."""
        return not self._pending.is_empty()

    def take_announcement(self) -> Optional[SetDelta]:
        """The net delta since the last announcement, as one message.

        Resets the pending accumulator.  Returns ``None`` when there is
        nothing to announce (also when prefiltering drops everything).
        """
        with self._lock:
            if self._pending.is_empty():
                return None
            announcement = self._pending
            self._pending = SetDelta()
            if self._prefilters:
                announcement = self._prefilter(announcement)
            return announcement if not announcement.is_empty() else None

    def take_announcement_versioned(self) -> Tuple[Optional[SetDelta], int]:
        """:meth:`take_announcement` plus the cursor the message covers.

        The cursor is the source's transaction count at take time: the
        returned net delta (possibly ``None``) brings a reader that was
        current through the *previous* announcement up to exactly
        transaction ``cursor``.  Durability-aware collectors thread this
        through the update queue so the write-ahead log can record, per
        committed mediator transaction, how far into each source's log the
        materialized state has advanced.
        """
        with self._lock:
            return self.take_announcement(), self.txn_count

    def pending_announcement(self) -> SetDelta:
        """A copy of the unannounced accumulator (peek — nothing is reset).

        Selective re-initialization uses this to compensate a current
        snapshot back to the last-announced state without consuming the
        announcement.
        """
        with self._lock:
            return self._pending.copy()

    def _prefilter(self, delta: SetDelta) -> SetDelta:
        """Keep each atom that is relevant to at least one leaf-parent.

        An atom survives when its relation has no installed filter at all,
        or when it passes the selection condition of *some* filter over that
        relation — dropping it would starve a node that needs it.
        """
        filtered_relations = {f.source_relation for f in self._prefilters}
        out = SetDelta()
        for rel, r, sign in delta.atoms():
            relevant = rel not in filtered_relations or any(
                f.predicate.evaluate(r)
                for f in self._prefilters
                if f.source_relation == rel
            )
            if relevant:
                if sign > 0:
                    out.insert(rel, r)
                else:
                    out.delete(rel, r)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def log(self) -> List[Tuple[int, SetDelta]]:
        """The committed transaction log: ``(txn_seq, delta)`` pairs."""
        return list(self._log)

    def compact_log(self, through_seq: int) -> int:
        """Drop log entries with ``seq <= through_seq``; returns how many.

        Autonomous sources reclaim log space on their own schedule — the
        mediator cannot stop them.  A mediator whose saved cursor falls
        below the compacted floor can no longer catch up by replay and must
        selectively re-initialize that source's subtree (see
        :class:`~repro.errors.SnapshotStaleError`).
        """
        with self._lock:
            before = len(self._log)
            self._log = [(seq, delta) for seq, delta in self._log if seq > through_seq]
            return before - len(self._log)

    def log_reaches(self, cursor: int) -> bool:
        """True when every transaction in ``(cursor, txn_count]`` is logged.

        This is the replayability test: a reader current through ``cursor``
        can catch up iff no entry it needs has been compacted away.
        """
        with self._lock:
            needed = set(range(cursor + 1, self.txn_count + 1))
            present = {seq for seq, _ in self._log}
            return needed <= present

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} relations={sorted(self.schemas)}>"
