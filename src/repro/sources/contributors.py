"""Contributor classification (Section 4).

A source database is associated with the mediator in one of three ways,
determined by where its data lands in the annotated VDP:

* :attr:`ContributorKind.MATERIALIZED` — everything it contributes is in
  the materialized portion; it must announce updates, and is never queried.
* :attr:`ContributorKind.HYBRID` — contributes to both portions; it must
  announce updates *and* answer queries (with Eager Compensation applied to
  its poll answers).
* :attr:`ContributorKind.VIRTUAL` — contributes only virtual data; it only
  needs to answer queries, so "its role can be played by all kinds of
  DBMS, including legacy systems".

The classification itself is computed from a VDP annotation by
:meth:`repro.core.vdp.AnnotatedVDP.contributor_kinds`; this module holds
the shared vocabulary so that sources do not depend on the core package.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ContributorKind"]


class ContributorKind(Enum):
    """How a source database participates in the integrated view."""

    MATERIALIZED = "materialized-contributor"
    HYBRID = "hybrid-contributor"
    VIRTUAL = "virtual-contributor"

    @property
    def announces(self) -> bool:
        """True when this kind must actively announce net updates."""
        return self in (ContributorKind.MATERIALIZED, ContributorKind.HYBRID)

    @property
    def answers_queries(self) -> bool:
        """True when this kind must be able to answer mediator queries."""
        return self in (ContributorKind.HYBRID, ContributorKind.VIRTUAL)

    def __str__(self) -> str:
        return self.value
