"""In-memory source database.

The default source used in tests, examples and most benchmarks: relations
are :class:`~repro.relalg.SetRelation` instances, transactions apply
directly, and queries run through the algebra evaluator over a snapshot —
so every query sees a single consistent state, as the VAP's
one-transaction-per-poll packaging requires (Section 6.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.deltas import SetDelta
from repro.errors import SourceError
from repro.relalg import (
    EvalCounters,
    Evaluator,
    Expression,
    Relation,
    RelationSchema,
    SetRelation,
)
from repro.sources.base import SourceDatabase

__all__ = ["MemorySource"]


class MemorySource(SourceDatabase):
    """A source database backed by in-process set relations."""

    def __init__(
        self,
        name: str,
        schemas: Sequence[RelationSchema],
        initial: Optional[Mapping[str, Iterable]] = None,
    ):
        """``initial`` maps relation name to an iterable of value tuples."""
        super().__init__(name, schemas)
        self._relations: Dict[str, SetRelation] = {
            s.name: SetRelation(s) for s in schemas
        }
        self.counters = EvalCounters()
        if initial:
            for rel_name, value_rows in initial.items():
                if rel_name not in self._relations:
                    raise SourceError(f"source {name!r} has no relation {rel_name!r}")
                schema = self.schemas[rel_name]
                self._relations[rel_name] = SetRelation.from_values(schema, value_rows)

    def _snapshot(self) -> Dict[str, SetRelation]:
        return {name: rel.copy() for name, rel in self._relations.items()}

    def _peek(self, relation: str) -> SetRelation:
        return self._relations[relation]  # read-only use by validation

    def _apply(self, delta: SetDelta) -> None:
        for rel_name in delta.relations():
            delta.apply_to(self._relations[rel_name], rel_name)

    def query(self, expr: Expression, name: str = "answer") -> Relation:
        """Evaluate an algebra expression against the current state."""
        unknown = expr.relation_names() - set(self._relations)
        if unknown:
            raise SourceError(
                f"source {self.name!r} cannot answer query over {sorted(unknown)}"
            )
        self.query_count += 1
        evaluator = Evaluator(self._relations, counters=self.counters)
        return evaluator.evaluate(expr, name)
