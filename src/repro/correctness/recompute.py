"""Ground-truth recomputation of view relations from source snapshots.

The oracle against which incremental maintenance is checked everywhere in
the test suite and benchmarks: evaluate every VDP node definition bottom-up
over the sources' *current* states.  If the mediator is quiescent (all
announcements collected and propagated), each materialized relation must
equal its recomputation exactly — multiplicities included.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.mediator import SquirrelMediator
from repro.core.vdp import VDP
from repro.relalg import Evaluator, Relation
from repro.sources.base import SourceDatabase

__all__ = [
    "recompute_all",
    "recompute",
    "assert_view_correct",
    "assert_materialized_correct",
]


def recompute_all(vdp: VDP, sources: Mapping[str, SourceDatabase]) -> Dict[str, Relation]:
    """Evaluate every node of ``vdp`` over current source snapshots."""
    catalog: Dict[str, Relation] = {}
    snapshots: Dict[str, Dict[str, Relation]] = {}
    for leaf in vdp.leaves():
        source_name = vdp.source_of_leaf(leaf)
        if source_name not in snapshots:
            snapshots[source_name] = sources[source_name].state()
        catalog[leaf] = snapshots[source_name][leaf]
    for name in vdp.topological_order():
        node = vdp.node(name)
        if node.is_leaf:
            continue
        evaluator = Evaluator(catalog)
        catalog[name] = evaluator.evaluate(node.definition, name)
    return catalog


def recompute(
    vdp: VDP, sources: Mapping[str, SourceDatabase], relation: str
) -> Relation:
    """Ground-truth value of one node (full width)."""
    return recompute_all(vdp, sources)[relation]


def assert_view_correct(
    mediator: SquirrelMediator, relation: Optional[str] = None
) -> None:
    """Assert every export (or one relation) matches its recomputation.

    The mediator must be quiescent; this pulls full current values through
    the QP (fetching virtual attributes as needed) and compares with the
    bottom-up recomputation over the live sources.

    When the VAP temp cache holds entries, each answer is additionally
    recomputed with the cache bypassed (cold construction, fresh polls) and
    the two mediator answers must be bit-identical — every cached or
    subsumption-served result in the test suite is thereby cross-checked
    against the uncached query path, not just against ground truth.
    """
    truth = recompute_all(mediator.vdp, mediator.sources)
    targets = [relation] if relation else list(mediator.vdp.exports)
    for name in targets:
        current = mediator.query_relation(name)
        expected = truth[name]
        if current != expected:
            raise AssertionError(
                f"view {name!r} diverged from ground truth:\n"
                f"  mediator: {sorted(current.to_sorted_list())[:10]}\n"
                f"  truth:    {sorted(expected.to_sorted_list())[:10]}"
            )
        if mediator.vap.cache.entry_count():
            with mediator.vap.cache_bypassed():
                cold = mediator.query_relation(name)
            if current != cold:
                raise AssertionError(
                    f"view {name!r}: cache-served answer diverged from "
                    f"cold-cache recompute:\n"
                    f"  cached: {sorted(current.to_sorted_list())[:10]}\n"
                    f"  cold:   {sorted(cold.to_sorted_list())[:10]}"
                )


def assert_materialized_correct(mediator: SquirrelMediator) -> None:
    """Assert every *materialized repository* matches a from-scratch rebuild.

    Stronger than :func:`assert_view_correct` for chaos testing: exports can
    look right while an internal node's repository silently corrupted (a
    dropped or duplicated delta often cancels at the export but skews an
    intermediate bag's multiplicities).  This rebuilds a fresh
    :class:`~repro.core.LocalStore` from current source snapshots — the
    exact ``t_view_init`` procedure — and demands equality, projection and
    multiplicities included, for every storing node.
    """
    from repro.core.local_store import LocalStore

    leaf_values = {}
    snapshots = {}
    vdp = mediator.vdp
    for leaf in vdp.leaves():
        source_name = vdp.source_of_leaf(leaf)
        if source_name not in snapshots:
            snapshots[source_name] = mediator.sources[source_name].state()
        leaf_values[leaf] = snapshots[source_name][leaf]
    fresh = LocalStore(mediator.annotated)
    fresh.initialize(leaf_values)

    for name, expected in fresh.repos().items():
        current = mediator.store.repo(name)
        if current != expected:
            raise AssertionError(
                f"materialized node {name!r} diverged from from-scratch rebuild:\n"
                f"  mediator: {sorted(current.to_sorted_list())[:10]}\n"
                f"  rebuild:  {sorted(expected.to_sorted_list())[:10]}"
            )
