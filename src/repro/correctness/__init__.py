"""Correctness formalism: consistency, pseudo-consistency, freshness.

Implements the Section 3 definitions as checkers over recorded traces:
:class:`IntegrationTrace` records source and view state histories;
:func:`check_consistency` searches for a ``reflect`` function (validity +
chronology + order preservation); :func:`check_pseudo_consistency` tests
Remark 3.1's strictly weaker property; :func:`check_freshness` measures
achieved staleness against an analytic bound (Theorem 7.2).  The
:mod:`~repro.correctness.recompute` oracle recomputes any view relation
bottom-up from live sources.
"""

from repro.correctness.consistency import (
    ConsistencyVerdict,
    check_consistency,
    check_pseudo_consistency,
    find_candidate_vectors,
    view_function_from_vdp,
)
from repro.correctness.freshness import (
    FreshnessReport,
    StalenessTag,
    TaggedAnswer,
    check_freshness,
    check_tagged_staleness,
    measure_staleness,
)
from repro.correctness.recompute import (
    assert_materialized_correct,
    assert_view_correct,
    recompute,
    recompute_all,
)
from repro.correctness.trace import IntegrationTrace, SourceStateRecord, ViewStateRecord

__all__ = [
    "IntegrationTrace",
    "SourceStateRecord",
    "ViewStateRecord",
    "ConsistencyVerdict",
    "check_consistency",
    "check_pseudo_consistency",
    "find_candidate_vectors",
    "view_function_from_vdp",
    "FreshnessReport",
    "check_freshness",
    "measure_staleness",
    "StalenessTag",
    "TaggedAnswer",
    "check_tagged_staleness",
    "recompute",
    "recompute_all",
    "assert_view_correct",
    "assert_materialized_correct",
]
