"""Consistency and pseudo-consistency checking (Section 3).

An integration environment is *consistent* when a function
``reflect : Time → Time^n`` exists satisfying

* **Validity** — ``state(V, t) = ν(state(DB, reflect(t)))``,
* **Chronology** — ``reflect(t)_i ≤ t`` (the view never forecasts), and
* **Order preservation** — ``t1 ≤ t2 ⇒ reflect(t1) ≤ reflect(t2)``.

*Pseudo-consistency* (Remark 3.1) only demands, for each *pair* of view
times, some pair of ordered valid vectors — strictly weaker, as Figure 2's
six-step scenario shows (reproduced in the tests and in
``benchmarks/bench_fig2_consistency.py``).

The checker does an exact search: for every recorded view state it
enumerates the source-state vectors that are valid and chronological, then
looks for a monotone chain through those candidate sets via depth-first
search with memoized dead-ends.  Traces from the simulator are small
(tens of states), so exactness is affordable — and the search *constructs*
the ``reflect`` function as its witness, matching how Section 6.1 builds
``ref`` from transaction timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.correctness.trace import IntegrationTrace, _freeze_state
from repro.relalg import Evaluator, Relation
from repro.core.vdp import VDP

__all__ = [
    "ConsistencyVerdict",
    "view_function_from_vdp",
    "find_candidate_vectors",
    "check_consistency",
    "check_pseudo_consistency",
]

# A view function: {source: {relation: value}} -> {export: value}
ViewFunction = Callable[[Mapping[str, Mapping[str, Relation]]], Dict[str, Relation]]


def view_function_from_vdp(vdp: VDP) -> ViewFunction:
    """The view definition ``ν`` induced by a VDP: evaluate all exports
    bottom-up over given source states."""

    def nu(source_states: Mapping[str, Mapping[str, Relation]]) -> Dict[str, Relation]:
        catalog: Dict[str, Relation] = {}
        for leaf in vdp.leaves():
            source = vdp.source_of_leaf(leaf)
            catalog[leaf] = source_states[source][leaf]
        for name in vdp.topological_order():
            node = vdp.node(name)
            if node.is_leaf:
                continue
            catalog[name] = Evaluator(catalog).evaluate(node.definition, name)
        return {export: catalog[export] for export in vdp.exports}

    return nu


@dataclass
class ConsistencyVerdict:
    """Outcome of a consistency analysis."""

    consistent: bool
    pseudo_consistent: bool
    reflect: Optional[List[Dict[str, float]]] = None  # per view record, per source
    failures: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        flags = f"consistent={self.consistent} pseudo_consistent={self.pseudo_consistent}"
        if self.failures:
            return f"{flags}; failures: {'; '.join(self.failures)}"
        return flags


class _CandidateFinder:
    """Enumerates valid, chronological source-state vectors per view record."""

    def __init__(self, trace: IntegrationTrace, view_fn: ViewFunction):
        self.trace = trace
        self.view_fn = view_fn
        self.sources = trace.source_names
        self._nu_cache: Dict[Tuple[int, ...], Tuple] = {}

    def _nu_fingerprint(self, vector: Tuple[int, ...]) -> Tuple:
        cached = self._nu_cache.get(vector)
        if cached is not None:
            return cached
        states = {
            source: self.trace.source_history(source)[idx].state
            for source, idx in zip(self.sources, vector)
        }
        result = self.view_fn(states)
        fingerprint = _freeze_state(result)
        self._nu_cache[vector] = fingerprint
        return fingerprint

    def candidates(self, record_index: int) -> List[Tuple[int, ...]]:
        """All vectors (source-record indices) valid for one view record."""
        view = self.trace.view_history()[record_index]
        per_source: List[List[int]] = [
            self.trace.candidate_indices(source, view.time) for source in self.sources
        ]
        if any(not options for options in per_source):
            return []
        found: List[Tuple[int, ...]] = []
        for vector in _product(per_source):
            if self._nu_fingerprint(vector) == view.fingerprint:
                found.append(vector)
        return found


def _product(options: Sequence[Sequence[int]]):
    if not options:
        yield ()
        return
    head, *tail = options
    for h in head:
        for rest in _product(tail):
            yield (h,) + rest


def find_candidate_vectors(
    trace: IntegrationTrace, view_fn: ViewFunction
) -> List[List[Tuple[int, ...]]]:
    """Candidate (valid + chronological) vectors for every view record."""
    trace.validate()
    finder = _CandidateFinder(trace, view_fn)
    return [finder.candidates(i) for i in range(len(trace.view_history()))]


def _leq(u: Tuple[int, ...], v: Tuple[int, ...]) -> bool:
    return all(a <= b for a, b in zip(u, v))


def check_consistency(trace: IntegrationTrace, view_fn: ViewFunction) -> ConsistencyVerdict:
    """Run the full Section 3 analysis over a recorded trace."""
    candidates = find_candidate_vectors(trace, view_fn)
    failures: List[str] = []
    views = trace.view_history()

    for i, options in enumerate(candidates):
        if not options:
            failures.append(
                f"view state at t={views[i].time} ({views[i].kind}) matches no "
                "chronological source-state vector (validity/chronology violated)"
            )
    pseudo = not failures and _pseudo_consistent(candidates)

    chain: Optional[List[Tuple[int, ...]]] = None
    if not failures:
        width = len(trace.source_names)
        chain = _chain_dfs(candidates, width)
        if chain is None:
            failures.append(
                "every view state is individually valid, but no order-preserving "
                "reflect chain exists (order preservation violated)"
            )

    reflect = None
    if chain is not None:
        reflect = []
        for vector in chain:
            reflect.append(
                {
                    source: trace.source_history(source)[idx].time
                    for source, idx in zip(trace.source_names, vector)
                }
            )
    return ConsistencyVerdict(
        consistent=chain is not None,
        pseudo_consistent=pseudo,
        reflect=reflect,
        failures=failures,
    )


def _chain_dfs(
    candidates: List[List[Tuple[int, ...]]], width: int
) -> Optional[List[Tuple[int, ...]]]:
    dead: Set[Tuple[int, Tuple[int, ...]]] = set()

    def dfs(index: int, previous: Tuple[int, ...]) -> Optional[List[Tuple[int, ...]]]:
        if index == len(candidates):
            return []
        key = (index, previous)
        if key in dead:
            return None
        viable = sorted(
            (v for v in candidates[index] if _leq(previous, v)),
            key=lambda v: (sum(v), v),
        )
        for vector in viable:
            rest = dfs(index + 1, vector)
            if rest is not None:
                return [vector] + rest
        dead.add(key)
        return None

    return dfs(0, tuple([0] * width))


def check_pseudo_consistency(
    trace: IntegrationTrace, view_fn: ViewFunction
) -> bool:
    """Remark 3.1's weaker property, checked directly from its definition."""
    candidates = find_candidate_vectors(trace, view_fn)
    if any(not options for options in candidates):
        return False
    return _pseudo_consistent(candidates)


def _pseudo_consistent(candidates: List[List[Tuple[int, ...]]]) -> bool:
    for i in range(len(candidates)):
        for j in range(i, len(candidates)):
            if not any(
                _leq(u, v) for u in candidates[i] for v in candidates[j]
            ):
                return False
    return True
