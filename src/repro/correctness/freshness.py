"""Freshness measurement against the Theorem 7.2 bound (Sections 3 and 7).

An environment is *guaranteed fresh within* ``f̄`` when, for every time
``t``, some valid source-state vector ``t'`` has ``t − t'_i ≤ f_i`` for all
``i``.  Measurement over a recorded trace:

* per view record, among all valid + chronological source-state vectors,
  pick the one minimizing the worst per-source staleness (ties broken by
  total staleness) — this is the environment's *achieved* staleness at that
  instant;
* the run-level report is the per-source maximum over records, which is the
  tightest ``f̄`` the observed run actually exhibited.

``check_freshness`` compares the achieved vector against an analytic bound
(e.g. :meth:`repro.sim.EnvironmentDelays.freshness_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.correctness.consistency import ViewFunction, find_candidate_vectors
from repro.correctness.trace import IntegrationTrace
from repro.faults.staleness import StalenessTag, TaggedAnswer

__all__ = [
    "FreshnessReport",
    "measure_staleness",
    "check_freshness",
    "StalenessTag",
    "TaggedAnswer",
    "check_tagged_staleness",
]


@dataclass
class FreshnessReport:
    """Achieved staleness over a run, and (optionally) a bound comparison."""

    per_record: List[Dict[str, float]]  # best staleness vector per view record
    worst: Dict[str, float]             # per-source max over all records
    bound: Optional[Dict[str, float]] = None
    within_bound: Optional[bool] = None
    violations: List[str] = field(default_factory=list)

    def headroom(self) -> Optional[Dict[str, float]]:
        """``bound - worst`` per source (how loose the bound was)."""
        if self.bound is None:
            return None
        return {s: self.bound[s] - self.worst.get(s, 0.0) for s in self.bound}


def measure_staleness(
    trace: IntegrationTrace, view_fn: ViewFunction
) -> List[Dict[str, float]]:
    """The best achievable staleness vector for every view record.

    A record with no valid vector yields an infinite staleness for every
    source (the view was simply wrong at that instant — the consistency
    checker will say so too).
    """
    candidates = find_candidate_vectors(trace, view_fn)
    views = trace.view_history()
    sources = trace.source_names
    results: List[Dict[str, float]] = []
    for record, options in zip(views, candidates):
        if not options:
            results.append({s: float("inf") for s in sources})
            continue
        best: Optional[Tuple[float, float, Dict[str, float]]] = None
        for vector in options:
            staleness = {
                source: _staleness(trace, source, idx, record.time)
                for source, idx in zip(sources, vector)
            }
            key = (max(staleness.values()), sum(staleness.values()))
            if best is None or key < best[:2]:
                best = (key[0], key[1], staleness)
        results.append(best[2])
    return results


def _staleness(trace: IntegrationTrace, source: str, idx: int, view_time: float) -> float:
    """How far behind ``view_time`` the ``idx``-th recorded state of
    ``source`` is.

    A state is valid on ``[t_idx, t_{idx+1})``; the definition's ``t'`` may
    be any instant in that interval, so staleness is measured from the
    *latest* valid instant not after ``view_time``: zero when the state is
    still current, else the time since it was replaced.
    """
    history = trace.source_history(source)
    if idx + 1 >= len(history):
        return 0.0
    replaced_at = history[idx + 1].time
    return max(0.0, view_time - replaced_at)


def check_freshness(
    trace: IntegrationTrace,
    view_fn: ViewFunction,
    bound: Mapping[str, float],
) -> FreshnessReport:
    """Measure achieved staleness and verify it stays within ``bound``."""
    per_record = measure_staleness(trace, view_fn)
    views = trace.view_history()
    sources = trace.source_names
    worst: Dict[str, float] = {s: 0.0 for s in sources}
    violations: List[str] = []
    for record, staleness in zip(views, per_record):
        for source, value in staleness.items():
            worst[source] = max(worst[source], value)
            limit = bound.get(source)
            if limit is not None and value > limit + 1e-9:
                violations.append(
                    f"t={record.time} ({record.kind}): source {source!r} staleness "
                    f"{value:.3f} exceeds bound {limit:.3f}"
                )
    return FreshnessReport(
        per_record=per_record,
        worst=worst,
        bound=dict(bound),
        within_bound=not violations,
        violations=violations,
    )


def check_tagged_staleness(
    tags: List[StalenessTag], bound: Mapping[str, float]
) -> List[str]:
    """Violations of ``bound`` across live staleness tags.

    The degraded-answer counterpart of :func:`check_freshness`: tags are
    the mediator's *own* per-answer staleness disclosures
    (:meth:`repro.core.SquirrelMediator.staleness_tag`) rather than
    measurements over a recorded trace.  During an outage the ordinary
    Theorem 7.2 bound is expected to fail for the down source — callers
    typically check tags against an outage-widened bound (add the maximum
    outage length to the affected source's ``f̄`` entry).
    """
    violations: List[str] = []
    for tag in tags:
        for source, value in tag.staleness.items():
            limit = bound.get(source)
            if limit is not None and value > limit + 1e-9:
                violations.append(
                    f"t={tag.time}: source {source!r} tagged staleness "
                    f"{value:.3f} exceeds bound {limit:.3f}"
                )
    return violations
