"""Trace recording for the correctness definitions of Section 3.

The definitions quantify over ``state(DB_i, t)`` and ``state(V, t)`` under a
global time no process can read.  The observer side of the reproduction
records exactly those: each source's state history (a snapshot at every
commit) and the view's state at interesting times (view-init, update
transaction commits, query answers).  The checkers in
:mod:`repro.correctness.consistency` and :mod:`repro.correctness.freshness`
then search for a ``reflect`` function over the recorded trace.

State snapshots are compared structurally, and consecutive identical source
states are collapsed — ``reflect`` ranges over *states*, so duplicates only
inflate the search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConsistencyError
from repro.relalg import Relation

__all__ = ["SourceStateRecord", "ViewStateRecord", "IntegrationTrace"]

SourceState = Mapping[str, Relation]  # relation name -> value
ViewState = Mapping[str, Relation]    # export name -> value


def _freeze_state(state: Mapping[str, Relation]) -> Tuple[Tuple[str, Tuple], ...]:
    """A hashable structural fingerprint of a multi-relation state."""
    return tuple(
        (name, tuple(state[name].to_sorted_list())) for name in sorted(state)
    )


@dataclass
class SourceStateRecord:
    """One source database state, valid from ``time`` until the next record."""

    time: float
    state: Dict[str, Relation]
    fingerprint: Tuple = field(repr=False, default=())

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = _freeze_state(self.state)


@dataclass
class ViewStateRecord:
    """The view's observed state at one instant."""

    time: float
    kind: str  # "init" | "update" | "query"
    state: Dict[str, Relation]
    fingerprint: Tuple = field(repr=False, default=())

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = _freeze_state(self.state)


class IntegrationTrace:
    """The recorded history of one integration environment run."""

    def __init__(self, source_names: List[str]):
        self.source_names = sorted(source_names)
        self._sources: Dict[str, List[SourceStateRecord]] = {n: [] for n in self.source_names}
        self._views: List[ViewStateRecord] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_source_state(self, source: str, time: float, state: Mapping[str, Relation]) -> None:
        """Record a source's state (call at init and after every commit)."""
        history = self._history(source)
        record = SourceStateRecord(time, dict(state))
        if history:
            if time < history[-1].time:
                raise ConsistencyError(
                    f"out-of-order source record for {source!r}: {time} < {history[-1].time}"
                )
            if history[-1].fingerprint == record.fingerprint:
                return  # no observable change; collapse
        history.append(record)

    def record_view_state(
        self, time: float, kind: str, state: Mapping[str, Relation]
    ) -> None:
        """Record the view's state (init / update-commit / query answer)."""
        if self._views and time < self._views[-1].time:
            raise ConsistencyError(
                f"out-of-order view record: {time} < {self._views[-1].time}"
            )
        self._views.append(ViewStateRecord(time, kind, dict(state)))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _history(self, source: str) -> List[SourceStateRecord]:
        try:
            return self._sources[source]
        except KeyError as exc:
            raise ConsistencyError(f"unknown source {source!r} in trace") from exc

    def source_history(self, source: str) -> List[SourceStateRecord]:
        """All recorded states of one source, in time order."""
        return list(self._history(source))

    def view_history(self, kinds: Optional[Tuple[str, ...]] = None) -> List[ViewStateRecord]:
        """Recorded view states, optionally filtered by record kind."""
        if kinds is None:
            return list(self._views)
        return [v for v in self._views if v.kind in kinds]

    def source_state_at(self, source: str, time: float) -> Optional[SourceStateRecord]:
        """The latest source record with ``record.time <= time``."""
        best = None
        for record in self._history(source):
            if record.time <= time:
                best = record
            else:
                break
        return best

    def candidate_indices(self, source: str, time: float) -> List[int]:
        """Indices of all source records valid at or before ``time``."""
        return [
            i for i, record in enumerate(self._history(source)) if record.time <= time
        ]

    def validate(self) -> None:
        """Sanity-check the trace before analysis."""
        for source in self.source_names:
            if not self._sources[source]:
                raise ConsistencyError(f"no recorded states for source {source!r}")
        if not self._views:
            raise ConsistencyError("no recorded view states")

    def __repr__(self) -> str:
        per_source = {s: len(h) for s, h in self._sources.items()}
        return f"<IntegrationTrace views={len(self._views)} sources={per_source}>"
