"""The kill/restart simulator for crash-injection testing.

Drives one mediator through a scripted workload of source commits (and
optional autonomous source-log compactions), with a
:class:`~repro.faults.CrashSchedule` deciding where the mediator "dies".
A crash is modelled as :class:`~repro.errors.SimulatedCrash` escaping the
refresh: the harness abandons the mediator object wholesale (everything
in memory is lost, exactly like a kill -9), recovers a fresh one from the
durability directory through :class:`~repro.durability.RecoveryManager`,
re-attaches durability, and carries on with the remaining steps.

Because every commit step runs its own ``refresh()``, the N-th commit step
is the N-th committed update transaction — which is precisely the ``txn``
coordinate a :class:`~repro.faults.CrashPoint` names, so property tests
can draw crash points against workload positions deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.mediator import SquirrelMediator
from repro.core.vdp import AnnotatedVDP
from repro.deltas import SetDelta
from repro.durability.checkpoint import CheckpointPolicy
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import RecoveryManager, RecoveryResult
from repro.errors import SimulatedCrash
from repro.sources.base import SourceDatabase

__all__ = ["Commit", "CompactLog", "CrashRunOutcome", "run_crash_workload"]


@dataclass(frozen=True)
class Commit:
    """Commit one transaction at a source, then refresh the mediator.

    ``refresh=False`` commits silently — the mediator is not refreshed, so
    the transaction sits in the source's log and announcement accumulator
    unheard.  A following :class:`CompactLog` can then drop log entries
    the mediator has never reflected, which is the scenario that forces a
    later recovery into selective re-initialization.
    """

    source: str
    delta: SetDelta
    refresh: bool = True


@dataclass(frozen=True)
class CompactLog:
    """The source autonomously reclaims its log through ``through``
    (default: everything so far) — the event that forces selective
    re-initialization if the mediator later needs the dropped range."""

    source: str
    through: Optional[int] = None


Step = Union[Commit, CompactLog]


@dataclass
class CrashRunOutcome:
    """What a crash-injected workload run produced."""

    mediator: SquirrelMediator
    manager: DurabilityManager
    crashes: List[Tuple[str, int]] = field(default_factory=list)
    recoveries: List[RecoveryResult] = field(default_factory=list)
    commits: int = 0


def run_crash_workload(
    annotated: AnnotatedVDP,
    sources: Mapping[str, SourceDatabase],
    directory: str,
    steps: Sequence[Step],
    crash_schedule=None,
    policy: Optional[CheckpointPolicy] = None,
    mediator_kwargs: Optional[Dict] = None,
) -> CrashRunOutcome:
    """Run ``steps`` against a durable mediator, recovering after each crash.

    Returns the final live mediator (durability still attached via
    ``outcome.manager``) plus every crash and recovery along the way.  The
    caller owns the sources — they survive mediator "deaths", exactly like
    autonomous databases survive a mediator host reboot.
    """
    kwargs = dict(mediator_kwargs or {})
    mediator = SquirrelMediator(annotated, sources, **kwargs)
    mediator.initialize()
    manager = DurabilityManager.attach(
        mediator, directory, policy=policy, crash_schedule=crash_schedule
    )
    outcome = CrashRunOutcome(mediator=mediator, manager=manager)

    for step in steps:
        if isinstance(step, CompactLog):
            source = sources[step.source]
            through = step.through if step.through is not None else source.txn_count
            source.compact_log(through)
            continue
        sources[step.source].execute(step.delta)
        outcome.commits += 1
        if not step.refresh:
            continue
        try:
            mediator.refresh()
        except SimulatedCrash as crash:
            manager.close()
            while True:
                outcome.crashes.append((crash.phase, crash.txn))
                # The process is "dead": drop every in-memory structure,
                # keep only what the durability directory and the sources
                # hold.
                recovery = RecoveryManager(directory).recover(
                    annotated, sources, **kwargs
                )
                outcome.recoveries.append(recovery)
                mediator = recovery.mediator
                try:
                    manager = DurabilityManager.attach(
                        mediator, directory, policy=policy,
                        crash_schedule=crash_schedule,
                    )
                    break
                except SimulatedCrash as again:
                    # Died during the post-recovery re-base checkpoint;
                    # nothing was published, so recovery simply restarts.
                    crash = again
            outcome.mediator = mediator
            outcome.manager = manager
    return outcome
