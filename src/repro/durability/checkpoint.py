"""Non-quiescent incremental checkpoints of the mediator's local store.

A checkpoint is one JSON file ``ckpt-<id>.json`` holding::

    {"format": 1, "id": N, "parent": N-1-or-null, "complete": true,
     "wal_txn": T, "source_seqs": {...}, "cursors": {...},
     "nodes": {name: {"columns": [...], "rows": [[values, mult], ...]}}}

``wal_txn`` is the committed-transaction index the image corresponds to
(WAL records at or below it are absorbed); ``source_seqs`` carries the
per-source WAL sequence floor for idempotent replay; ``cursors`` the
per-source log positions the image reflects.  A *base* checkpoint
(``parent: null``) stores every storing node; an *incremental* one stores
only the nodes dirtied since its parent — recovery walks the parent chain
newest-first, taking each node's newest image, until the base closes the
set.

Atomicity is rename-based: the payload is written to ``.tmp`` in full and
published with ``os.replace``.  A crash mid-checkpoint leaves only a
``.tmp`` (never loaded) plus the intact previous chain — and since the WAL
is compacted only *after* publish, every record the previous chain needs
is still there.

Checkpoints are taken at transaction boundaries — between IUP update
transactions, never inside one — which is what lets them run without
quiescing the queue: the store is always transaction-consistent at that
instant, and queued-but-unreflected announcements are simply not part of
the image (their log entries sit past the recorded cursors).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MediatorError

__all__ = ["CheckpointPolicy", "CheckpointStore"]

_FORMAT = 1
_NAME_RE = re.compile(r"^ckpt-(\d+)\.json$")


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the durability manager takes an incremental checkpoint.

    A checkpoint is due after ``every_txns`` committed transactions or
    ``every_wal_bytes`` of WAL growth since the last one, whichever trips
    first; a non-positive value disables that trigger.  Both disabled
    means checkpoints only on demand (:meth:`DurabilityManager.checkpoint`).
    """

    every_txns: int = 8
    every_wal_bytes: int = 64 * 1024

    def due(self, txns_since: int, wal_bytes_since: int) -> bool:
        """True when either trigger has tripped."""
        if self.every_txns > 0 and txns_since >= self.every_txns:
            return True
        if self.every_wal_bytes > 0 and wal_bytes_since >= self.every_wal_bytes:
            return True
        return False


class CheckpointStore:
    """Reads and writes the checkpoint files of one durability directory."""

    def __init__(self, directory: str):
        self.directory = directory

    def path_for(self, ckpt_id: int) -> str:
        return os.path.join(self.directory, f"ckpt-{ckpt_id:08d}.json")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, payload: Dict, abort_before_publish: bool = False) -> str:
        """Atomically publish one checkpoint; returns its path.

        ``abort_before_publish=True`` simulates the mid-checkpoint crash:
        the ``.tmp`` is fully written but the rename never happens.
        """
        ckpt_id = payload["id"]
        payload = dict(payload, format=_FORMAT, complete=True)
        path = self.path_for(ckpt_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            fh.flush()
        if abort_before_publish:
            return tmp
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_all(self) -> Dict[int, Dict]:
        """Every valid published checkpoint, keyed by id.

        Unparseable files, format mismatches, and anything not marked
        ``complete`` are skipped (``.tmp`` leftovers never match the file
        name pattern in the first place).
        """
        out: Dict[int, Dict] = {}
        if not os.path.isdir(self.directory):
            return out
        for name in os.listdir(self.directory):
            match = _NAME_RE.match(name)
            if not match:
                continue
            try:
                with open(os.path.join(self.directory, name), encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
                continue
            if not payload.get("complete") or payload.get("id") != int(match.group(1)):
                continue
            out[payload["id"]] = payload
        return out

    def latest_id(self) -> Optional[int]:
        """The newest published checkpoint id, if any."""
        ids = self.load_all()
        return max(ids) if ids else None

    def resolve_chain(
        self, storing_nodes: Iterable[str]
    ) -> Tuple[Dict, Dict[str, Dict]]:
        """The newest usable checkpoint chain, resolved to per-node images.

        Walks candidates newest-first; for each, follows the parent chain
        collecting each node's *newest* image until a base checkpoint
        closes it.  Returns ``(newest_checkpoint_meta, node_images)``.
        A candidate whose chain is broken (missing parent) or, once
        closed, does not cover every storing node is skipped — the next
        older candidate is tried.  Raises when nothing usable remains.
        """
        storing = set(storing_nodes)
        checkpoints = self.load_all()
        for candidate in sorted(checkpoints, reverse=True):
            nodes: Dict[str, Dict] = {}
            meta = checkpoints[candidate]
            current: Optional[Dict] = meta
            usable = False
            while current is not None:
                for name, image in current["nodes"].items():
                    nodes.setdefault(name, image)
                parent = current.get("parent")
                if parent is None:
                    usable = True
                    break
                current = checkpoints.get(parent)
            if usable and storing <= set(nodes):
                return meta, {name: nodes[name] for name in storing}
        raise MediatorError(
            f"no usable checkpoint chain in {self.directory!r}; cold-initialize instead"
        )
