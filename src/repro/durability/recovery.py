"""Restart recovery: checkpoint + WAL tail + source-log catch-up.

The recovery state machine (``docs/durability.md`` draws the picture):

1. **Load** the newest usable checkpoint chain and rebuild every storing
   node's repository from it.  The chain's ``cursors`` say exactly which
   source-log prefix that image reflects; ``source_seqs`` give the WAL
   replay floor per source.
2. **Replay the WAL tail** — records with ``txn`` past the chain's
   ``wal_txn``.  Each record's per-source component is skipped when its
   ``(source, seq)`` is at or below the checkpoint's floor (idempotence
   under arbitrary crash/restart interleavings); surviving deltas fold
   into one net per source and the cursors advance to the record's.
3. **Catch up from source logs** — each announcing source's log entries
   past its post-WAL cursor fold into the same per-source net (the source
   committed them while the mediator was down or before it could log
   them).  The pending announcement accumulator is discarded atomically
   with the cursor read: replay covers the same transactions.
4. One net per source is enqueued and **a single update transaction**
   propagates everything incrementally — recovery costs one propagation
   pass regardless of how many transactions were lost.
5. A source whose log has been **compacted past the cursor** cannot catch
   up by replay.  With ``on_stale="reinit"`` (the default here — recovery
   should self-heal) only that source's leaf relations and the
   materialized subtree above them are rebuilt from a fresh snapshot
   (:func:`~repro.core.persistence.reinitialize_sources`), staleness-tagged
   while the rebuild is in flight; ``on_stale="raise"`` surfaces
   :class:`~repro.errors.SnapshotStaleError` instead.

Why the catch-up transaction may run while stale sources are still wrong:
the contamination is confined.  During step 4 a stale source's leaves
contribute stale rows only to their *ancestors* — exactly the nodes step 5
recomputes from scratch and swaps wholesale.  Every node outside that
closure reads nothing from the stale leaves, by the VDP's edge structure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.mediator import SquirrelMediator
from repro.core.persistence import decode_repo, reinitialize_sources
from repro.core.vdp import AnnotatedVDP
from repro.deltas import SetDelta, net_accumulate
from repro.durability.checkpoint import CheckpointStore
from repro.durability.manager import WAL_FILENAME
from repro.durability.wal import WriteAheadLog
from repro.errors import MediatorError, SnapshotStaleError
from repro.sources.base import SourceDatabase

__all__ = ["RecoveryResult", "RecoveryManager"]


@dataclass
class RecoveryResult:
    """What one recovery did."""

    mediator: SquirrelMediator
    checkpoint_id: int
    wal_records_replayed: int = 0
    replayed_txns: int = 0  # source-log transactions caught up past cursors
    reinitialized_sources: Tuple[str, ...] = ()
    reinitialized_nodes: Tuple[str, ...] = ()
    stale_gaps: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class RecoveryManager:
    """Rebuilds a mediator from one durability directory."""

    def __init__(self, directory: str):
        self.directory = directory
        self.checkpoints = CheckpointStore(directory)

    def recover(
        self,
        annotated: AnnotatedVDP,
        sources: Mapping[str, SourceDatabase],
        on_stale: str = "reinit",
        **mediator_kwargs,
    ) -> RecoveryResult:
        """Run the full recovery protocol; returns the live mediator.

        ``mediator_kwargs`` pass through to :class:`SquirrelMediator`
        (tracer, feature toggles).  Raises :class:`MediatorError` when the
        directory holds no usable checkpoint chain, and
        :class:`SnapshotStaleError` when a source's log gap cannot be
        replayed and ``on_stale="raise"``.
        """
        if on_stale not in ("raise", "reinit"):
            raise MediatorError(f"on_stale must be 'raise' or 'reinit', got {on_stale!r}")
        mediator = SquirrelMediator(annotated, sources, **mediator_kwargs)
        tracer = mediator.tracer
        with tracer.span("recovery") as span:
            meta, node_images = self.checkpoints.resolve_chain(
                annotated.nodes_with_storage()
            )
            for node_name, image in node_images.items():
                node = annotated.vdp.node(node_name)
                mediator.store.install_repo(
                    node_name,
                    decode_repo(
                        node.kind,
                        mediator.store.stored_schema(node_name),
                        image["columns"],
                        image["rows"],
                        node_name,
                    ),
                )
            mediator.store._initialized = True
            mediator.store._build_declared_indexes()
            mediator._initialized = True

            cursors: Dict[str, int] = {
                name: int(value) for name, value in meta.get("cursors", {}).items()
            }
            seq_floor: Dict[str, int] = {
                name: int(value) for name, value in meta.get("source_seqs", {}).items()
            }

            # Step 2: the WAL tail, filtered by the (source, seq) floor.
            wal_nets: Dict[str, SetDelta] = {}
            wal_records = 0
            with tracer.span("wal_replay") as wal_span:
                tail = [
                    record
                    for record in WriteAheadLog.read_records(
                        os.path.join(self.directory, WAL_FILENAME)
                    )
                    if record.txn > meta.get("wal_txn", 0)
                ]
                for record in tail:
                    wal_records += 1
                    for name, entry in record.sources.items():
                        if entry.seq <= seq_floor.get(name, 0):
                            continue
                        existing = wal_nets.get(name)
                        wal_nets[name] = (
                            entry.delta
                            if existing is None
                            else net_accumulate(existing, entry.delta)
                        )
                        if entry.cursor is not None:
                            cursors[name] = max(cursors.get(name, 0), entry.cursor)
                wal_span.set(records=wal_records, sources=sorted(wal_nets))
            for name, cursor in cursors.items():
                if name in mediator.sources:
                    mediator.queue.note_reflected_cursor(name, cursor)

            # Step 3: source-log catch-up past the post-WAL cursors, with
            # staleness detection against compacted logs.
            stale: Dict[str, Tuple[int, int]] = {}
            replayed = 0
            for source_name, kind in sorted(mediator.contributor_kinds.items()):
                if not kind.announces:
                    continue
                source = mediator.sources[source_name]
                cursor = cursors.get(source_name, 0)
                _, now_cursor = source.take_announcement_versioned()
                logged = {seq: delta for seq, delta in source.log()}
                needed = range(cursor + 1, now_cursor + 1)
                if any(seq not in logged for seq in needed):
                    present = sorted(logged)
                    floor = present[0] if present else now_cursor + 1
                    stale[source_name] = (cursor, floor)
                    continue
                net = wal_nets.get(source_name, SetDelta())
                for seq in needed:
                    net = net_accumulate(net, logged[seq])
                    replayed += 1
                if not net.is_empty():
                    mediator.enqueue_update(source_name, net, cursor=now_cursor)
                else:
                    mediator.queue.note_reflected_cursor(source_name, now_cursor)
            if stale and on_stale == "raise":
                raise SnapshotStaleError(stale)
            if tracer.enabled and stale:
                tracer.event(
                    "snapshot_stale",
                    gaps={
                        name: {"cursor": gap[0], "log_floor": gap[1]}
                        for name, gap in sorted(stale.items())
                    },
                )

            # Step 4: one propagation pass over everything recovered.
            mediator.run_update_transaction()
            if tracer.enabled:
                tracer.event(
                    "recovery_catchup",
                    wal_records=wal_records,
                    replayed_txns=replayed,
                    stale=sorted(stale),
                )

            # Step 5: selective re-initialization of stale sources.
            reinit_nodes: Tuple[str, ...] = ()
            if stale:
                names = sorted(stale)
                for name in names:
                    mediator.begin_resync(name)
                try:
                    with tracer.span("selective_reinit") as reinit_span:
                        reinit_nodes = reinitialize_sources(mediator, names)
                        reinit_span.set(sources=names, nodes=sorted(reinit_nodes))
                finally:
                    for name in names:
                        mediator.end_resync(name)
            span.set(
                checkpoint=meta["id"],
                wal_records=wal_records,
                replayed_txns=replayed,
                stale=sorted(stale),
            )

        result = RecoveryResult(
            mediator=mediator,
            checkpoint_id=meta["id"],
            wal_records_replayed=wal_records,
            replayed_txns=replayed,
            reinitialized_sources=tuple(sorted(stale)),
            reinitialized_nodes=tuple(sorted(reinit_nodes)),
            stale_gaps=stale,
        )
        mediator.metrics.register_callable(
            "recovery.wal_records_replayed", lambda: result.wal_records_replayed
        )
        mediator.metrics.register_callable(
            "recovery.replayed_txns", lambda: result.replayed_txns
        )
        mediator.metrics.register_callable(
            "recovery.reinitialized_sources", lambda: len(result.reinitialized_sources)
        )
        return result
