"""The write-ahead delta log.

One line per committed mediator update transaction:

``W1 <crc32-hex> <payload-json>\\n``

with payload::

    {"txn": N,
     "sources": {name: {"seq": K, "cursor": C-or-null,
                        "delta": [[relation, {attr: value, ...}, sign], ...]}}}

``txn`` is the global 1-based committed-transaction index, strictly
increasing across the file.  Per source, ``seq`` is a monotone counter of
WAL records mentioning that source — the ``(source, seq)`` pair is the
replay idempotence key: a checkpoint remembers the highest seq per source
it absorbed, and recovery skips any component at or below it.  ``cursor``
is the source-log position the component's net delta brings a reader up to
(``null`` when the announcement arrived without one); ``delta`` is the
transaction's net :class:`~repro.deltas.SetDelta` for that source.

The log is *torn-tail tolerant*: the reader stops at the first line that
fails any validation (bad prefix, CRC mismatch, malformed JSON, missing
key, non-increasing ``txn``) and returns everything before it.  A crash
mid-append therefore costs at most the record being written — which the
recovery protocol re-derives from the source's own log, since the source
commits *before* the mediator ever sees the announcement.

Appends are flushed to the OS on every record; pass ``sync=True`` to also
``fsync`` (real durability at real cost — the simulated crash tests model
the crash as an exception, so the default keeps them fast).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.deltas import SetDelta
from repro.errors import MediatorError
from repro.relalg import Row

__all__ = ["WalSourceEntry", "WalRecord", "WriteAheadLog"]

_MAGIC = "W1"


def _encode_delta(delta: SetDelta) -> List:
    return [[rel, dict(r), sign] for rel, r, sign in delta.atoms()]


def _decode_delta(atoms: List) -> SetDelta:
    delta = SetDelta()
    for rel, row_dict, sign in atoms:
        if sign > 0:
            delta.insert(rel, Row(row_dict))
        else:
            delta.delete(rel, Row(row_dict))
    return delta


@dataclass(frozen=True)
class WalSourceEntry:
    """One source's component of a committed transaction's WAL record."""

    seq: int
    cursor: Optional[int]
    delta: SetDelta


@dataclass(frozen=True)
class WalRecord:
    """One committed mediator update transaction, as logged."""

    txn: int
    sources: Mapping[str, WalSourceEntry]

    def encode(self) -> bytes:
        payload = {
            "txn": self.txn,
            "sources": {
                name: {
                    "seq": entry.seq,
                    "cursor": entry.cursor,
                    "delta": _encode_delta(entry.delta),
                }
                for name, entry in self.sources.items()
            },
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        return f"{_MAGIC} {crc:08x} {body}\n".encode("utf-8")

    @staticmethod
    def decode(line: bytes) -> Optional["WalRecord"]:
        """One line back into a record, or ``None`` on any corruption."""
        try:
            text = line.decode("utf-8")
            magic, crc_hex, body = text.split(" ", 2)
            if magic != _MAGIC:
                return None
            if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(crc_hex, 16):
                return None
            payload = json.loads(body)
            sources = {
                name: WalSourceEntry(
                    seq=int(component["seq"]),
                    cursor=component["cursor"],
                    delta=_decode_delta(component["delta"]),
                )
                for name, component in payload["sources"].items()
            }
            return WalRecord(txn=int(payload["txn"]), sources=sources)
        except (ValueError, KeyError, TypeError):
            return None


class WriteAheadLog:
    """An append-only, checksummed log of committed update transactions."""

    def __init__(self, path: str, sync: bool = False):
        self.path = path
        self.sync = sync
        self._records = self.read_records(path)
        self._fh = open(path, "ab")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @staticmethod
    def read_records(path: str) -> List[WalRecord]:
        """Every valid record, in order, stopping at the first invalid one.

        A missing file is an empty log.  The stop-at-first-invalid rule is
        what makes a torn final append harmless; it also means a corrupted
        middle record truncates the usable log there — everything after an
        unverifiable record is unverifiable too.
        """
        if not os.path.exists(path):
            return []
        with open(path, "rb") as fh:
            data = fh.read()
        records: List[WalRecord] = []
        last_txn = 0
        for line in data.split(b"\n"):
            if not line:
                continue
            record = WalRecord.decode(line)
            if record is None or record.txn <= last_txn:
                break
            records.append(record)
            last_txn = record.txn
        return records

    @property
    def records(self) -> List[WalRecord]:
        """The valid records currently in the log (copies of the list)."""
        return list(self._records)

    @property
    def last_txn(self) -> int:
        """The newest logged transaction index (0 for an empty log)."""
        return self._records[-1].txn if self._records else 0

    def source_seqs(self) -> Dict[str, int]:
        """Per-source highest WAL sequence number in the log."""
        seqs: Dict[str, int] = {}
        for record in self._records:
            for name, entry in record.sources.items():
                seqs[name] = max(seqs.get(name, 0), entry.seq)
        return seqs

    def size(self) -> int:
        """Current file size in bytes."""
        self._fh.flush()
        return os.path.getsize(self.path)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: WalRecord, torn: bool = False) -> int:
        """Append one record; returns bytes written.

        ``torn=True`` simulates a crash landing inside the write: only a
        prefix of the encoded line (cutting into the JSON body, no
        newline) reaches the file.  The record is **not** added to the
        in-memory list — it never durably existed.
        """
        if record.txn <= self.last_txn:
            raise MediatorError(
                f"WAL txn {record.txn} not past last logged txn {self.last_txn}"
            )
        encoded = record.encode()
        if torn:
            prefix = encoded[: max(len(encoded) // 2, len(_MAGIC) + 10)]
            self._fh.write(prefix)
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            return len(prefix)
        self._fh.write(encoded)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._records.append(record)
        return len(encoded)

    def compact(self, through_txn: int) -> int:
        """Drop records with ``txn <= through_txn``; returns how many.

        Called after a checkpoint *publishes* — never before, so a crash
        mid-checkpoint still finds every record the previous checkpoint
        did not absorb.  Rewrite is atomic (temp file + ``os.replace``).
        """
        kept = [r for r in self._records if r.txn > through_txn]
        dropped = len(self._records) - len(kept)
        if dropped == 0:
            # Still rewrite when the file has a torn tail to shed? No:
            # appends after a torn tail would be unreadable.  A torn tail
            # only exists after a crash, and recovery always compacts or
            # truncates before reuse (see WriteAheadLog.truncate_tail).
            return 0
        self._fh.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            for record in kept:
                fh.write(record.encode())
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._records = kept
        self._fh = open(self.path, "ab")
        return dropped

    def truncate_tail(self) -> bool:
        """Rewrite the file to exactly the valid records (drop a torn tail).

        Returns True when anything was shed.  Reusing a log whose file
        ends mid-record would glue the next append onto the torn bytes and
        make *it* unreadable too, so any writer opening an existing log
        should call this first (the manager does).
        """
        self._fh.flush()
        expected = sum(len(r.encode()) for r in self._records)
        actual = os.path.getsize(self.path)
        if actual == expected:
            return False
        self._fh.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            for record in self._records:
                fh.write(record.encode())
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        return True

    def close(self) -> None:
        self._fh.close()

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.path!r} records={len(self._records)}>"
