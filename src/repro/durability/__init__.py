"""Crash-consistent durability for the Squirrel mediator.

The paper's mediator keeps its materialized data in memory; Section 2's
economic argument for materialization (don't re-read the sources) applies
with equal force across restarts.  This package makes the committed state
crash-recoverable with three cooperating pieces:

* :mod:`~repro.durability.wal` — a checksummed, torn-tail-tolerant
  **write-ahead delta log**: one record per committed update transaction,
  carrying per-source net deltas and post-transaction source-log cursors;
* :mod:`~repro.durability.checkpoint` — **non-quiescent incremental
  checkpoints**: only the nodes dirtied since the last checkpoint are
  imaged, at transaction boundaries, without draining the update queue;
* :mod:`~repro.durability.recovery` — the **recovery protocol**: newest
  checkpoint chain, plus WAL tail (idempotent by ``(source, seq)``), plus
  source-log catch-up past the cursors, in one propagation pass — with
  *selective re-initialization* of any source whose log was compacted past
  what replay needs.

:mod:`~repro.durability.harness` is the kill/restart simulator that drives
all of it under :class:`~repro.faults.CrashSchedule` injection.

The invariant everything hangs on: at every instant,

    checkpoint ⊕ WAL-tail ⊕ source-logs-past-cursor = committed state.
"""

from repro.durability.checkpoint import CheckpointPolicy, CheckpointStore
from repro.durability.harness import (
    Commit,
    CompactLog,
    CrashRunOutcome,
    run_crash_workload,
)
from repro.durability.manager import DurabilityManager, DurabilityStats
from repro.durability.recovery import RecoveryManager, RecoveryResult
from repro.durability.wal import WalRecord, WalSourceEntry, WriteAheadLog

__all__ = [
    "CheckpointPolicy",
    "CheckpointStore",
    "DurabilityManager",
    "DurabilityStats",
    "RecoveryManager",
    "RecoveryResult",
    "WalRecord",
    "WalSourceEntry",
    "WriteAheadLog",
    "Commit",
    "CompactLog",
    "CrashRunOutcome",
    "run_crash_workload",
]
