"""The durability manager: WAL appends and checkpoint scheduling.

Attached to a live mediator, the manager hooks the IUP's commit point
(:attr:`IncrementalUpdateProcessor.durability`): after each non-empty
update transaction's kernel has applied every delta, the manager appends
one :class:`~repro.durability.wal.WalRecord` describing the transaction's
per-source net deltas and post-transaction cursors, then takes an
incremental checkpoint when the :class:`CheckpointPolicy` says one is due.

The ordering argument (see ``docs/durability.md``):

* the record is written at *commit* time, not before the kernel — a
  deferred transaction (source down mid-poll, entries requeued) must not
  log anything, or replay would apply it twice under two records;
* "write-ahead" is relative to the **checkpoint**: a transaction's record
  is always durable before any checkpoint image absorbs its effects, and
  the WAL is compacted only after a checkpoint publishes — so at every
  instant, checkpoint ⊕ WAL-tail ⊕ source-logs-past-cursor reconstructs
  the committed state;
* the mediator's own in-memory state past the last WAL append is *never*
  durable — but it is always re-derivable from the sources' logs, which
  commit before the mediator ever hears about a transaction.

Crash injection: a :class:`~repro.faults.CrashSchedule` makes the manager
raise :class:`~repro.errors.SimulatedCrash` at precisely chosen instants
(after the append, mid-append with a torn tail, or mid-checkpoint before
the publish rename) — the kill half of the kill/restart harness.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from typing import Callable

from repro.core.persistence import encode_repo_rows, source_cursor
from repro.core.update_queue import QueuedUpdate
from repro.deltas import SetDelta, net_accumulate
from repro.durability.checkpoint import CheckpointPolicy, CheckpointStore
from repro.durability.wal import WalRecord, WalSourceEntry, WriteAheadLog
from repro.errors import MediatorError, SimulatedCrash
from repro.obs.metrics import reset_dataclass_counters

__all__ = ["DurabilityStats", "DurabilityManager"]

WAL_FILENAME = "wal.log"


@dataclass
class DurabilityStats:
    """Counters exposed through the mediator's metrics registry."""

    wal_records: int = 0
    wal_bytes: int = 0
    wal_compacted_records: int = 0
    checkpoints: int = 0
    checkpoint_nodes: int = 0
    checkpoint_rows: int = 0

    def reset(self) -> None:
        reset_dataclass_counters(self)


class DurabilityManager:
    """Makes one mediator's committed state crash-recoverable."""

    def __init__(
        self,
        mediator,
        directory: str,
        policy: Optional[CheckpointPolicy] = None,
        crash_schedule=None,
        sync: bool = False,
    ):
        if not mediator.initialized:
            raise MediatorError("attach durability after initialize() or recovery")
        self.mediator = mediator
        self.directory = directory
        self.policy = policy or CheckpointPolicy()
        self.crash_schedule = crash_schedule
        os.makedirs(directory, exist_ok=True)
        self.wal = WriteAheadLog(os.path.join(directory, WAL_FILENAME), sync=sync)
        # A previous incarnation may have died mid-append; appending after
        # a torn tail would corrupt the new record too.
        self.wal.truncate_tail()
        self.checkpoints = CheckpointStore(directory)
        self.stats = DurabilityStats()
        self._txn = self.wal.last_txn
        self._source_seqs: Dict[str, int] = self.wal.source_seqs()
        self._ckpt_id = self.checkpoints.latest_id()
        ckpt_wal_txn = 0
        if self._ckpt_id is not None:
            latest = self.checkpoints.load_all()[self._ckpt_id]
            for name, seq in latest.get("source_seqs", {}).items():
                self._source_seqs[name] = max(self._source_seqs.get(name, 0), seq)
            ckpt_wal_txn = latest.get("wal_txn", 0)
            self._txn = max(self._txn, ckpt_wal_txn)
        self._dirty: Set[str] = set()
        if self.wal.last_txn > ckpt_wal_txn:
            # Unabsorbed WAL records may already be reflected in the mediator
            # (a recovery replayed them), but their dirty sets are unknown to
            # this incarnation — image every storing node at the next
            # checkpoint so compaction cannot outrun the images.
            self._dirty = set(mediator.annotated.nodes_with_storage())
        self._txns_since = 0
        self._bytes_since = 0
        mediator.metrics.register_stats("durability", self.stats)
        self._checkpoint_ms = mediator.metrics.histogram(
            "durability.checkpoint_ms", "wall-clock milliseconds per checkpoint"
        )
        mediator.iup.durability = self
        #: Called with each committed :class:`WalRecord` *after* it is
        #: durable (and after any injected crash point) — the WAL-shipping
        #: tap.  A record a crash prevented from reaching an observer is
        #: still acknowledged: it is on disk, and failover recovery replays
        #: it from there.
        self.observers: List[Callable[[WalRecord], None]] = []
        #: The newest committed transaction's ``(node, delta)`` repository
        #: writes, in apply order — valid exactly while its record is the
        #: latest; observers snapshot it synchronously.
        self.last_node_applies: tuple = ()

    @classmethod
    def attach(
        cls,
        mediator,
        directory: str,
        policy: Optional[CheckpointPolicy] = None,
        crash_schedule=None,
        sync: bool = False,
    ) -> "DurabilityManager":
        """Attach durability to a mediator, bootstrapping if needed.

        A fresh directory gets a *base* checkpoint of the current state
        immediately: source-log replay alone cannot reconstruct initial
        populations (a source's pre-existing data predates its log), so
        recovery always needs a full image to start from.

        Re-attaching after a recovery re-bases the same way whenever the
        mediator holds state the directory cannot reconstruct — a recovery
        catch-up transaction is applied straight from source logs and never
        WAL-logged, so without a fresh full image a *second* crash would
        recover from the old checkpoint while later records' cursors skip
        right past the catch-up range.
        """
        manager = cls(mediator, directory, policy, crash_schedule, sync)
        if manager._ckpt_id is None or manager._state_ahead_of_log():
            manager.checkpoint(full=True)
        return manager

    def _state_ahead_of_log(self) -> bool:
        """True when some source's reflected cursor is ahead of the highest
        cursor the checkpoint chain and WAL together can reconstruct."""
        coverage: Dict[str, int] = {}
        latest = self.checkpoints.load_all().get(self._ckpt_id, {})
        for name, cursor in (latest.get("cursors") or {}).items():
            if cursor is not None:
                coverage[name] = cursor
        for record in self.wal.records:
            for name, entry in record.sources.items():
                if entry.cursor is not None:
                    coverage[name] = max(coverage.get(name, 0), entry.cursor)
        return any(
            source_cursor(self.mediator, name) > coverage.get(name, -1)
            for name in self.mediator.sources
        )

    # ------------------------------------------------------------------
    # The IUP commit hook
    # ------------------------------------------------------------------
    def on_transaction_commit(
        self,
        entries: Sequence[QueuedUpdate],
        processed: Sequence[str],
        node_applies: Sequence = (),
    ) -> None:
        """Log one committed update transaction; checkpoint if due.

        ``entries`` are the flushed-and-reflected queue entries;
        ``processed`` the non-leaf nodes whose repositories changed (the
        dirty set for the next incremental checkpoint); ``node_applies``
        the transaction's ``(node, delta)`` repository writes in apply
        order — not logged (the WAL replays through propagation), but
        exposed as :attr:`last_node_applies` so WAL-shipping observers can
        replicate stored state physically.
        """
        txn = self._txn + 1
        per_source: Dict[str, SetDelta] = {}
        cursors: Dict[str, Optional[int]] = {}
        order: List[str] = []
        for entry in entries:
            if entry.source not in per_source:
                per_source[entry.source] = entry.delta
                order.append(entry.source)
                cursors[entry.source] = entry.cursor
            else:
                per_source[entry.source] = net_accumulate(
                    per_source[entry.source], entry.delta
                )
                if entry.cursor is not None:
                    previous = cursors[entry.source]
                    cursors[entry.source] = (
                        entry.cursor if previous is None else max(previous, entry.cursor)
                    )
        sources: Dict[str, WalSourceEntry] = {}
        for name in order:
            sources[name] = WalSourceEntry(
                seq=self._source_seqs.get(name, 0) + 1,
                cursor=cursors[name],
                delta=per_source[name],
            )
        record = WalRecord(txn=txn, sources=sources)

        point = self._take_crash("torn-wal", txn)
        if point is not None:
            self.wal.append(record, torn=True)
            if self.mediator.tracer.enabled:
                self.mediator.tracer.event("wal_torn", txn=txn)
            self._crash("torn-wal", txn)
        nbytes = self.wal.append(record)
        self._txn = txn
        for name, entry in sources.items():
            self._source_seqs[name] = entry.seq
        self.stats.wal_records += 1
        self.stats.wal_bytes += nbytes
        self._txns_since += 1
        self._bytes_since += nbytes
        tracer = self.mediator.tracer
        if tracer.enabled:
            tracer.event(
                "wal_append", txn=txn, bytes=nbytes, sources=sorted(sources)
            )
        point = self._take_crash("post-wal-append", txn)
        if point is not None:
            self._crash("post-wal-append", txn)
        self.last_node_applies = tuple(node_applies)
        for observer in self.observers:
            observer(record)

        storing = set(self.mediator.annotated.nodes_with_storage())
        self._dirty.update(set(processed) & storing)
        if self.policy.due(self._txns_since, self._bytes_since):
            self.checkpoint()

    def _take_crash(self, phase: str, txn: int):
        if self.crash_schedule is None:
            return None
        return self.crash_schedule.take(phase, txn)

    def _crash(self, phase: str, txn: int) -> None:
        if self.mediator.tracer.enabled:
            self.mediator.tracer.event("crash_injected", phase=phase, txn=txn)
        raise SimulatedCrash(phase, txn)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, full: bool = False) -> int:
        """Take a checkpoint now (at a transaction boundary); returns its id.

        Incremental by default — only nodes dirtied since the last
        checkpoint are imaged; ``full=True`` (and always for the first
        checkpoint of a directory) images every storing node.  The queue
        does **not** need to be empty: unreflected announcements are
        recoverable from source logs past the recorded cursors.
        """
        mediator = self.mediator
        started = time.perf_counter()
        new_id = 0 if self._ckpt_id is None else self._ckpt_id + 1
        parent = self._ckpt_id
        if parent is None:
            full = True
        node_names = (
            sorted(mediator.annotated.nodes_with_storage())
            if full
            else sorted(self._dirty)
        )
        with mediator.tracer.span("checkpoint") as span:
            nodes: Dict[str, Dict] = {}
            rows_written = 0
            for name in node_names:
                columns, rows = encode_repo_rows(mediator.store.repo(name))
                nodes[name] = {"columns": columns, "rows": rows}
                rows_written += len(rows)
            payload = {
                "id": new_id,
                "parent": parent,
                "wal_txn": self._txn,
                "source_seqs": dict(self._source_seqs),
                "cursors": {
                    name: source_cursor(mediator, name) for name in mediator.sources
                },
                "nodes": nodes,
            }
            point = self._take_crash("mid-checkpoint", self._txn)
            if point is not None:
                self.checkpoints.write(payload, abort_before_publish=True)
                self._crash("mid-checkpoint", self._txn)
            self.checkpoints.write(payload)
            self._ckpt_id = new_id
            self._dirty.clear()
            self._txns_since = 0
            self._bytes_since = 0
            # Only now is it safe to shed absorbed records.
            self.stats.wal_compacted_records += self.wal.compact(self._txn)
            self.stats.checkpoints += 1
            self.stats.checkpoint_nodes += len(nodes)
            self.stats.checkpoint_rows += rows_written
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._checkpoint_ms.observe(elapsed_ms)
            span.set(id=new_id, full=full, nodes=sorted(nodes), wal_txn=self._txn)
            if mediator.tracer.enabled:
                mediator.tracer.event(
                    "checkpoint_complete",
                    id=new_id,
                    full=full,
                    nodes=len(nodes),
                    rows=rows_written,
                )
        return new_id

    def close(self) -> None:
        """Detach from the mediator and release the WAL file handle."""
        if self.mediator.iup.durability is self:
            self.mediator.iup.durability = None
        self.wal.close()
