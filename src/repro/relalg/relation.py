"""Set- and bag-semantics relation containers.

The paper stores relations of *set nodes* (nodes whose definition involves a
difference) as sets, and all other mediator relations as *bags* so that the
incremental maintenance rules of Section 5.2 are correct under projection and
union (Section 5, "the relations associated with bag nodes are stored as
bags").

:class:`BagRelation` maps each row to a positive multiplicity;
:class:`SetRelation` is a plain set of rows.  Both expose the same small
container protocol used by the evaluator, the delta machinery, and the
mediator local store: ``items()`` (row, count pairs), ``count(row)``,
``insert``/``delete``, ``support()`` and ``copy()``.

Both containers also support **persistent hash indexes** on attribute-name
key tuples (:meth:`Relation.ensure_index` / :meth:`Relation.index_lookup`).
An index is built once and then maintained *incrementally* by every
``insert``/``delete`` — never rebuilt — which is what lets update
propagation probe a sibling relation per delta row instead of re-hashing
the whole relation inside every rule firing (the compiled propagation
engine; see :mod:`repro.core.rules`).  ``copy()`` deliberately drops
indexes: a copy is a fresh relation and re-declares what it needs.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DeltaError, SchemaError
from repro.relalg.schema import RelationSchema
from repro.relalg.tuples import Row

__all__ = [
    "Relation",
    "SetRelation",
    "BagRelation",
    "PartitionedRelation",
    "stable_shard_hash",
]


def stable_shard_hash(values: Tuple[Any, ...]) -> int:
    """A deterministic hash of a key-value tuple for shard routing.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
    would make shard assignment — and therefore every per-shard counter —
    unreproducible across runs.  Routing instead hashes a canonical text
    encoding (type name + repr, the same total order ``_sort_key`` uses)
    with crc32, so a row lands on the same shard in every process.
    """
    encoded = "\x1f".join(f"{type(v).__name__}:{v!r}" for v in values)
    return zlib.crc32(encoded.encode("utf-8"))


class Relation:
    """Abstract base for relation containers.

    Subclasses must provide ``items``, ``count``, ``insert``, ``delete``,
    ``copy``, and the ``is_bag`` flag.  Everything else (cardinality,
    support, pretty printing, equality) is defined here in terms of those.
    """

    is_bag: bool = False

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        # key tuple -> {key values -> {row: multiplicity}}
        self._indexes: Dict[Tuple[str, ...], Dict[Tuple[Any, ...], Dict[Row, int]]] = {}

    # -- abstract container protocol --------------------------------------
    def items(self) -> Iterator[Tuple[Row, int]]:
        """Yield ``(row, multiplicity)`` pairs, multiplicity always >= 1."""
        raise NotImplementedError

    def count(self, row: Row) -> int:
        """Multiplicity of ``row`` (0 if absent)."""
        raise NotImplementedError

    def insert(self, row: Row, multiplicity: int = 1) -> None:
        """Add ``row`` with the given multiplicity."""
        raise NotImplementedError

    def delete(self, row: Row, multiplicity: int = 1) -> None:
        """Remove ``row`` with the given multiplicity."""
        raise NotImplementedError

    def copy(self) -> "Relation":
        """An independent, mutable copy with the same schema and contents."""
        raise NotImplementedError

    # -- shared behaviour --------------------------------------------------
    def _check_row(self, row: Row) -> None:
        if set(row.keys()) != set(self.schema.attribute_names):
            raise SchemaError(
                f"row attributes {sorted(row.keys())} do not match schema "
                f"{self.schema.name!r} attributes {sorted(self.schema.attribute_names)}"
            )

    def support(self) -> frozenset:
        """The set of distinct rows."""
        return frozenset(r for r, _ in self.items())

    def rows(self) -> Iterator[Row]:
        """Yield each row once per unit of multiplicity."""
        for r, n in self.items():
            for _ in range(n):
                yield r

    def cardinality(self) -> int:
        """Total number of rows counting multiplicity."""
        return sum(n for _, n in self.items())

    def distinct_cardinality(self) -> int:
        """Number of distinct rows."""
        return sum(1 for _ in self.items())

    def is_empty(self) -> bool:
        """True when the relation holds no rows."""
        return self.distinct_cardinality() == 0

    def contains(self, row: Row) -> bool:
        """True when ``row`` occurs at least once."""
        return self.count(row) > 0

    def distinct_size(self) -> int:
        """Number of distinct rows, O(1) where the container allows it."""
        return self.distinct_cardinality()

    def estimated_bytes(self) -> int:
        """A coarse storage-footprint estimate (value cells + count slots).

        Counts each distinct row's cell values once plus a machine word per
        multiplicity slot, so the row and columnar layouts report
        comparable figures for equal contents.
        """
        import sys

        cells = sum(
            sys.getsizeof(v) for r, _ in self.items() for v in r.values()
        )
        return cells + 8 * self.distinct_size()

    # -- persistent hash indexes ------------------------------------------
    def ensure_index(self, keys: Sequence[str], counters: Optional[Any] = None) -> None:
        """Build (once) a hash index on the given attribute-name key tuple.

        The key tuple is taken verbatim — callers canonicalize (the
        evaluator uses sorted, de-duplicated tuples).  Building scans the
        relation once; from then on every ``insert``/``delete`` maintains
        the index incrementally, so a live index is never rebuilt.
        ``counters`` (an :class:`~repro.relalg.evaluator.EvalCounters`)
        records the build as ``index_rebuilds`` + ``rows_hashed``.
        """
        keys = tuple(keys)
        if keys in self._indexes:
            return
        self.schema.check_attributes(keys)
        index: Dict[Tuple[Any, ...], Dict[Row, int]] = {}
        hashed = 0
        for r, n in self.items():
            index.setdefault(r.values_for(keys), {})[r] = n
            hashed += 1
        self._indexes[keys] = index
        if counters is not None:
            counters.index_rebuilds += 1
            counters.rows_hashed += hashed

    def has_index(self, keys: Sequence[str]) -> bool:
        """True when an index on exactly this key tuple exists."""
        return tuple(keys) in self._indexes

    def index_keysets(self) -> Tuple[Tuple[str, ...], ...]:
        """The key tuples currently indexed (introspection/tests)."""
        return tuple(self._indexes)

    def index_lookup(
        self, keys: Sequence[str], values: Tuple[Any, ...]
    ) -> List[Tuple[Row, int]]:
        """Rows whose key attributes equal ``values``, with multiplicities.

        Raises :class:`KeyError` when no index on ``keys`` exists — probing
        is only legal after :meth:`ensure_index` (the evaluator checks
        :meth:`has_index` first).
        """
        bucket = self._indexes[tuple(keys)].get(values)
        if not bucket:
            return []
        return list(bucket.items())

    def drop_indexes(self) -> None:
        """Discard all indexes (they rebuild on the next ensure_index)."""
        self._indexes = {}

    def _index_add(self, row: Row, multiplicity: int) -> None:
        """Reflect an insert of ``row`` in every live index."""
        for keys, index in self._indexes.items():
            bucket = index.setdefault(row.values_for(keys), {})
            bucket[row] = bucket.get(row, 0) + multiplicity

    def _index_remove(self, row: Row, multiplicity: int) -> None:
        """Reflect a delete of ``row`` in every live index."""
        for keys, index in self._indexes.items():
            values = row.values_for(keys)
            bucket = index.get(values)
            if bucket is None:
                continue
            remaining = bucket.get(row, 0) - multiplicity
            if remaining > 0:
                bucket[row] = remaining
            else:
                bucket.pop(row, None)
                if not bucket:
                    del index[values]

    def __len__(self) -> int:
        return self.cardinality()

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __contains__(self, row: Row) -> bool:
        return self.contains(row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.attribute_names != other.schema.attribute_names:
            return False
        # Compare sizes first, then probe per row and short-circuit on the
        # first mismatch: equality runs inside every parity/convergence
        # check, so it must not materialize dict(self.items()) each time.
        if self.distinct_size() != other.distinct_size():
            return False
        return all(other.count(r) == n for r, n in self.items())

    def __hash__(self) -> int:  # relations are mutable; identity hash only
        return id(self)

    def __repr__(self) -> str:
        kind = "Bag" if self.is_bag else "Set"
        return f"<{kind}Relation {self.schema.name} |{self.cardinality()}|>"

    def to_sorted_list(self) -> List[Tuple[Tuple[Any, ...], int]]:
        """Deterministic ``(value-tuple, count)`` listing, for tests/reporting."""
        names = self.schema.attribute_names
        listing = [(r.values_for(names), n) for r, n in self.items()]
        return sorted(listing, key=lambda pair: tuple(map(_sort_key, pair[0])))


def _sort_key(value: Any) -> Tuple[str, str]:
    """Total order over heterogeneous values (type name, then repr)."""
    return (type(value).__name__, repr(value))


class SetRelation(Relation):
    """A relation under set semantics: each row occurs at most once.

    Used for the paper's *set nodes* (difference nodes) and for source
    relations, which are sets in the paper's examples.
    """

    is_bag = False

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()):
        super().__init__(schema)
        self._rows: set = set()
        for r in rows:
            self.insert(r)

    def items(self) -> Iterator[Tuple[Row, int]]:
        for r in self._rows:
            yield r, 1

    def count(self, row: Row) -> int:
        return 1 if row in self._rows else 0

    def insert(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        if multiplicity != 1:
            raise DeltaError(
                f"set relation {self.schema.name!r} cannot insert multiplicity {multiplicity}"
            )
        if row in self._rows:
            raise DeltaError(f"duplicate insert into set relation {self.schema.name!r}: {row!r}")
        self._rows.add(row)
        self._index_add(row, 1)

    def delete(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        if multiplicity != 1:
            raise DeltaError(
                f"set relation {self.schema.name!r} cannot delete multiplicity {multiplicity}"
            )
        if row not in self._rows:
            raise DeltaError(f"delete of absent row from set relation {self.schema.name!r}: {row!r}")
        self._rows.discard(row)
        self._index_remove(row, 1)

    def distinct_size(self) -> int:
        return len(self._rows)

    def copy(self) -> "SetRelation":
        return SetRelation(self.schema, self._rows)

    @classmethod
    def from_values(
        cls, schema: RelationSchema, value_rows: Iterable[Sequence[Any]]
    ) -> "SetRelation":
        """Build from bare value tuples ordered like the schema attributes."""
        names = schema.attribute_names
        return cls(schema, (Row(dict(zip(names, vals))) for vals in value_rows))


class BagRelation(Relation):
    """A relation under bag semantics: rows carry positive multiplicities.

    The incremental rules for select/project/join/union are correct on bags
    (counting algorithm); mediator *bag nodes* are stored this way.
    """

    is_bag = True

    def __init__(self, schema: RelationSchema, counts: Optional[Mapping[Row, int]] = None):
        super().__init__(schema)
        self._counts: Counter = Counter()
        if counts:
            for r, n in counts.items():
                self.insert(r, n)

    def items(self) -> Iterator[Tuple[Row, int]]:
        for r, n in self._counts.items():
            if n > 0:
                yield r, n

    def count(self, row: Row) -> int:
        return self._counts.get(row, 0)

    def insert(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        if multiplicity <= 0:
            raise DeltaError(f"insert multiplicity must be positive, got {multiplicity}")
        self._counts[row] += multiplicity
        self._index_add(row, multiplicity)

    def delete(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        if multiplicity <= 0:
            raise DeltaError(f"delete multiplicity must be positive, got {multiplicity}")
        have = self._counts.get(row, 0)
        if have < multiplicity:
            raise DeltaError(
                f"bag relation {self.schema.name!r} holds {have} of {row!r}, cannot delete {multiplicity}"
            )
        if have == multiplicity:
            del self._counts[row]
        else:
            self._counts[row] = have - multiplicity
        self._index_remove(row, multiplicity)

    def distinct_size(self) -> int:
        return len(self._counts)

    def copy(self) -> "BagRelation":
        clone = BagRelation(self.schema)
        clone._counts = Counter(self._counts)
        return clone

    def adjust(self, row: Row, signed: int) -> None:
        """Apply a signed multiplicity change, insert(+) / delete(-)."""
        if signed > 0:
            self.insert(row, signed)
        elif signed < 0:
            self.delete(row, -signed)

    def distinct(self, schema: Optional[RelationSchema] = None) -> SetRelation:
        """Duplicate elimination: the set of distinct rows (bag -> set)."""
        return SetRelation(schema or self.schema, (r for r, _ in self.items()))

    @classmethod
    def from_rows(cls, schema: RelationSchema, rows: Iterable[Row]) -> "BagRelation":
        """Build from an iterable of rows (duplicates accumulate)."""
        rel = cls(schema)
        for r in rows:
            rel.insert(r)
        return rel

    @classmethod
    def from_values(
        cls, schema: RelationSchema, value_rows: Iterable[Sequence[Any]]
    ) -> "BagRelation":
        """Build from bare value tuples ordered like the schema attributes."""
        names = schema.attribute_names
        return cls.from_rows(schema, (Row(dict(zip(names, vals))) for vals in value_rows))


class PartitionedRelation(Relation):
    """A relation hash-partitioned into shard sub-relations by a key tuple.

    Every row lives on exactly one shard, chosen by
    :func:`stable_shard_hash` over its shard-key attribute values.  The
    container implements the full :class:`Relation` protocol transparently
    — callers (the evaluator, the delta machinery, persistence encoding)
    cannot tell a partitioned repository from a plain one — while exposing
    the per-shard structure the parallel IUP kernel needs:

    * persistent hash indexes are **per shard** (each shard maintains its
      own, incrementally, exactly as a plain relation would);
    * an :meth:`index_lookup` whose probe keys cover the shard key routes
      to the single owning shard (the co-partitioned/"shard-local" case);
      any other probe fans out across all shards (a cross-shard exchange
      read — still correct, just not partition-pruned).

    Shard membership is a pure layout property: iteration order differs
    from a plain relation, but contents, counts, and every probe answer
    are identical, which is what keeps sharded propagation byte-equal to
    serial on sorted snapshots.
    """

    def __init__(
        self,
        schema: RelationSchema,
        shard_key: Sequence[str],
        num_shards: int,
        is_bag: bool = True,
        layout: str = "row",
    ):
        if num_shards < 1:
            raise DeltaError(f"num_shards must be >= 1, got {num_shards}")
        super().__init__(schema)
        schema.check_attributes(tuple(shard_key))
        self.shard_key: Tuple[str, ...] = tuple(shard_key)
        self.num_shards = num_shards
        self.is_bag = is_bag
        self.layout = layout
        self._shards: List[Relation] = [self._make_shard() for _ in range(num_shards)]

    def _make_shard(self) -> Relation:
        if self.layout == "columnar":
            from repro.relalg.columnar import ColumnarRelation

            return ColumnarRelation(self.schema, is_bag=self.is_bag)
        return BagRelation(self.schema) if self.is_bag else SetRelation(self.schema)

    @classmethod
    def partition(
        cls,
        relation: Relation,
        shard_key: Sequence[str],
        num_shards: int,
        layout: str = "row",
    ) -> "PartitionedRelation":
        """Build a partitioned copy of an existing relation (indexes dropped)."""
        out = cls(relation.schema, shard_key, num_shards, is_bag=relation.is_bag, layout=layout)
        for r, n in relation.items():
            out.insert(r, n)
        return out

    # -- shard structure ---------------------------------------------------
    def shard_of(self, row: Row) -> int:
        """The shard index owning ``row``."""
        return stable_shard_hash(row.values_for(self.shard_key)) % self.num_shards

    def shard(self, index: int) -> Relation:
        """The live sub-relation of one shard."""
        return self._shards[index]

    def shards(self) -> Tuple[Relation, ...]:
        """All shard sub-relations, in shard order."""
        return tuple(self._shards)

    def unpartitioned(self) -> Relation:
        """A plain (single-container) copy with the same contents and layout."""
        if self.layout == "columnar":
            from repro.relalg.columnar import ColumnarRelation

            flat: Relation = ColumnarRelation(self.schema, is_bag=self.is_bag)
        else:
            flat = BagRelation(self.schema) if self.is_bag else SetRelation(self.schema)
        for r, n in self.items():
            flat.insert(r, n)
        return flat

    # -- container protocol ------------------------------------------------
    def items(self) -> Iterator[Tuple[Row, int]]:
        for shard in self._shards:
            for pair in shard.items():
                yield pair

    def count(self, row: Row) -> int:
        return self._shards[self.shard_of(row)].count(row)

    def insert(self, row: Row, multiplicity: int = 1) -> None:
        self._shards[self.shard_of(row)].insert(row, multiplicity)

    def delete(self, row: Row, multiplicity: int = 1) -> None:
        self._shards[self.shard_of(row)].delete(row, multiplicity)

    def adjust(self, row: Row, signed: int) -> None:
        """Signed multiplicity change (bag shards only), routed to the owner."""
        if not self.is_bag:
            raise DeltaError(f"set relation {self.schema.name!r} has no adjust()")
        if signed > 0:
            self.insert(row, signed)
        elif signed < 0:
            self.delete(row, -signed)

    def distinct_size(self) -> int:
        return sum(shard.distinct_size() for shard in self._shards)

    def copy(self) -> "PartitionedRelation":
        clone = PartitionedRelation(
            self.schema, self.shard_key, self.num_shards, self.is_bag, self.layout
        )
        clone._shards = [shard.copy() for shard in self._shards]
        return clone

    # -- per-shard persistent indexes --------------------------------------
    def ensure_index(self, keys: Sequence[str], counters: Optional[Any] = None) -> None:
        for shard in self._shards:
            shard.ensure_index(keys, counters)

    def has_index(self, keys: Sequence[str]) -> bool:
        return all(shard.has_index(keys) for shard in self._shards)

    def index_keysets(self) -> Tuple[Tuple[str, ...], ...]:
        return self._shards[0].index_keysets()

    def index_lookup(
        self, keys: Sequence[str], values: Tuple[Any, ...]
    ) -> List[Tuple[Row, int]]:
        keys = tuple(keys)
        if set(self.shard_key) <= set(keys):
            # Co-partitioned probe: the key values determine the owner.
            key_values = tuple(values[keys.index(a)] for a in self.shard_key)
            owner = stable_shard_hash(key_values) % self.num_shards
            return self._shards[owner].index_lookup(keys, values)
        # Exchange read: the probe cannot be pruned to one partition.
        out: List[Tuple[Row, int]] = []
        for shard in self._shards:
            out.extend(shard.index_lookup(keys, values))
        return out

    def drop_indexes(self) -> None:
        for shard in self._shards:
            shard.drop_indexes()

    def __repr__(self) -> str:
        kind = "Bag" if self.is_bag else "Set"
        return (
            f"<Partitioned{kind}Relation {self.schema.name} "
            f"key={self.shard_key} shards={self.num_shards} |{self.cardinality()}|>"
        )
