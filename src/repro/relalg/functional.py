"""Functional dependencies and key reasoning.

Example 2.3 of the paper derives ``T : r1 -> r3`` from (1) ``r1`` being the
key of ``R'`` and (2) ``π_{r1,r3} T ⊆ π_{r1,r3} R'``, and uses the derived FD
to justify the *key-based construction* of a temporary relation from ``T``
and ``R'`` instead of from ``R'`` and ``S'``.  This module provides the small
amount of dependency theory needed to mechanize that inference:

* :class:`FunctionalDependency` and :class:`FDSet` with attribute closure;
* key/superkey tests;
* propagation of FDs through the algebra operators that VDP node definitions
  use (select, project, join, union, difference), which is how the mediator
  learns that an export relation inherits key-based access paths from its
  children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.schema import RelationSchema

__all__ = ["FunctionalDependency", "FDSet", "fds_from_schema", "infer_fds"]


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs``: the lhs attribute values determine the rhs values."""

    lhs: FrozenSet[str]
    rhs: FrozenSet[str]

    @classmethod
    def of(cls, lhs: Iterable[str], rhs: Iterable[str]) -> "FunctionalDependency":
        """Constructor accepting any iterables of attribute names."""
        return cls(frozenset(lhs), frozenset(rhs))

    def restrict(self, attrs: FrozenSet[str]) -> Optional["FunctionalDependency"]:
        """The FD projected onto ``attrs``; None when the lhs does not survive."""
        if not self.lhs <= attrs:
            return None
        rhs = self.rhs & attrs
        if not rhs:
            return None
        return FunctionalDependency(self.lhs, rhs)

    def __str__(self) -> str:
        return f"{{{', '.join(sorted(self.lhs))}}} -> {{{', '.join(sorted(self.rhs))}}}"


class FDSet:
    """A set of functional dependencies over a fixed attribute universe."""

    def __init__(self, attributes: Iterable[str], fds: Iterable[FunctionalDependency] = ()):
        self.attributes: FrozenSet[str] = frozenset(attributes)
        self.fds: Set[FunctionalDependency] = set()
        for fd in fds:
            self.add(fd)

    def add(self, fd: FunctionalDependency) -> None:
        """Add an FD (attributes outside the universe are dropped)."""
        lhs = fd.lhs & self.attributes
        rhs = (fd.rhs & self.attributes) - lhs
        if lhs == fd.lhs and rhs:
            self.fds.add(FunctionalDependency(lhs, rhs))

    def closure(self, attrs: Iterable[str]) -> FrozenSet[str]:
        """Attribute closure ``attrs+`` under this FD set (textbook fixpoint)."""
        closed = set(attrs) & self.attributes
        changed = True
        while changed:
            changed = False
            for fd in self.fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        return frozenset(closed)

    def implies(self, fd: FunctionalDependency) -> bool:
        """True when this FD set logically implies ``fd``."""
        return fd.rhs <= self.closure(fd.lhs)

    def determines(self, lhs: Iterable[str], attr: str) -> bool:
        """True when ``lhs -> attr`` follows from this FD set."""
        return attr in self.closure(lhs)

    def is_superkey(self, attrs: Iterable[str]) -> bool:
        """True when ``attrs`` functionally determines every attribute."""
        return self.closure(attrs) == self.attributes

    def is_key(self, attrs: Iterable[str]) -> bool:
        """True when ``attrs`` is a minimal superkey."""
        attrs = frozenset(attrs)
        if not self.is_superkey(attrs):
            return False
        return all(not self.is_superkey(attrs - {a}) for a in attrs)

    def candidate_keys(self, max_size: Optional[int] = None) -> List[FrozenSet[str]]:
        """All candidate keys up to ``max_size`` attributes (exhaustive search).

        Exponential in the worst case, but VDP node schemas are small (the
        paper's largest example has five attributes), so this is fine for the
        planner's use.
        """
        from itertools import combinations

        attrs = sorted(self.attributes)
        limit = max_size or len(attrs)
        keys: List[FrozenSet[str]] = []
        for size in range(1, limit + 1):
            for combo in combinations(attrs, size):
                cand = frozenset(combo)
                if any(k <= cand for k in keys):
                    continue
                if self.is_superkey(cand):
                    keys.append(cand)
        return keys

    def restrict(self, attrs: Iterable[str]) -> "FDSet":
        """The FD set projected onto a subset of the attributes.

        Sound but not complete (it keeps only FDs whose lhs survives); this
        is exactly the inference pattern Example 2.3 relies on, where the
        key attribute is retained by the projection.
        """
        attrs = frozenset(attrs)
        restricted = FDSet(attrs)
        for fd in self.fds:
            kept = fd.restrict(attrs)
            if kept:
                restricted.add(kept)
        return restricted

    def merge(self, other: "FDSet") -> "FDSet":
        """Union of two FD sets over the union of their universes."""
        merged = FDSet(self.attributes | other.attributes)
        for fd in self.fds | other.fds:
            merged.add(fd)
        return merged

    def rename(self, mapping) -> "FDSet":
        """The FD set with attributes renamed."""
        renamed = FDSet(mapping.get(a, a) for a in self.attributes)
        for fd in self.fds:
            renamed.add(
                FunctionalDependency(
                    frozenset(mapping.get(a, a) for a in fd.lhs),
                    frozenset(mapping.get(a, a) for a in fd.rhs),
                )
            )
        return renamed

    def __len__(self) -> int:
        return len(self.fds)

    def __iter__(self):
        return iter(self.fds)

    def __repr__(self) -> str:
        return f"FDSet({sorted(str(fd) for fd in self.fds)})"


def fds_from_schema(schema: RelationSchema) -> FDSet:
    """The FD set implied by a schema's declared key: ``key -> all``."""
    fdset = FDSet(schema.attribute_names)
    if schema.key:
        fdset.add(FunctionalDependency.of(schema.key, schema.attribute_names))
    return fdset


def infer_fds(expr: Expression, base: "dict[str, FDSet]") -> FDSet:
    """Propagate FDs through an algebra expression.

    ``base`` maps base-relation name to its FD set.  Inference rules (all
    sound; completeness is not needed for the planner):

    * **Scan** — the base FD set.
    * **Select** — FDs preserved; equality-with-constant conjuncts could add
      more but are not needed by the paper's constructions.
    * **Project** — restriction to the surviving attributes.
    * **Join** — union of both sides' FDs; for an equi-join each equated
      attribute pair determines one another.
    * **Union** — FDs are *not* preserved by union; returns the empty set.
    * **Difference** — the left side's FDs are preserved (the result is a
      subset of the left operand, and FDs are closed under subsets — the
      same "subset inherits FDs" argument as Example 2.3's step (2)-(3)).
    * **Rename** — renamed FDs.
    """
    if isinstance(expr, Scan):
        return base.get(expr.name, FDSet(()))
    if isinstance(expr, Select):
        return infer_fds(expr.child, base)
    if isinstance(expr, Project):
        return infer_fds(expr.child, base).restrict(expr.attrs)
    if isinstance(expr, Join):
        merged = infer_fds(expr.left, base).merge(infer_fds(expr.right, base))
        if expr.condition is not None:
            from repro.relalg.predicates import equi_join_pairs

            left_attrs = infer_fds(expr.left, base).attributes
            right_attrs = infer_fds(expr.right, base).attributes
            pairs, _ = equi_join_pairs(expr.condition, left_attrs, right_attrs)
            for l_attr, r_attr in pairs:
                merged.add(FunctionalDependency.of([l_attr], [r_attr]))
                merged.add(FunctionalDependency.of([r_attr], [l_attr]))
        else:
            # natural join: shared attributes are literally the same column
            pass
        return merged
    if isinstance(expr, Union):
        ls = infer_fds(expr.left, base)
        return FDSet(ls.attributes)
    if isinstance(expr, Difference):
        return infer_fds(expr.left, base)
    if isinstance(expr, Rename):
        return infer_fds(expr.child, base).rename(expr.mapping_dict)
    return FDSet(())
