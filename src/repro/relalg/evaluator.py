"""Evaluation of algebra expressions against a catalog of relations.

The evaluator is the workhorse behind three parts of the system:

* VDP node (re)computation — populating mediator relations at view-init time
  and recomputing ground truth in tests and benchmarks;
* the VAP's bottom-up construction of temporary relations (Section 6.3);
* the incremental rules of Section 5.2, which are themselves algebra
  expressions over current relations and deltas.

Joins are executed as hash joins on whatever equality conjuncts can be
extracted from the condition (see
:func:`repro.relalg.predicates.equi_join_pairs`), with the residual condition
applied as a post-filter — so Figure 4's arithmetic join condition
``a1^2 + a2 < b2^2`` degrades gracefully to a filtered cross product while
``r2 = s1`` runs in linear time.

Two layers of pre-computation keep the hot path (incremental rule firing)
proportional to delta size rather than database size:

* **Join plans** (:func:`plan_join`) — the per-join schema inference,
  equi-pair extraction, and residual splitting, resolved once.  Compiled
  rules (:mod:`repro.core.rules`) precompute plans at rulebase-construction
  time and pass them in via the ``join_plans`` argument; ad-hoc evaluations
  compute them on the fly, exactly as before.
* **Indexed probes** — when one join operand is a select/project/rename
  chain over a scanned relation that carries a *persistent* hash index on
  the join keys (see :meth:`repro.relalg.relation.Relation.ensure_index`),
  the evaluator drives the join from the other operand and probes the index
  per row instead of materializing and re-hashing the indexed relation.
  With the delta on the driving side, a rule firing costs O(|delta|) index
  probes where it used to cost a full re-hash of the sibling.

An optional :class:`EvalCounters` records rows scanned/hashed/produced,
index probes and index (re)builds; benchmarks and tests use it to assert
work done — not just wall-clock — by competing strategies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.relalg.columnar import ColumnarRelation
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.predicates import Predicate, equi_join_pairs
from repro.relalg.relation import BagRelation, Relation, SetRelation
from repro.relalg.schema import RelationSchema
from repro.relalg.tuples import Row

__all__ = [
    "evaluate",
    "EvalCounters",
    "Evaluator",
    "ScanChain",
    "ProbeSpec",
    "JoinPlan",
    "compile_scan_chain",
    "plan_join",
]


@dataclass
class EvalCounters:
    """Mutable work counters for one or more evaluations.

    ``rows_hashed`` counts rows inserted into hash tables: ephemeral
    per-join tables and persistent-index builds alike.  In the compiled
    propagation engine this is the headline scaling counter — flat in
    database size when rules probe maintained indexes, linear when they
    re-hash siblings.  ``index_probes`` counts persistent-index lookups and
    ``index_rebuilds`` counts full index constructions (steady-state
    propagation must keep this at zero; see ``tests/core`` and
    ``benchmarks/bench_propagation_scaling.py``).
    """

    rows_scanned: int = 0
    rows_produced: int = 0
    joins_executed: int = 0
    hash_probes: int = 0
    rows_hashed: int = 0
    index_probes: int = 0
    index_rebuilds: int = 0
    #: Physical-layer counters.  Unlike the logical counters above — which
    #: are identical for the row and columnar layouts (parity-pinned in
    #: ``tests/relalg/test_columnar_parity.py``) — these describe what the
    #: storage layout actually touched: ``rows_materialized`` counts Row
    #: objects built from column arrays, ``cells_scanned`` counts individual
    #: column cells read.  They are excluded from the cross-layout parity
    #: contract and from the shard work model (:func:`repro.core.iup._task_work`).
    rows_materialized: int = 0
    cells_scanned: int = 0

    def merge(self, other: "EvalCounters") -> None:
        """Accumulate another counter set into this one.

        Derived from ``dataclasses.fields`` — adding a counter field can
        never silently drop it from merges (regression-pinned in
        ``tests/relalg/test_eval_counters.py``).
        """
        from repro.obs.metrics import merge_dataclass_counters

        merge_dataclass_counters(self, other)

    def reset(self) -> None:
        """Zero every counter (fields-derived, like :meth:`merge`)."""
        from repro.obs.metrics import reset_dataclass_counters

        reset_dataclass_counters(self)


# ---------------------------------------------------------------------------
# Compiled join plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScanChain:
    """A select/project/rename chain over a single scanned relation.

    ``steps`` runs innermost-first (scan outward): each element is
    ``("rename", mapping)``, ``("select", predicate)`` or
    ``("project", attrs)``.  De-duplicating projections are not chains —
    their multiplicity collapse cannot be applied row-at-a-time.
    """

    base: str
    steps: Tuple[Tuple[str, Any], ...]

    def to_base(self, out_attr: str) -> Optional[str]:
        """Map a chain-output attribute name back to the base attribute."""
        name = out_attr
        for kind, payload in reversed(self.steps):
            if kind == "project":
                if name not in payload:
                    return None
            elif kind == "rename":
                inverted = None
                for old, new in payload.items():
                    if new == name:
                        inverted = old
                        break
                if inverted is not None:
                    name = inverted
                elif name in payload:
                    return None  # renamed away; not visible at the output
        return name

    def apply(self, base_row: Row) -> Optional[Row]:
        """Run the chain over one base row; None when a select rejects it."""
        r = base_row
        for kind, payload in self.steps:
            if kind == "rename":
                r = r.rename(payload)
            elif kind == "select":
                if not payload.evaluate(r):
                    return None
            else:  # project
                r = r.project(payload)
        return r


def compile_scan_chain(expr: Expression) -> Optional[ScanChain]:
    """Compile ``expr`` into a :class:`ScanChain` if it has that shape."""
    steps: List[Tuple[str, Any]] = []
    node = expr
    while not isinstance(node, Scan):
        if isinstance(node, Select):
            steps.append(("select", node.predicate))
            node = node.child
        elif isinstance(node, Project):
            if node.dedup:
                return None
            steps.append(("project", node.attrs))
            node = node.child
        elif isinstance(node, Rename):
            steps.append(("rename", node.mapping_dict))
            node = node.child
        else:
            return None
    return ScanChain(base=node.name, steps=tuple(reversed(steps)))


@dataclass(frozen=True)
class _ChainProgram:
    """A :class:`ScanChain` lowered to column accesses over its base.

    ``selects`` holds each selection predicate with the (visible name,
    base attribute) pairs it reads; ``out`` maps every output attribute to
    the base column it is sourced from, in output order.  Valid only for
    the base schema it was compiled against.
    """

    base: str
    selects: Tuple[Tuple[Predicate, Tuple[Tuple[str, str], ...]], ...]
    out: Tuple[Tuple[str, str], ...]


def _compile_chain_program(
    chain: ScanChain, base_attrs: Tuple[str, ...]
) -> Optional[_ChainProgram]:
    """Lower a chain to column accesses; None when a name cannot be traced."""
    cur_attrs = list(base_attrs)
    to_base = {a: a for a in base_attrs}
    selects: List[Tuple[Predicate, Tuple[Tuple[str, str], ...]]] = []
    for kind, payload in chain.steps:
        if kind == "rename":
            cur_attrs = [payload.get(a, a) for a in cur_attrs]
            to_base = {payload.get(a, a): b for a, b in to_base.items()}
        elif kind == "select":
            needed = payload.attributes()
            if not needed <= set(to_base):
                return None
            selects.append((payload, tuple((a, to_base[a]) for a in sorted(needed))))
        else:  # project (non-dedup; dedup never compiles to a chain)
            if not set(payload) <= set(to_base):
                return None
            cur_attrs = list(payload)
            to_base = {a: to_base[a] for a in payload}
    return _ChainProgram(
        chain.base, tuple(selects), tuple((a, to_base[a]) for a in cur_attrs)
    )


@dataclass(frozen=True)
class ProbeSpec:
    """How to answer one join side through a persistent index probe.

    ``constraints`` pairs each drive-side attribute with the base attribute
    it must equal; ``index_keys`` is the canonical (sorted, de-duplicated)
    base key tuple the persistent index is built on.
    """

    base: str
    chain: ScanChain
    index_keys: Tuple[str, ...]
    constraints: Tuple[Tuple[str, str], ...]


def _probe_spec(
    side_expr: Expression, side_keys: List[str], drive_keys: List[str]
) -> Optional[ProbeSpec]:
    chain = compile_scan_chain(side_expr)
    if chain is None or not side_keys:
        return None
    constraints: List[Tuple[str, str]] = []
    for drive_attr, out_attr in zip(drive_keys, side_keys):
        base_attr = chain.to_base(out_attr)
        if base_attr is None:
            return None
        constraints.append((drive_attr, base_attr))
    index_keys = tuple(sorted({base for _, base in constraints}))
    return ProbeSpec(chain.base, chain, index_keys, tuple(constraints))


@dataclass(frozen=True)
class JoinPlan:
    """Everything about one Join node that does not depend on the data."""

    natural: bool
    shared: Tuple[str, ...]  # natural joins: the shared attributes
    pairs: Tuple[Tuple[str, str], ...]  # theta joins: (left, right) equi pairs
    residual: Optional[Predicate]
    left_probe: Optional[ProbeSpec]  # probe the LEFT side, drive from right
    right_probe: Optional[ProbeSpec]  # probe the RIGHT side, drive from left


def plan_join(expr: Join, schemas: Mapping[str, RelationSchema]) -> JoinPlan:
    """Resolve schemas, equi pairs, residual and probe specs for one join."""
    left_schema = expr.left.infer_schema(schemas, "join_l")
    right_schema = expr.right.infer_schema(schemas, "join_r")
    left_attrs = frozenset(left_schema.attribute_names)
    right_attrs = frozenset(right_schema.attribute_names)

    if expr.condition is None:
        shared = tuple(sorted(left_attrs & right_attrs))
        keys = list(shared)
        return JoinPlan(
            natural=True,
            shared=shared,
            pairs=(),
            residual=None,
            left_probe=_probe_spec(expr.left, keys, keys),
            right_probe=_probe_spec(expr.right, keys, keys),
        )

    pairs, residual = equi_join_pairs(expr.condition, left_attrs, right_attrs)
    left_keys = [p[0] for p in pairs]
    right_keys = [p[1] for p in pairs]
    return JoinPlan(
        natural=False,
        shared=(),
        pairs=tuple(pairs),
        residual=residual,
        left_probe=_probe_spec(expr.left, left_keys, right_keys),
        right_probe=_probe_spec(expr.right, right_keys, left_keys),
    )


class Evaluator:
    """Evaluates expressions against a catalog ``{name: Relation}``."""

    def __init__(
        self,
        catalog: Mapping[str, Relation],
        schemas: Optional[Mapping[str, RelationSchema]] = None,
        counters: Optional[EvalCounters] = None,
        join_plans: Optional[Mapping[int, JoinPlan]] = None,
    ):
        self.catalog = catalog
        self.schemas = schemas or {name: rel.schema for name, rel in catalog.items()}
        self.counters = counters if counters is not None else EvalCounters()
        # Plans precompiled by a CompiledSPJ (keyed by id of the Join node,
        # stable because the compiled rule retains the expressions).  Plans
        # computed on the fly are cached per evaluator instance; the cache
        # pins each Join node so a collected expression can never alias a
        # cached id.
        self._join_plans: Dict[int, JoinPlan] = dict(join_plans) if join_plans else {}
        self._plan_pins: Dict[int, Join] = {}
        # Vectorized chain programs for columnar bases, compiled once per
        # expression node (id-keyed and pinned, like join plans).
        self._chain_programs: Dict[int, Optional["_ChainProgram"]] = {}
        self._chain_pins: Dict[int, Expression] = {}

    # ------------------------------------------------------------------
    def evaluate(self, expr: Expression, name: str = "result") -> Relation:
        """Evaluate ``expr``; the result relation is named ``name``.

        SPJ/union subtrees produce :class:`BagRelation`; a
        :class:`Difference` produces a :class:`SetRelation` (paper set
        nodes); a :class:`Project` with ``dedup=True`` also produces a set.
        """
        schema = expr.infer_schema(self.schemas, name)
        counts = self._eval(expr)
        if isinstance(expr, Difference) or (isinstance(expr, Project) and expr.dedup):
            return SetRelation(schema, counts.keys())
        result = BagRelation(schema)
        for r, n in counts.items():
            if n:
                result.insert(r, n)
        self.counters.rows_produced += sum(counts.values())
        return result

    # ------------------------------------------------------------------
    # Internal: everything computes a {row: positive count} dict.  Every
    # branch returns a dict it owns (never a catalog structure), so
    # operators like select may filter their child in place.
    # ------------------------------------------------------------------
    def _eval(self, expr: Expression) -> Dict[Row, int]:
        if isinstance(expr, (Select, Project, Rename)):
            fast = self._eval_columnar_chain(expr)
            if fast is not None:
                return fast
        if isinstance(expr, Scan):
            return self._eval_scan(expr)
        if isinstance(expr, Select):
            return self._eval_select(expr)
        if isinstance(expr, Project):
            return self._eval_project(expr)
        if isinstance(expr, Join):
            return self._eval_join(expr)
        if isinstance(expr, Union):
            return self._eval_union(expr)
        if isinstance(expr, Difference):
            return self._eval_difference(expr)
        if isinstance(expr, Rename):
            return self._eval_rename(expr)
        raise EvaluationError(f"unknown expression node {type(expr).__name__}")

    def _eval_scan(self, expr: Scan) -> Dict[Row, int]:
        try:
            rel = self.catalog[expr.name]
        except KeyError as exc:
            raise EvaluationError(f"relation {expr.name!r} not in catalog") from exc
        if isinstance(rel, ColumnarRelation):
            # A full scan of a columnar base touches every live cell and
            # materializes every distinct row once.
            self.counters.cells_scanned += rel.distinct_size() * rel.schema.arity
            self.counters.rows_materialized += rel.distinct_size()
        counts: Dict[Row, int] = {}
        for r, n in rel.items():
            counts[r] = n
            self.counters.rows_scanned += n
        return counts

    # ------------------------------------------------------------------
    # Vectorized chain evaluation over columnar bases
    # ------------------------------------------------------------------
    def _eval_columnar_chain(self, expr: Expression) -> Optional[Dict[Row, int]]:
        """Evaluate a select/project/rename chain column-wise, if possible.

        Applicable when the expression compiles to a :class:`ScanChain`
        whose base relation is a :class:`ColumnarRelation`: selection
        predicates then read only the column cells they reference and
        ``Row`` objects are materialized for *surviving* slots only.  The
        logical counters (``rows_scanned``, and ``rows_produced`` added by
        :meth:`evaluate`) are bumped exactly as the row-at-a-time path
        would, so both layouts stay counter-identical on the logical plane;
        the physical difference shows up in ``cells_scanned`` /
        ``rows_materialized``.  Returns None when not applicable.
        """
        key = id(expr)
        if key in self._chain_programs:
            prog = self._chain_programs[key]
        else:
            prog = None
            chain = compile_scan_chain(expr)
            if chain is not None and chain.steps:
                base_rel = self.catalog.get(chain.base)
                if isinstance(base_rel, ColumnarRelation):
                    prog = _compile_chain_program(chain, base_rel.schema.attribute_names)
            self._chain_programs[key] = prog
            self._chain_pins[key] = expr
        if prog is None:
            return None
        rel = self.catalog.get(prog.base)
        if not isinstance(rel, ColumnarRelation):
            return None
        counters = self.counters
        sel_cols = [
            (pred, [(name, rel.column(base)) for name, base in pairs])
            for pred, pairs in prog.selects
        ]
        out_cols = [(a, rel.column(b)) for a, b in prog.out]
        arity_out = len(out_cols)
        counts: Dict[Row, int] = {}
        counts_col = rel.counts_column()
        for slot in range(len(counts_col)):
            n = counts_col[slot]
            if n <= 0:
                continue
            counters.rows_scanned += n
            survived = True
            for pred, cols in sel_cols:
                counters.cells_scanned += len(cols)
                if not pred.evaluate({name: col[slot] for name, col in cols}):
                    survived = False
                    break
            if not survived:
                continue
            counters.cells_scanned += arity_out
            counters.rows_materialized += 1
            out = Row({a: col[slot] for a, col in out_cols})
            counts[out] = counts.get(out, 0) + n
        return counts

    def _eval_select(self, expr: Select) -> Dict[Row, int]:
        child = self._eval(expr.child)
        # The child dict is owned by this evaluation: filter it in place
        # instead of copying every surviving entry.
        predicate = expr.predicate
        doomed = [r for r in child if not predicate.evaluate(r)]
        for r in doomed:
            del child[r]
        return child

    def _eval_project(self, expr: Project) -> Dict[Row, int]:
        child = self._eval(expr.child)
        if not expr.dedup and child:
            sample = next(iter(child))
            if len(expr.attrs) == len(sample) and all(a in sample for a in expr.attrs):
                return child  # identity projection: row content is unchanged
        counts: Dict[Row, int] = defaultdict(int)
        for r, n in child.items():
            counts[r.project(expr.attrs)] += n
        if expr.dedup:
            return {r: 1 for r in counts}
        return dict(counts)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _plan(self, expr: Join) -> JoinPlan:
        plan = self._join_plans.get(id(expr))
        if plan is None:
            plan = plan_join(expr, self.schemas)
            self._join_plans[id(expr)] = plan
            self._plan_pins[id(expr)] = expr
        return plan

    def _eval_join(self, expr: Join) -> Dict[Row, int]:
        self.counters.joins_executed += 1
        plan = self._plan(expr)

        if plan.natural and not plan.shared:
            raise EvaluationError("natural join with no shared attributes")

        # Indexed execution: probe a persistently indexed side per drive
        # row.  When both sides are indexed, probe the bigger one (driving
        # from the smaller costs fewer probes).
        probe = self._pick_probe(expr, plan)
        if probe is not None:
            side, spec, rel = probe
            drive = self._eval(expr.right if side == "left" else expr.left)
            return self._indexed_join(drive, spec, rel, plan)

        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if plan.natural:
            return self._hash_join_natural(left, right, list(plan.shared))
        if plan.pairs:
            return self._hash_join_theta(left, right, list(plan.pairs), plan.residual)
        # Pure theta join: filtered cross product.
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            for rr, rn in right.items():
                merged = lr.merge(rr)
                if expr.condition.evaluate(merged):
                    counts[merged] += ln * rn
        return dict(counts)

    def _pick_probe(
        self, expr: Join, plan: JoinPlan
    ) -> Optional[Tuple[str, ProbeSpec, Relation]]:
        candidates: List[Tuple[int, str, ProbeSpec, Relation]] = []
        for side, spec in (("left", plan.left_probe), ("right", plan.right_probe)):
            if spec is None:
                continue
            rel = self.catalog.get(spec.base)
            if rel is None or not rel.has_index(spec.index_keys):
                continue
            candidates.append((rel.distinct_size(), side, spec, rel))
        if not candidates:
            return None
        size, side, spec, rel = max(candidates, key=lambda t: (t[0], t[1]))
        return side, spec, rel

    def _indexed_join(
        self,
        drive: Dict[Row, int],
        spec: ProbeSpec,
        rel: Relation,
        plan: JoinPlan,
    ) -> Dict[Row, int]:
        counts: Dict[Row, int] = defaultdict(int)
        chain = spec.chain
        residual = plan.residual
        for dr, dn in drive.items():
            by_base: Dict[str, Any] = {}
            consistent = True
            for drive_attr, base_attr in spec.constraints:
                v = dr[drive_attr]
                if base_attr in by_base:
                    if by_base[base_attr] != v:
                        consistent = False
                        break
                else:
                    by_base[base_attr] = v
            if not consistent:
                continue
            self.counters.index_probes += 1
            values = tuple(by_base[k] for k in spec.index_keys)
            if isinstance(rel, ColumnarRelation):
                # Slot-based probe: the index answers with a row-id slice;
                # rows materialize (cached) only for the matching bucket.
                slots = rel.slot_lookup(spec.index_keys, values)
                self.counters.rows_materialized += len(slots)
                bucket: Iterable[Tuple[Row, int]] = (
                    (rel.row_at(s), rel.count_at(s)) for s in slots
                )
            else:
                bucket = rel.index_lookup(spec.index_keys, values)
            for br, bn in bucket:
                out = chain.apply(br)
                if out is None:
                    continue
                merged = dr.merge_natural(out) if plan.natural else dr.merge(out)
                if residual is not None and not residual.evaluate(merged):
                    continue
                counts[merged] += dn * bn
        return dict(counts)

    def _hash_join_natural(
        self, left: Dict[Row, int], right: Dict[Row, int], shared: List[str]
    ) -> Dict[Row, int]:
        index: Dict[Tuple[Any, ...], List[Tuple[Row, int]]] = defaultdict(list)
        for rr, rn in right.items():
            index[rr.values_for(shared)].append((rr, rn))
            self.counters.rows_hashed += 1
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            self.counters.hash_probes += 1
            for rr, rn in index.get(lr.values_for(shared), ()):
                counts[lr.merge_natural(rr)] += ln * rn
        return dict(counts)

    def _hash_join_theta(
        self,
        left: Dict[Row, int],
        right: Dict[Row, int],
        pairs: List[Tuple[str, str]],
        residual,
    ) -> Dict[Row, int]:
        left_keys = [p[0] for p in pairs]
        right_keys = [p[1] for p in pairs]
        index: Dict[Tuple[Any, ...], List[Tuple[Row, int]]] = defaultdict(list)
        for rr, rn in right.items():
            index[rr.values_for(right_keys)].append((rr, rn))
            self.counters.rows_hashed += 1
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            self.counters.hash_probes += 1
            for rr, rn in index.get(lr.values_for(left_keys), ()):
                merged = lr.merge(rr)
                if residual is None or residual.evaluate(merged):
                    counts[merged] += ln * rn
        return dict(counts)

    def _eval_union(self, expr: Union) -> Dict[Row, int]:
        counts: Dict[Row, int] = defaultdict(int)
        for side in (expr.left, expr.right):
            for r, n in self._eval(side).items():
                counts[r] += n
        return dict(counts)

    def _eval_difference(self, expr: Difference) -> Dict[Row, int]:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        return {r: 1 for r in left if r not in right}

    def _eval_rename(self, expr: Rename) -> Dict[Row, int]:
        child = self._eval(expr.child)
        mapping = expr.mapping_dict
        counts: Dict[Row, int] = defaultdict(int)
        for r, n in child.items():
            counts[r.rename(mapping)] += n
        return dict(counts)


def evaluate(
    expr: Expression,
    catalog: Mapping[str, Relation],
    name: str = "result",
    counters: Optional[EvalCounters] = None,
    schemas: Optional[Mapping[str, RelationSchema]] = None,
) -> Relation:
    """One-shot evaluation: see :class:`Evaluator`."""
    return Evaluator(catalog, schemas=schemas, counters=counters).evaluate(expr, name)
