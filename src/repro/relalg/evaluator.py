"""Evaluation of algebra expressions against a catalog of relations.

The evaluator is the workhorse behind three parts of the system:

* VDP node (re)computation — populating mediator relations at view-init time
  and recomputing ground truth in tests and benchmarks;
* the VAP's bottom-up construction of temporary relations (Section 6.3);
* the incremental rules of Section 5.2, which are themselves algebra
  expressions over current relations and deltas.

Joins are executed as hash joins on whatever equality conjuncts can be
extracted from the condition (see
:func:`repro.relalg.predicates.equi_join_pairs`), with the residual condition
applied as a post-filter — so Figure 4's arithmetic join condition
``a1^2 + a2 < b2^2`` degrades gracefully to a filtered cross product while
``r2 = s1`` runs in linear time.

An optional :class:`EvalCounters` records rows scanned and produced; the
benchmark harness uses it to report work done by competing strategies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.predicates import equi_join_pairs
from repro.relalg.relation import BagRelation, Relation, SetRelation
from repro.relalg.schema import RelationSchema
from repro.relalg.tuples import Row

__all__ = ["evaluate", "EvalCounters", "Evaluator"]


@dataclass
class EvalCounters:
    """Mutable work counters for one or more evaluations."""

    rows_scanned: int = 0
    rows_produced: int = 0
    joins_executed: int = 0
    hash_probes: int = 0

    def merge(self, other: "EvalCounters") -> None:
        """Accumulate another counter set into this one."""
        self.rows_scanned += other.rows_scanned
        self.rows_produced += other.rows_produced
        self.joins_executed += other.joins_executed
        self.hash_probes += other.hash_probes


class Evaluator:
    """Evaluates expressions against a catalog ``{name: Relation}``."""

    def __init__(
        self,
        catalog: Mapping[str, Relation],
        schemas: Optional[Mapping[str, RelationSchema]] = None,
        counters: Optional[EvalCounters] = None,
    ):
        self.catalog = catalog
        self.schemas = schemas or {name: rel.schema for name, rel in catalog.items()}
        self.counters = counters if counters is not None else EvalCounters()

    # ------------------------------------------------------------------
    def evaluate(self, expr: Expression, name: str = "result") -> Relation:
        """Evaluate ``expr``; the result relation is named ``name``.

        SPJ/union subtrees produce :class:`BagRelation`; a
        :class:`Difference` produces a :class:`SetRelation` (paper set
        nodes); a :class:`Project` with ``dedup=True`` also produces a set.
        """
        schema = expr.infer_schema(self.schemas, name)
        counts = self._eval(expr)
        if isinstance(expr, Difference) or (isinstance(expr, Project) and expr.dedup):
            return SetRelation(schema, counts.keys())
        result = BagRelation(schema)
        for r, n in counts.items():
            if n:
                result.insert(r, n)
        self.counters.rows_produced += sum(counts.values())
        return result

    # ------------------------------------------------------------------
    # Internal: everything computes a {row: positive count} dict
    # ------------------------------------------------------------------
    def _eval(self, expr: Expression) -> Dict[Row, int]:
        if isinstance(expr, Scan):
            return self._eval_scan(expr)
        if isinstance(expr, Select):
            return self._eval_select(expr)
        if isinstance(expr, Project):
            return self._eval_project(expr)
        if isinstance(expr, Join):
            return self._eval_join(expr)
        if isinstance(expr, Union):
            return self._eval_union(expr)
        if isinstance(expr, Difference):
            return self._eval_difference(expr)
        if isinstance(expr, Rename):
            return self._eval_rename(expr)
        raise EvaluationError(f"unknown expression node {type(expr).__name__}")

    def _eval_scan(self, expr: Scan) -> Dict[Row, int]:
        try:
            rel = self.catalog[expr.name]
        except KeyError as exc:
            raise EvaluationError(f"relation {expr.name!r} not in catalog") from exc
        counts: Dict[Row, int] = {}
        for r, n in rel.items():
            counts[r] = n
            self.counters.rows_scanned += n
        return counts

    def _eval_select(self, expr: Select) -> Dict[Row, int]:
        child = self._eval(expr.child)
        return {r: n for r, n in child.items() if expr.predicate.evaluate(r)}

    def _eval_project(self, expr: Project) -> Dict[Row, int]:
        child = self._eval(expr.child)
        counts: Dict[Row, int] = defaultdict(int)
        for r, n in child.items():
            counts[r.project(expr.attrs)] += n
        if expr.dedup:
            return {r: 1 for r in counts}
        return dict(counts)

    def _eval_join(self, expr: Join) -> Dict[Row, int]:
        self.counters.joins_executed += 1
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        left_schema = expr.left.infer_schema(self.schemas, "join_l")
        right_schema = expr.right.infer_schema(self.schemas, "join_r")
        left_attrs = frozenset(left_schema.attribute_names)
        right_attrs = frozenset(right_schema.attribute_names)

        if expr.condition is None:
            shared = sorted(left_attrs & right_attrs)
            if not shared:
                raise EvaluationError("natural join with no shared attributes")
            return self._hash_join_natural(left, right, shared)

        pairs, residual = equi_join_pairs(expr.condition, left_attrs, right_attrs)
        if pairs:
            return self._hash_join_theta(left, right, pairs, residual)
        # Pure theta join: filtered cross product.
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            for rr, rn in right.items():
                merged = lr.merge(rr)
                if expr.condition.evaluate(merged):
                    counts[merged] += ln * rn
        return dict(counts)

    def _hash_join_natural(
        self, left: Dict[Row, int], right: Dict[Row, int], shared: List[str]
    ) -> Dict[Row, int]:
        index: Dict[Tuple[Any, ...], List[Tuple[Row, int]]] = defaultdict(list)
        for rr, rn in right.items():
            index[rr.values_for(shared)].append((rr, rn))
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            self.counters.hash_probes += 1
            for rr, rn in index.get(lr.values_for(shared), ()):
                counts[lr.merge_natural(rr)] += ln * rn
        return dict(counts)

    def _hash_join_theta(
        self,
        left: Dict[Row, int],
        right: Dict[Row, int],
        pairs: List[Tuple[str, str]],
        residual,
    ) -> Dict[Row, int]:
        left_keys = [p[0] for p in pairs]
        right_keys = [p[1] for p in pairs]
        index: Dict[Tuple[Any, ...], List[Tuple[Row, int]]] = defaultdict(list)
        for rr, rn in right.items():
            index[rr.values_for(right_keys)].append((rr, rn))
        counts: Dict[Row, int] = defaultdict(int)
        for lr, ln in left.items():
            self.counters.hash_probes += 1
            for rr, rn in index.get(lr.values_for(left_keys), ()):
                merged = lr.merge(rr)
                if residual is None or residual.evaluate(merged):
                    counts[merged] += ln * rn
        return dict(counts)

    def _eval_union(self, expr: Union) -> Dict[Row, int]:
        counts: Dict[Row, int] = defaultdict(int)
        for side in (expr.left, expr.right):
            for r, n in self._eval(side).items():
                counts[r] += n
        return dict(counts)

    def _eval_difference(self, expr: Difference) -> Dict[Row, int]:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        return {r: 1 for r in left if r not in right}

    def _eval_rename(self, expr: Rename) -> Dict[Row, int]:
        child = self._eval(expr.child)
        mapping = expr.mapping_dict
        counts: Dict[Row, int] = defaultdict(int)
        for r, n in child.items():
            counts[r.rename(mapping)] += n
        return dict(counts)


def evaluate(
    expr: Expression,
    catalog: Mapping[str, Relation],
    name: str = "result",
    counters: Optional[EvalCounters] = None,
    schemas: Optional[Mapping[str, RelationSchema]] = None,
) -> Relation:
    """One-shot evaluation: see :class:`Evaluator`."""
    return Evaluator(catalog, schemas=schemas, counters=counters).evaluate(expr, name)
