"""A textual mini-language for algebra expressions.

The Squirrel generator ([ZHK95]) accepts high-level textual specifications of
integrated views.  This parser provides the expression part of that language,
used by :mod:`repro.generator.spec` and convenient in tests and examples.

Grammar (lowercase keywords)::

    expr       := term (("union" | "minus") term)*
    term       := factor (("join" "[" pred "]" | "njoin") factor)*
    factor     := "project"  "[" names "]" "(" expr ")"
                | "dproject" "[" names "]" "(" expr ")"      # duplicate-eliminating
                | "select"   "[" pred  "]" "(" expr ")"
                | "rename"   "[" a "=" b ("," ...)* "]" "(" expr ")"
                | "(" expr ")"
                | NAME
    pred       := and-term ("or" and-term)*
    and-term   := not-term ("and" not-term)*
    not-term   := "not" not-term | "true" | "(" pred ")" | comparison
    comparison := sum ("=" | "!=" | "<" | "<=" | ">" | ">=") sum
    sum        := prod (("+" | "-") prod)*
    prod       := power (("*" | "/" | "%") power)*
    power      := atom ("^" atom)?
    atom       := NUMBER | 'STRING' | NAME | "(" sum ")"

Example — the view of Figure 1::

    project[r1, s1, s2](select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.predicates import (
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
    TRUE,
)

__all__ = ["parse_expression", "parse_predicate"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|=|<|>|\(|\)|\[|\]|,|\+|-|\*|/|%|\^)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "project",
    "dproject",
    "rename",
    "join",
    "njoin",
    "union",
    "minus",
    "and",
    "or",
    "not",
    "true",
}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "name" and value in _KEYWORDS:
            tokens.append(("kw", value))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    """Recursive-descent parser with one-token backtracking points."""

    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        tok_kind, tok_value = self.peek()
        if tok_kind == kind and (value is None or tok_value == value):
            self.pos += 1
            return tok_value
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got = self.accept(kind, value)
        if got is None:
            tok_kind, tok_value = self.peek()
            wanted = value or kind
            raise ParseError(f"expected {wanted!r}, found {tok_value!r} ({tok_kind})")
        return got

    # -- expressions -----------------------------------------------------
    def parse_expression(self) -> Expression:
        left = self.parse_term()
        while True:
            if self.accept("kw", "union"):
                left = Union(left, self.parse_term())
            elif self.accept("kw", "minus"):
                left = Difference(left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expression:
        left = self.parse_factor()
        while True:
            if self.accept("kw", "join"):
                self.expect("op", "[")
                cond = self.parse_predicate()
                self.expect("op", "]")
                left = Join(left, self.parse_factor(), cond)
            elif self.accept("kw", "njoin"):
                left = Join(left, self.parse_factor(), None)
            else:
                return left

    def parse_factor(self) -> Expression:
        if self.accept("kw", "project"):
            return self._parse_project(dedup=False)
        if self.accept("kw", "dproject"):
            return self._parse_project(dedup=True)
        if self.accept("kw", "select"):
            self.expect("op", "[")
            pred = self.parse_predicate()
            self.expect("op", "]")
            self.expect("op", "(")
            child = self.parse_expression()
            self.expect("op", ")")
            return Select(child, pred)
        if self.accept("kw", "rename"):
            self.expect("op", "[")
            mapping = {}
            while True:
                old = self.expect("name")
                self.expect("op", "=")
                new = self.expect("name")
                mapping[old] = new
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
            self.expect("op", "(")
            child = self.parse_expression()
            self.expect("op", ")")
            return Rename(child, mapping)
        if self.accept("op", "("):
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        name = self.expect("name")
        return Scan(name)

    def _parse_project(self, dedup: bool) -> Project:
        self.expect("op", "[")
        attrs = [self.expect("name")]
        while self.accept("op", ","):
            attrs.append(self.expect("name"))
        self.expect("op", "]")
        self.expect("op", "(")
        child = self.parse_expression()
        self.expect("op", ")")
        return Project(child, tuple(attrs), dedup)

    # -- predicates --------------------------------------------------------
    def parse_predicate(self) -> Predicate:
        left = self.parse_and_term()
        while self.accept("kw", "or"):
            left = Or(left, self.parse_and_term())
        return left

    def parse_and_term(self) -> Predicate:
        left = self.parse_not_term()
        while self.accept("kw", "and"):
            left = And(left, self.parse_not_term())
        return left

    def parse_not_term(self) -> Predicate:
        if self.accept("kw", "not"):
            return Not(self.parse_not_term())
        if self.accept("kw", "true"):
            return TRUE
        if self.peek() == ("op", "("):
            # Ambiguous: "(a or b)" is a predicate group, "(a + b) < c" is an
            # arithmetic group.  Try the predicate reading first, backtrack on
            # failure.
            saved = self.pos
            try:
                self.expect("op", "(")
                pred = self.parse_predicate()
                self.expect("op", ")")
                return pred
            except ParseError:
                self.pos = saved
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_sum()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self.accept("op", op):
                return Comparison(left, op, self.parse_sum())
        raise ParseError(f"expected comparison operator, found {self.peek()[1]!r}")

    # -- arithmetic terms --------------------------------------------------
    def parse_sum(self) -> Term:
        left = self.parse_prod()
        while True:
            if self.accept("op", "+"):
                left = Arith(left, "+", self.parse_prod())
            elif self.accept("op", "-"):
                left = Arith(left, "-", self.parse_prod())
            else:
                return left

    def parse_prod(self) -> Term:
        left = self.parse_power()
        while True:
            if self.accept("op", "*"):
                left = Arith(left, "*", self.parse_power())
            elif self.accept("op", "/"):
                left = Arith(left, "/", self.parse_power())
            elif self.accept("op", "%"):
                left = Arith(left, "%", self.parse_power())
            else:
                return left

    def parse_power(self) -> Term:
        base = self.parse_atom()
        if self.accept("op", "^"):
            return Arith(base, "^", self.parse_atom())
        return base

    def parse_atom(self) -> Term:
        kind, value = self.peek()
        if kind == "number":
            self.advance()
            return Const(float(value) if "." in value else int(value))
        if kind == "string":
            self.advance()
            return Const(value[1:-1])
        if kind == "name":
            self.advance()
            return Attr(value)
        if self.accept("op", "("):
            inner = self.parse_sum()
            self.expect("op", ")")
            return inner
        raise ParseError(f"expected a term, found {value!r} ({kind})")


def parse_expression(text: str) -> Expression:
    """Parse an algebra expression; raises :class:`ParseError` on bad input."""
    parser = _Parser(text)
    expr = parser.parse_expression()
    parser.expect("eof")
    return expr


def parse_predicate(text: str) -> Predicate:
    """Parse a standalone predicate; raises :class:`ParseError` on bad input."""
    parser = _Parser(text)
    pred = parser.parse_predicate()
    parser.expect("eof")
    return pred
