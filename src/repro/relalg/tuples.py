"""Immutable rows (tuples) for the relational substrate.

A :class:`Row` is an immutable mapping from attribute name to value.  Rows are
hashable so they can live in sets, bags (``Counter``), and delta atoms.  The
attribute-based algebra of the paper manipulates rows by projection, merge
(for joins), and attribute renaming; those operations are provided here as
pure methods returning new rows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import SchemaError

__all__ = ["Row", "row"]


class Row(Mapping):
    """An immutable, hashable mapping of attribute names to values.

    Equality and hashing are order-insensitive: ``Row({'a': 1, 'b': 2})``
    equals ``Row({'b': 2, 'a': 1})``.  Values must themselves be hashable
    (ints, floats, strings, tuples...), which every workload in this
    reproduction satisfies.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, Any]):
        object.__setattr__(self, "_data", dict(data))
        object.__setattr__(self, "_hash", None)

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- Identity --------------------------------------------------------
    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._data.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Row is immutable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"Row({inner})"

    # -- Algebra helpers ---------------------------------------------------
    def project(self, names: Sequence[str]) -> "Row":
        """The sub-row with only the given attributes."""
        try:
            return Row({n: self._data[n] for n in names})
        except KeyError as exc:
            raise SchemaError(f"row {self!r} has no attribute {exc.args[0]!r}") from exc

    def merge(self, other: "Row") -> "Row":
        """Concatenate two rows with disjoint attribute sets (theta-join)."""
        overlap = self._data.keys() & other._data.keys()
        if overlap:
            raise SchemaError(f"merge would overwrite attributes {sorted(overlap)}")
        combined: Dict[str, Any] = dict(self._data)
        combined.update(other._data)
        return Row(combined)

    def merge_natural(self, other: "Row") -> "Row":
        """Concatenate two rows, requiring shared attributes to agree.

        Used by natural joins (e.g. the key-based construction of
        Example 2.3, which natural-joins two projections of ``T``).
        """
        for k in self._data.keys() & other._data.keys():
            if self._data[k] != other._data[k]:
                raise SchemaError(
                    f"natural merge conflict on {k!r}: {self._data[k]!r} vs {other._data[k]!r}"
                )
        combined: Dict[str, Any] = dict(self._data)
        combined.update(other._data)
        return Row(combined)

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """A copy with attributes renamed per ``mapping`` (others unchanged)."""
        return Row({mapping.get(k, k): v for k, v in self._data.items()})

    def values_for(self, names: Sequence[str]) -> Tuple[Any, ...]:
        """The value tuple for the given attribute names (e.g. a key lookup)."""
        return tuple(self._data[n] for n in names)

    def with_value(self, name: str, value: Any) -> "Row":
        """A copy with ``name`` set (or replaced) to ``value``."""
        combined = dict(self._data)
        combined[name] = value
        return Row(combined)


def row(**values: Any) -> Row:
    """Keyword-argument convenience constructor: ``row(r1=1, r2='x')``."""
    return Row(values)
