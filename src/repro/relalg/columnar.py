"""Columnar (struct-of-arrays) relation storage.

:class:`ColumnarRelation` keeps one value array per attribute plus a
multiplicity array, instead of a hash container of per-row ``Row`` dicts.
Rows live in *slots*: a slot is an index into every column, freed slots are
recycled, and the distinct-row lookup structure maps a row's value tuple to
its slot.  The container implements the full
:class:`~repro.relalg.relation.Relation` protocol — ``items``/``count``/
``insert``/``delete``/``ensure_index``/``index_lookup`` — so every existing
call site (evaluator, delta apply, persistence encoding, sharding) works
unchanged; a ``layout="columnar"`` mediator simply stores its repositories
in this container.

What the layout buys:

* **slot-based persistent indexes** — an index bucket is a list of row ids
  (slots), not a dict of materialized ``Row`` objects; probes return row-id
  slices and rows are materialized (and cached) only when something
  actually consumes them;
* **vectorized chain evaluation** — the evaluator's columnar fast path
  (:meth:`repro.relalg.evaluator.Evaluator` on select/project/rename
  chains) reads only the columns a predicate or projection touches,
  skipping ``Row`` construction for rejected rows entirely;
* **cheap support probes** — ``count(row)`` is one tuple build plus one
  dict lookup, which the set-node probe rules
  (:mod:`repro.core.rules`) lean on to replace full operand re-evaluation.

Set semantics mirror :class:`SetRelation` strictness (duplicate inserts and
absent deletes raise), bag semantics mirror :class:`BagRelation`; the
Hypothesis parity suite pins byte-identical behaviour between layouts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DeltaError
from repro.relalg.relation import Relation, SetRelation
from repro.relalg.schema import RelationSchema
from repro.relalg.tuples import Row

__all__ = ["ColumnarRelation"]


class ColumnarRelation(Relation):
    """A relation stored as per-attribute value arrays + a count array."""

    def __init__(self, schema: RelationSchema, is_bag: bool = True):
        super().__init__(schema)
        self.is_bag = is_bag
        self._names: Tuple[str, ...] = schema.attribute_names
        self._columns: Dict[str, List[Any]] = {a: [] for a in self._names}
        self._counts: List[int] = []  # multiplicity per slot; 0 = free slot
        self._slot_of: Dict[Tuple[Any, ...], int] = {}
        self._free: List[int] = []
        # Rows are materialized lazily, once per live slot.
        self._row_cache: List[Optional[Row]] = []
        # Slot-based indexes: key tuple -> {key values -> [slot, ...]}.
        self._slot_indexes: Dict[Tuple[str, ...], Dict[Tuple[Any, ...], List[int]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation, is_bag: Optional[bool] = None) -> "ColumnarRelation":
        """A columnar copy of any relation (indexes not carried over)."""
        out = cls(relation.schema, relation.is_bag if is_bag is None else is_bag)
        for r, n in relation.items():
            out.insert(r, n)
        return out

    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Iterable[Row], is_bag: bool = True
    ) -> "ColumnarRelation":
        """Build from an iterable of rows (duplicates accumulate when a bag)."""
        rel = cls(schema, is_bag)
        for r in rows:
            rel.insert(r)
        return rel

    @classmethod
    def from_values(
        cls,
        schema: RelationSchema,
        value_rows: Iterable[Sequence[Any]],
        is_bag: bool = True,
    ) -> "ColumnarRelation":
        """Build from bare value tuples ordered like the schema attributes."""
        names = schema.attribute_names
        return cls.from_rows(
            schema, (Row(dict(zip(names, vals))) for vals in value_rows), is_bag
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def _key(self, row: Row) -> Tuple[Any, ...]:
        return row.values_for(self._names)

    def items(self) -> Iterator[Tuple[Row, int]]:
        for slot, n in enumerate(self._counts):
            if n > 0:
                yield self.row_at(slot), n

    def count(self, row: Row) -> int:
        slot = self._slot_of.get(self._key(row))
        return 0 if slot is None else self._counts[slot]

    def insert(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        if not self.is_bag:
            if multiplicity != 1:
                raise DeltaError(
                    f"set relation {self.schema.name!r} cannot insert multiplicity {multiplicity}"
                )
            if self._key(row) in self._slot_of:
                raise DeltaError(
                    f"duplicate insert into set relation {self.schema.name!r}: {row!r}"
                )
        elif multiplicity <= 0:
            raise DeltaError(f"insert multiplicity must be positive, got {multiplicity}")
        key = self._key(row)
        slot = self._slot_of.get(key)
        if slot is not None:
            self._counts[slot] += multiplicity
            return
        if self._free:
            slot = self._free.pop()
            for a, v in zip(self._names, key):
                self._columns[a][slot] = v
            self._counts[slot] = multiplicity
            self._row_cache[slot] = row
        else:
            slot = len(self._counts)
            for a, v in zip(self._names, key):
                self._columns[a].append(v)
            self._counts.append(multiplicity)
            self._row_cache.append(row)
        self._slot_of[key] = slot
        for keys, index in self._slot_indexes.items():
            index.setdefault(tuple(key[self._names.index(k)] for k in keys), []).append(slot)

    def delete(self, row: Row, multiplicity: int = 1) -> None:
        self._check_row(row)
        key = self._key(row)
        slot = self._slot_of.get(key)
        if not self.is_bag:
            if multiplicity != 1:
                raise DeltaError(
                    f"set relation {self.schema.name!r} cannot delete multiplicity {multiplicity}"
                )
            if slot is None:
                raise DeltaError(
                    f"delete of absent row from set relation {self.schema.name!r}: {row!r}"
                )
        else:
            if multiplicity <= 0:
                raise DeltaError(f"delete multiplicity must be positive, got {multiplicity}")
            have = 0 if slot is None else self._counts[slot]
            if have < multiplicity:
                raise DeltaError(
                    f"bag relation {self.schema.name!r} holds {have} of {row!r}, "
                    f"cannot delete {multiplicity}"
                )
        remaining = self._counts[slot] - multiplicity
        if remaining > 0:
            self._counts[slot] = remaining
            return
        self._counts[slot] = 0
        self._slot_of.pop(key)
        self._row_cache[slot] = None
        self._free.append(slot)
        for keys, index in self._slot_indexes.items():
            values = tuple(key[self._names.index(k)] for k in keys)
            bucket = index.get(values)
            if bucket is not None:
                bucket.remove(slot)
                if not bucket:
                    del index[values]

    def adjust(self, row: Row, signed: int) -> None:
        """Apply a signed multiplicity change, insert(+) / delete(-)."""
        if not self.is_bag:
            raise DeltaError(f"set relation {self.schema.name!r} has no adjust()")
        if signed > 0:
            self.insert(row, signed)
        elif signed < 0:
            self.delete(row, -signed)

    def distinct(self, schema: Optional[RelationSchema] = None) -> SetRelation:
        """Duplicate elimination, matching :meth:`BagRelation.distinct`."""
        return SetRelation(schema or self.schema, (r for r, _ in self.items()))

    def distinct_size(self) -> int:
        return len(self._slot_of)

    def copy(self) -> "ColumnarRelation":
        clone = ColumnarRelation(self.schema, self.is_bag)
        clone._columns = {a: list(col) for a, col in self._columns.items()}
        clone._counts = list(self._counts)
        clone._slot_of = dict(self._slot_of)
        clone._free = list(self._free)
        clone._row_cache = list(self._row_cache)
        return clone

    # ------------------------------------------------------------------
    # Columnar access (the evaluator's vectorized paths)
    # ------------------------------------------------------------------
    def column(self, attr: str) -> List[Any]:
        """The raw value array of one attribute (free slots hold stale data)."""
        return self._columns[attr]

    def counts_column(self) -> List[int]:
        """The multiplicity array (0 marks a free slot)."""
        return self._counts

    def live_slots(self) -> Iterator[int]:
        """Slot ids currently holding a row, in slot order."""
        for slot, n in enumerate(self._counts):
            if n > 0:
                yield slot

    def count_at(self, slot: int) -> int:
        """Multiplicity at one slot."""
        return self._counts[slot]

    def row_at(self, slot: int) -> Row:
        """The (cached) materialized row of one live slot."""
        r = self._row_cache[slot]
        if r is None:
            r = Row({a: self._columns[a][slot] for a in self._names})
            self._row_cache[slot] = r
        return r

    def estimated_bytes(self) -> int:
        """A coarse struct-of-arrays footprint estimate (cells + counts)."""
        import sys

        cells = sum(
            sys.getsizeof(col[slot])
            for col in self._columns.values()
            for slot in range(len(self._counts))
            if self._counts[slot] > 0
        )
        return cells + 8 * len(self._counts)

    # ------------------------------------------------------------------
    # Slot-based persistent indexes
    # ------------------------------------------------------------------
    def ensure_index(self, keys: Sequence[str], counters: Optional[Any] = None) -> None:
        keys = tuple(keys)
        if keys in self._slot_indexes:
            return
        self.schema.check_attributes(keys)
        cols = [self._columns[k] for k in keys]
        index: Dict[Tuple[Any, ...], List[int]] = {}
        hashed = 0
        for slot, n in enumerate(self._counts):
            if n <= 0:
                continue
            index.setdefault(tuple(c[slot] for c in cols), []).append(slot)
            hashed += 1
        self._slot_indexes[keys] = index
        if counters is not None:
            counters.index_rebuilds += 1
            counters.rows_hashed += hashed

    def has_index(self, keys: Sequence[str]) -> bool:
        return tuple(keys) in self._slot_indexes

    def index_keysets(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(self._slot_indexes)

    def slot_lookup(self, keys: Sequence[str], values: Tuple[Any, ...]) -> List[int]:
        """Row-id slice of an index probe: the slots matching ``values``."""
        return self._slot_indexes[tuple(keys)].get(values, [])

    def index_lookup(
        self, keys: Sequence[str], values: Tuple[Any, ...]
    ) -> List[Tuple[Row, int]]:
        return [
            (self.row_at(slot), self._counts[slot])
            for slot in self.slot_lookup(keys, values)
        ]

    def drop_indexes(self) -> None:
        self._slot_indexes = {}

    def __repr__(self) -> str:
        kind = "Bag" if self.is_bag else "Set"
        return f"<Columnar{kind}Relation {self.schema.name} |{self.cardinality()}|>"
