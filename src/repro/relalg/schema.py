"""Relation schemas for the attribute-based relational algebra.

The paper (Section 5) uses an *attribute-based* form of the algebra: attribute
names are globally meaningful (``r1``, ``s1`` ...), selections and projections
refer to attributes by name, and joins are expressed as conditions over the
union of the operand attribute sets.  This module provides the schema side of
that model: :class:`Attribute`, :class:`RelationSchema`, and the schema
combinators used by the expression layer (project / rename / join / union).

Keys matter here: Example 2.3 of the paper derives a functional dependency
``T : r1 -> r3`` from the fact that ``r1`` is the key of ``R'`` and uses it for
the *key-based construction* of temporary relations.  ``RelationSchema`` hence
carries an optional primary key, and :mod:`repro.relalg.functional` builds FD
reasoning on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError

__all__ = ["Attribute", "RelationSchema", "make_schema"]


@dataclass(frozen=True)
class Attribute:
    """A named, optionally typed attribute.

    ``dtype`` is advisory (used by workload generators and the SQLite source
    to pick column affinities); the algebra itself is dynamically typed, as in
    the paper.
    """

    name: str
    dtype: str = "any"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a relation: a name, an attribute list, and a key.

    ``key`` is the (possibly empty) tuple of attribute names forming the
    primary key.  An empty key means "no key is known"; the whole attribute
    set is then the only superkey.
    """

    name: str
    attributes: Tuple[Attribute, ...]
    key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}: {names}")
        if not names:
            raise SchemaError(f"schema {self.name!r} must have at least one attribute")
        for k in self.key:
            if k not in names:
                raise SchemaError(f"key attribute {k!r} not in schema {self.name!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def has_attribute(self, name: str) -> bool:
        """True if ``name`` is an attribute of this schema."""
        return any(a.name == name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising :class:`SchemaError` if absent."""
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def check_attributes(self, names: Iterable[str]) -> None:
        """Raise :class:`SchemaError` unless every name is an attribute here."""
        missing = [n for n in names if not self.has_attribute(n)]
        if missing:
            raise SchemaError(
                f"schema {self.name!r} is missing attributes {missing}; has {list(self.attribute_names)}"
            )

    # ------------------------------------------------------------------
    # Combinators used by the expression layer
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str], new_name: Optional[str] = None) -> "RelationSchema":
        """Schema of a projection onto ``names`` (order taken from ``names``).

        The key is retained only if every key attribute survives the
        projection; otherwise the projected schema has no known key.
        """
        self.check_attributes(names)
        attrs = tuple(self.attribute(n) for n in names)
        key = self.key if self.key and all(k in names for k in self.key) else ()
        return RelationSchema(new_name or self.name, attrs, key)

    def rename_relation(self, new_name: str) -> "RelationSchema":
        """The same attributes and key under a different relation name."""
        return RelationSchema(new_name, self.attributes, self.key)

    def rename_attributes(self, mapping: Mapping[str, str], new_name: Optional[str] = None) -> "RelationSchema":
        """Rename attributes according to ``mapping`` (missing names unchanged)."""
        self.check_attributes(mapping.keys())
        attrs = tuple(a.renamed(mapping.get(a.name, a.name)) for a in self.attributes)
        key = tuple(mapping.get(k, k) for k in self.key)
        return RelationSchema(new_name or self.name, attrs, key)

    def join(self, other: "RelationSchema", new_name: str) -> "RelationSchema":
        """Schema of a theta-join: attribute sets must be disjoint.

        The attribute-based algebra of the paper assumes globally distinct
        attribute names across joined relations (``r*`` vs ``s*``); renaming
        is applied beforehand when they are not.  The combined key is the
        concatenation of both keys when both are known (a standard sound,
        possibly non-minimal choice), else unknown.
        """
        overlap = set(self.attribute_names) & set(other.attribute_names)
        if overlap:
            raise SchemaError(
                f"theta-join of {self.name!r} and {other.name!r} has overlapping attributes {sorted(overlap)}; rename first"
            )
        key = self.key + other.key if self.key and other.key else ()
        return RelationSchema(new_name, self.attributes + other.attributes, key)

    def natural_join(self, other: "RelationSchema", new_name: str) -> "RelationSchema":
        """Schema of a natural join (shared attributes merged)."""
        shared = [a for a in other.attributes if self.has_attribute(a.name)]
        extra = tuple(a for a in other.attributes if not self.has_attribute(a.name))
        if not shared:
            raise SchemaError(
                f"natural join of {self.name!r} and {other.name!r} shares no attributes"
            )
        return RelationSchema(new_name, self.attributes + extra, ())

    def union_compatible_with(self, other: "RelationSchema") -> bool:
        """True if the two schemas have identical attribute name sequences."""
        return self.attribute_names == other.attribute_names

    def require_union_compatible(self, other: "RelationSchema") -> None:
        """Raise :class:`SchemaError` unless union-compatible with ``other``."""
        if not self.union_compatible_with(other):
            raise SchemaError(
                f"schemas {self.name!r}{list(self.attribute_names)} and "
                f"{other.name!r}{list(other.attribute_names)} are not union-compatible"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(
            f"{a.name}*" if a.name in self.key else a.name for a in self.attributes
        )
        return f"{self.name}({cols})"


def make_schema(name: str, attribute_names: Sequence[str], key: Sequence[str] = ()) -> RelationSchema:
    """Convenience constructor from bare attribute-name strings."""
    return RelationSchema(name, tuple(Attribute(n) for n in attribute_names), tuple(key))
