"""Relational algebra substrate: schemas, rows, relations, expressions.

This package is the self-contained relational engine the rest of the
reproduction is built on.  Nothing here knows about mediators, deltas, or
time — it is the algebra of Section 5 of the paper, with both set and bag
semantics, plus the functional-dependency reasoning used by Example 2.3.
"""

from repro.relalg.evaluator import (
    EvalCounters,
    Evaluator,
    JoinPlan,
    ProbeSpec,
    ScanChain,
    compile_scan_chain,
    evaluate,
    plan_join,
)
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    scan,
)
from repro.relalg.functional import FDSet, FunctionalDependency, fds_from_schema, infer_fds
from repro.relalg.parser import parse_expression, parse_predicate
from repro.relalg.predicates import (
    TRUE,
    And,
    Arith,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    attr,
    conjoin,
    conjuncts,
    const,
    disjoin,
    eq,
    equi_join_pairs,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.relalg.relation import BagRelation, Relation, SetRelation
from repro.relalg.schema import Attribute, RelationSchema, make_schema
from repro.relalg.tuples import Row, row

__all__ = [
    "Attribute",
    "RelationSchema",
    "make_schema",
    "Row",
    "row",
    "Relation",
    "SetRelation",
    "BagRelation",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "TRUE",
    "Attr",
    "Const",
    "Arith",
    "attr",
    "const",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "conjoin",
    "conjuncts",
    "disjoin",
    "equi_join_pairs",
    "Expression",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Difference",
    "Rename",
    "scan",
    "evaluate",
    "Evaluator",
    "EvalCounters",
    "JoinPlan",
    "ProbeSpec",
    "ScanChain",
    "compile_scan_chain",
    "plan_join",
    "FDSet",
    "FunctionalDependency",
    "fds_from_schema",
    "infer_fds",
    "parse_expression",
    "parse_predicate",
]
