"""Predicate and term ASTs for selections and join conditions.

Selection conditions in the paper range from simple comparisons
(``r4 = 100``, ``s3 < 50``) to arithmetic join conditions
(``a1^2 + a2 < b2^2`` in Figure 4).  This module provides a small, pure
expression language:

* **Terms** — attribute references, constants, and binary arithmetic.
* **Predicates** — comparisons over terms, boolean combinators, and the
  constant ``TRUE`` predicate.

Predicates know which attributes they reference (needed by the
``derived_from`` function of Section 6.3, which must include condition
attributes in the attribute sets it pushes down), can be evaluated against a
:class:`~repro.relalg.tuples.Row`, can be renamed, and can be split into
conjuncts (used for hash-join planning and for filtering deltas).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import EvaluationError

__all__ = [
    "Term",
    "Attr",
    "Const",
    "Arith",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "TRUE",
    "attr",
    "const",
    "eq",
    "lt",
    "le",
    "gt",
    "ge",
    "ne",
    "conjuncts",
    "conjoin",
    "disjoin",
    "equi_join_pairs",
    "implies",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------
class Term:
    """Abstract term: evaluates to a value given a row."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """The attribute names this term references."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        """A copy with attribute references renamed."""
        raise NotImplementedError


@dataclass(frozen=True)
class Attr(Term):
    """A reference to an attribute by name."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError as exc:
            raise EvaluationError(f"row has no attribute {self.name!r}") from exc

    def attributes(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def rename(self, mapping: Mapping[str, str]) -> "Attr":
        return Attr(mapping.get(self.name, self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A literal constant."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Const":
        return self

    def __str__(self) -> str:
        return repr(self.value)


_ARITH_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "^": operator.pow,
}


@dataclass(frozen=True)
class Arith(Term):
    """Binary arithmetic over terms (``+ - * / % ^``)."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise EvaluationError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return _ARITH_OPS[self.op](self.left.evaluate(row), self.right.evaluate(row))

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Arith":
        return Arith(self.left.rename(mapping), self.op, self.right.rename(mapping))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
class Predicate:
    """Abstract boolean predicate over a row."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """The attribute names this predicate references."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """A copy with attribute references renamed."""
        raise NotImplementedError

    # boolean sugar
    def __and__(self, other: "Predicate") -> "Predicate":
        return conjoin(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return disjoin(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


_CMP_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """A comparison between two terms: ``left op right``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return bool(_CMP_OPS[self.op](self.left.evaluate(row), self.right.evaluate(row)))

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.left.rename(mapping), self.op, self.right.rename(mapping))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "And":
        return And(self.left.rename(mapping), self.right.rename(mapping))

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates.

    The VAP's merge step (Section 6.3, step 2b) replaces two pending
    temporary-relation requests ``(R, B, g)`` and ``(R, A, f)`` by
    ``(R, B ∪ A, f ∨ g)`` — this node is how that ``∨`` is represented.
    """

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Or":
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    child: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.child.evaluate(row)

    def attributes(self) -> FrozenSet[str]:
        return self.child.attributes()

    def rename(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.child.rename(mapping))

    def __str__(self) -> str:
        return f"(not {self.child})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (a selection with no condition)."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "TruePredicate":
        return self

    def __str__(self) -> str:
        return "true"


TRUE = TruePredicate()


# ---------------------------------------------------------------------------
# Constructors and utilities
# ---------------------------------------------------------------------------
def attr(name: str) -> Attr:
    """Shorthand for :class:`Attr`."""
    return Attr(name)


def const(value: Any) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def _as_term(value: Any) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Attr(value)
    return Const(value)


def _cmp(op: str, left: Any, right: Any) -> Comparison:
    return Comparison(_as_term(left), op, _as_term(right))


def eq(left: Any, right: Any) -> Comparison:
    """``left = right``; strings become attribute refs, other values constants."""
    return _cmp("=", left, right)


def ne(left: Any, right: Any) -> Comparison:
    """``left != right``."""
    return _cmp("!=", left, right)


def lt(left: Any, right: Any) -> Comparison:
    """``left < right``."""
    return _cmp("<", left, right)


def le(left: Any, right: Any) -> Comparison:
    """``left <= right``."""
    return _cmp("<=", left, right)


def gt(left: Any, right: Any) -> Comparison:
    """``left > right``."""
    return _cmp(">", left, right)


def ge(left: Any, right: Any) -> Comparison:
    """``left >= right``."""
    return _cmp(">=", left, right)


def conjuncts(pred: Predicate) -> List[Predicate]:
    """Flatten nested conjunctions into a list (TRUE flattens to [])."""
    if isinstance(pred, TruePredicate):
        return []
    if isinstance(pred, And):
        return conjuncts(pred.left) + conjuncts(pred.right)
    return [pred]


def conjoin(*preds: Predicate) -> Predicate:
    """Conjunction of any number of predicates, simplifying TRUE away."""
    parts: List[Predicate] = []
    for p in preds:
        parts.extend(conjuncts(p))
    if not parts:
        return TRUE
    result = parts[0]
    for p in parts[1:]:
        result = And(result, p)
    return result


def disjoin(*preds: Predicate) -> Predicate:
    """Disjunction of any number of predicates; TRUE absorbs everything."""
    if not preds:
        return TRUE
    if any(isinstance(p, TruePredicate) for p in preds):
        return TRUE
    result = preds[0]
    for p in preds[1:]:
        result = Or(result, p)
    return result


def _normalize_comparison(pred: Predicate) -> Optional[Tuple[str, str, Any]]:
    """``(attr, op, const)`` for a single-attribute constant comparison.

    ``c op x`` forms are flipped so the attribute is always on the left;
    anything else (attr-attr, arithmetic terms) returns ``None``.
    """
    if not isinstance(pred, Comparison):
        return None
    flip = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if isinstance(pred.left, Attr) and isinstance(pred.right, Const):
        return pred.left.name, pred.op, pred.right.value
    if isinstance(pred.left, Const) and isinstance(pred.right, Attr):
        return pred.right.name, flip[pred.op], pred.left.value
    return None


def _comparison_implies(premise: Predicate, conclusion: Predicate) -> bool:
    """Sound interval reasoning: ``x op1 c1`` entails ``x op2 c2``?"""
    p = _normalize_comparison(premise)
    q = _normalize_comparison(conclusion)
    if p is None or q is None or p[0] != q[0]:
        return False
    _, op1, c1 = p
    _, op2, c2 = q
    try:
        if op2 == "<":
            return (op1 == "<" and c1 <= c2) or (op1 in ("<=", "=") and c1 < c2)
        if op2 == "<=":
            return (op1 in ("<", "<=", "=") and c1 <= c2)
        if op2 == ">":
            return (op1 == ">" and c1 >= c2) or (op1 in (">=", "=") and c1 > c2)
        if op2 == ">=":
            return (op1 in (">", ">=", "=") and c1 >= c2)
        if op2 == "=":
            return op1 == "=" and c1 == c2
        if op2 == "!=":
            return (
                (op1 == "=" and c1 != c2)
                or (op1 == "!=" and c1 == c2)
                or (op1 == "<" and c2 >= c1)
                or (op1 == "<=" and c2 > c1)
                or (op1 == ">" and c2 <= c1)
                or (op1 == ">=" and c2 < c1)
            )
    except TypeError:
        return False  # constants of incomparable types
    return False


def implies(premise: Predicate, conclusion: Predicate) -> bool:
    """Sound (conservative) implication test: every row satisfying
    ``premise`` provably satisfies ``conclusion``.

    ``False`` means "could not prove it", not "does not hold" — callers
    (the VAP temp cache's subsumption check) treat an unproven implication
    as a cache miss, which is always safe.  The fragment covered: syntactic
    equality, conjunction/disjunction decomposition, and interval
    reasoning over single-attribute constant comparisons (so
    ``s3 < 30 ⇒ s3 < 50`` and ``r4 = 100 ⇒ r4 >= 50`` are recognized).
    """
    if isinstance(conclusion, TruePredicate):
        return True
    if premise == conclusion:
        return True
    # A conjunctive conclusion holds iff every conjunct does.
    ccs = conjuncts(conclusion)
    if len(ccs) > 1:
        return all(implies(premise, cc) for cc in ccs)
    # A disjunctive premise must imply the conclusion on both branches.
    if isinstance(premise, Or):
        return implies(premise.left, conclusion) and implies(premise.right, conclusion)
    # A disjunctive conclusion is implied via either branch.
    if isinstance(conclusion, Or) and (
        implies(premise, conclusion.left) or implies(premise, conclusion.right)
    ):
        return True
    # A conjunctive premise entails anything one of its conjuncts entails.
    pcs = conjuncts(premise)
    for pc in pcs:
        if pc == conclusion or _comparison_implies(pc, conclusion):
            return True
    if len(pcs) > 1:
        return any(implies(pc, conclusion) for pc in pcs)
    return False


def equi_join_pairs(
    pred: Predicate, left_attrs: FrozenSet[str], right_attrs: FrozenSet[str]
) -> Tuple[List[Tuple[str, str]], Optional[Predicate]]:
    """Extract hash-joinable equality pairs from a join condition.

    Returns ``(pairs, residual)`` where each pair is ``(left_attr,
    right_attr)`` with one side from each operand, and ``residual`` is the
    conjunction of the remaining conjuncts (``None`` when nothing remains).
    Used by the evaluator to run equi-joins as hash joins while keeping
    arbitrary theta conditions (e.g. Figure 4's ``a1^2 + a2 < b2^2``) as a
    post-filter.
    """
    pairs: List[Tuple[str, str]] = []
    residual: List[Predicate] = []
    for part in conjuncts(pred):
        if (
            isinstance(part, Comparison)
            and part.op == "="
            and isinstance(part.left, Attr)
            and isinstance(part.right, Attr)
        ):
            l, r = part.left.name, part.right.name
            if l in left_attrs and r in right_attrs:
                pairs.append((l, r))
                continue
            if r in left_attrs and l in right_attrs:
                pairs.append((r, l))
                continue
        residual.append(part)
    residual_pred = conjoin(*residual) if residual else None
    if residual_pred is TRUE:
        residual_pred = None
    return pairs, residual_pred
