"""Algebra expression AST (attribute-based relational algebra).

The view-definition language supported by Squirrel "includes the relational
algebra" in attribute-based form (Section 5).  This module defines the
expression tree used everywhere in the reproduction: VDP node definitions,
mediator queries, and the generator's specs all reduce to these nodes.

Operators (paper Section 5.1 restrictions are enforced at the *VDP* layer,
not here — the raw algebra is unrestricted):

* :class:`Scan` — a named relation from a catalog.
* :class:`Select` — ``σ_f``.
* :class:`Project` — ``π_A`` (bag semantics by default; ``dedup=True`` gives
  the set-semantics projection used under set nodes).
* :class:`Join` — natural join (``condition=None``) or theta join.
* :class:`Union` — bag union (additive).
* :class:`Difference` — set difference (operands de-duplicated).
* :class:`Rename` — attribute renaming.

Each node can infer its output schema from a mapping of base-relation
schemas, report the base relations it mentions, and print itself in the same
mini-language accepted by :mod:`repro.relalg.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relalg.predicates import Predicate, TruePredicate
from repro.relalg.schema import RelationSchema

__all__ = [
    "Expression",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Difference",
    "Rename",
    "scan",
]


class Expression:
    """Abstract algebra expression."""

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        """The schema of the result, given base-relation schemas."""
        raise NotImplementedError

    def relation_names(self) -> FrozenSet[str]:
        """Names of the base relations referenced by this expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    # sugar ---------------------------------------------------------------
    def select(self, predicate: Predicate) -> "Select":
        """``σ_predicate(self)``."""
        return Select(self, predicate)

    def project(self, attrs: Sequence[str], dedup: bool = False) -> "Project":
        """``π_attrs(self)``."""
        return Project(self, tuple(attrs), dedup)

    def join(self, other: "Expression", condition: Optional[Predicate] = None) -> "Join":
        """Natural join when ``condition`` is None, else theta join."""
        return Join(self, other, condition)

    def union(self, other: "Expression") -> "Union":
        """Bag union."""
        return Union(self, other)

    def minus(self, other: "Expression") -> "Difference":
        """Set difference."""
        return Difference(self, other)

    def rename(self, mapping: Mapping[str, str]) -> "Rename":
        """Attribute renaming."""
        return Rename(self, dict(mapping))


@dataclass(frozen=True)
class Scan(Expression):
    """A reference to a named base relation."""

    name: str

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        try:
            return schemas[self.name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {self.name!r} in expression") from exc

    def relation_names(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Select(Expression):
    """``σ_predicate(child)``."""

    child: Expression
    predicate: Predicate

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        child_schema = self.child.infer_schema(schemas, name)
        child_schema.check_attributes(self.predicate.attributes())
        return child_schema.rename_relation(name)

    def relation_names(self) -> FrozenSet[str]:
        return self.child.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"select[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Project(Expression):
    """``π_attrs(child)``; bag semantics unless ``dedup`` is set."""

    child: Expression
    attrs: Tuple[str, ...]
    dedup: bool = False

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        child_schema = self.child.infer_schema(schemas, name)
        return child_schema.project(self.attrs, name)

    def relation_names(self) -> FrozenSet[str]:
        return self.child.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        op = "dproject" if self.dedup else "project"
        return f"{op}[{', '.join(self.attrs)}]({self.child})"


@dataclass(frozen=True)
class Join(Expression):
    """Join of two expressions.

    ``condition=None`` means *natural join* on shared attribute names
    (used by the key-based temporary-relation construction of Example 2.3).
    A non-None condition is a theta join and requires disjoint attribute
    sets, as in the paper's globally-named attribute convention.
    """

    left: Expression
    right: Expression
    condition: Optional[Predicate] = None

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        ls = self.left.infer_schema(schemas, name + "_l")
        rs = self.right.infer_schema(schemas, name + "_r")
        if self.condition is None:
            return ls.natural_join(rs, name)
        joined = ls.join(rs, name)
        joined.check_attributes(self.condition.attributes())
        return joined

    def relation_names(self) -> FrozenSet[str]:
        return self.left.relation_names() | self.right.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.condition is None:
            return f"({self.left} njoin {self.right})"
        return f"({self.left} join[{self.condition}] {self.right})"


@dataclass(frozen=True)
class Union(Expression):
    """Bag union of two union-compatible expressions."""

    left: Expression
    right: Expression

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        ls = self.left.infer_schema(schemas, name)
        rs = self.right.infer_schema(schemas, name)
        ls.require_union_compatible(rs)
        return ls.rename_relation(name)

    def relation_names(self) -> FrozenSet[str]:
        return self.left.relation_names() | self.right.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} union {self.right})"


@dataclass(frozen=True)
class Difference(Expression):
    """Set difference of two union-compatible expressions.

    Section 5.1(4): nodes whose definitions involve difference are *set
    nodes*; the evaluator de-duplicates both operands before subtracting.
    """

    left: Expression
    right: Expression

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        ls = self.left.infer_schema(schemas, name)
        rs = self.right.infer_schema(schemas, name)
        ls.require_union_compatible(rs)
        return ls.rename_relation(name)

    def relation_names(self) -> FrozenSet[str]:
        return self.left.relation_names() | self.right.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} minus {self.right})"


@dataclass(frozen=True)
class Rename(Expression):
    """Attribute renaming (``mapping`` old-name -> new-name)."""

    child: Expression
    mapping: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # freeze the mapping so the dataclass stays hashable
        object.__setattr__(self, "mapping", tuple(sorted(dict(self.mapping).items())))

    @property
    def mapping_dict(self) -> dict:
        """The renaming as a plain dict."""
        return dict(self.mapping)

    def infer_schema(
        self, schemas: Mapping[str, RelationSchema], name: str = "result"
    ) -> RelationSchema:
        child_schema = self.child.infer_schema(schemas, name)
        return child_schema.rename_attributes(self.mapping_dict, name)

    def relation_names(self) -> FrozenSet[str]:
        return self.child.relation_names()

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        pairs = ", ".join(f"{old}={new}" for old, new in self.mapping)
        return f"rename[{pairs}]({self.child})"


def scan(name: str) -> Scan:
    """Shorthand for :class:`Scan`."""
    return Scan(name)
