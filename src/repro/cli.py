"""Command-line interface: deploy a mediator from a spec and query it.

Usage::

    python -m repro describe SPEC                 # show the annotated VDP
    python -m repro query SPEC "project[a](V)"    # one-shot query
    python -m repro repl SPEC                     # interactive session
    python -m repro trace ex23 --out t.jsonl      # traced canned scenario
    python -m repro stats ex23                    # metrics after a scenario
    python -m repro profile --scenario figure1    # per-node cost profile
    python -m repro export-metrics ex23           # Prometheus text format
    python -m repro checkpoint SPEC --dir DIR     # write a durable checkpoint
    python -m repro recover SPEC --dir DIR        # recover a mediator from DIR
    python -m repro soak --sources 200 --seed 7   # churn & soak workload

``soak`` generates a seeded federation (:mod:`repro.generator.federation`)
and drives it through a churn schedule — sources joining, leaving, and
suffering outages while updates cross a faulty simulated network — with
periodic convergence checkpoints (churned ≡ static) and a freshness-SLO
report; ``--crash TXN:PHASE`` composes in the durability crash schedule.
Exits non-zero on any convergence or SLO violation.

``checkpoint`` deploys a mediator from the spec (+ data) and writes a full
checkpoint into ``--dir`` (creating the write-ahead log alongside it);
``recover`` rebuilds a mediator from that directory *without* re-reading
the sources wholesale — checkpoint chain, WAL tail, then source-log
catch-up — and prints what recovery did (optionally answering ``--query``
against the recovered state).  See :mod:`repro.durability`.

``trace`` and ``stats`` drive a canned scenario (one of
``repro.obs.harness.SCENARIOS``) with tracing and delta provenance on;
``trace`` prints the span tree (and optionally exports schema-validated
JSONL), ``stats`` prints the metrics-registry snapshot and the per-node
provenance summary.  ``profile`` runs a scenario under the cost profiler
(``figure1`` is an alias for ``ex21``, the Figure 1 acceptance workload)
and prints the per-node cost table — its totals reconcile *exactly* with
the ``MediatorStats`` counters, and the command exits non-zero if they do
not.  ``export-metrics`` runs a scenario and emits the metrics snapshot
in the Prometheus text exposition format (or JSON with ``--format json``).

``SPEC`` is a mediator specification file (see :mod:`repro.generator.spec`).
Initial data is loaded from an optional ``--data FILE.json`` whose shape is
``{"source": {"relation": [[v, v, ...], ...]}}``.  The REPL accepts algebra
queries plus the commands ``\\vdp``, ``\\stats``, ``\\refresh``,
``\\insert source relation v1 v2 ...``, ``\\delete source relation v1 v2 ...``
and ``\\quit``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import SquirrelMediator
from repro.errors import ReproError
from repro.generator import generate_mediator, make_sources, parse_spec

__all__ = ["main", "build_mediator_from_files"]


def _load_data(path: Optional[str]) -> Dict[str, Dict[str, List[Sequence[Any]]]]:
    if path is None:
        return {}
    with open(path) as handle:
        raw = json.load(handle)
    return {
        source: {rel: [tuple(row) for row in rows] for rel, rows in relations.items()}
        for source, relations in raw.items()
    }


def build_mediator_from_files(
    spec_path: str,
    data_path: Optional[str] = None,
    backend: str = "memory",
    layout: str = "row",
) -> SquirrelMediator:
    """Deploy an initialized mediator from a spec file (+ optional data)."""
    with open(spec_path) as handle:
        spec = parse_spec(handle.read())
    sources = make_sources(spec, initial=_load_data(data_path), backend=backend)
    return generate_mediator(spec, sources, layout=layout)


def _print_relation(relation, out) -> None:
    names = relation.schema.attribute_names
    print("  " + " | ".join(names), file=out)
    for values, count in relation.to_sorted_list():
        suffix = f"  (x{count})" if count != 1 else ""
        print("  " + " | ".join(str(v) for v in values) + suffix, file=out)
    print(f"  [{relation.cardinality()} rows]", file=out)


def _cmd_describe(args, out) -> int:
    mediator = build_mediator_from_files(args.spec, args.data, args.backend, args.layout)
    print(mediator.annotated.describe(), file=out)
    print(file=out)
    print(
        "contributors: "
        + ", ".join(f"{k}={v.value}" for k, v in sorted(mediator.contributor_kinds.items())),
        file=out,
    )
    return 0


def _cmd_query(args, out) -> int:
    mediator = build_mediator_from_files(args.spec, args.data, args.backend, args.layout)
    answer = mediator.query(args.expression)
    _print_relation(answer, out)
    return 0


def _parse_value(token: str) -> Any:
    for caster in (int, float):
        try:
            return caster(token)
        except ValueError:
            continue
    return token


def _repl_command(mediator: SquirrelMediator, line: str, out) -> bool:
    """Handle one REPL line; returns False to exit."""
    if line in ("\\quit", "\\q"):
        return False
    if line == "\\vdp":
        print(mediator.annotated.describe(), file=out)
        return True
    if line == "\\stats":
        for field, value in vars(mediator.stats()).items():
            print(f"  {field}: {value}", file=out)
        return True
    if line == "\\refresh":
        result = mediator.refresh()
        print(
            f"  {result.flushed_messages} messages, {result.rules_fired} rules, "
            f"nodes {list(result.processed_nodes)}",
            file=out,
        )
        return True
    if line.startswith("\\insert ") or line.startswith("\\delete "):
        op, source_name, relation, *values = line[1:].split()
        source = mediator.sources[source_name]
        names = source.schema(relation).attribute_names
        if len(values) != len(names):
            print(f"  expected {len(names)} values for {names}", file=out)
            return True
        kwargs = {n: _parse_value(v) for n, v in zip(names, values)}
        (source.insert if op == "insert" else source.delete)(relation, **kwargs)
        print("  ok (use \\refresh to propagate)", file=out)
        return True
    answer = mediator.query(line)
    _print_relation(answer, out)
    return True


def _cmd_trace(args, out) -> int:
    from repro.obs import Tracer, export_jsonl, render_span_tree, run_scenario

    tracer = Tracer(enabled=True, provenance=not args.no_provenance)
    run_scenario(args.scenario, tracer)
    if args.out:
        written = export_jsonl(tracer, args.out, validate=not args.no_validate)
        print(f"wrote {written} records to {args.out}", file=out)
    if not args.quiet:
        print(render_span_tree(tracer), file=out)
    return 0


def _cmd_stats(args, out) -> int:
    from repro.obs import Tracer, origin_labels, render_metrics, run_scenario

    tracer = Tracer(enabled=True, provenance=True)
    mediator = run_scenario(args.scenario, tracer)
    print(render_metrics(mediator.metrics.snapshot()), file=out)
    storage = mediator.store.storage_metrics()
    if storage:
        print(file=out)
        print("storage (per stored node):", file=out)
        width = max(len(row["node"]) for row in storage)
        for row in storage:
            print(
                f"  {row['node']:<{width}}  {row['rows_stored']:>8} rows "
                f"({row['distinct_rows']} distinct, ~{row['estimated_bytes']} bytes)",
                file=out,
            )
        total = mediator.store.total_stored_bytes()
        print(f"  total estimated bytes: {total}", file=out)
    prov = tracer.provenance
    tracked = prov.tracked_nodes()
    if tracked:
        print(file=out)
        print("delta provenance (last transaction per node):", file=out)
        for node in tracked:
            labels = ", ".join(origin_labels(prov.origins_of(node)))
            approx = " (upper bound)" if prov.is_approx(node) else ""
            print(f"  {node}: {labels}{approx}", file=out)
    return 0


def _cmd_profile(args, out) -> int:
    from repro.obs import CostProfiler, Tracer, run_scenario

    # "figure1" names the acceptance workload; it is the ex21 scenario.
    scenario = "ex21" if args.scenario == "figure1" else args.scenario
    tracer = Tracer(enabled=True, retain=False)
    profiler = CostProfiler().attach(tracer)
    mediator = run_scenario(scenario, tracer)
    profile = profiler.profile()
    if args.json:
        print(profile.to_json(indent=2), file=out)
    else:
        nodes = sorted(
            profile.nodes.items(),
            key=lambda item: (-item[1].propagation_time, item[0]),
        )
        header = (
            f"{'node':<14} {'prop_ms':>8} {'fires':>6} {'rows':>7} "
            f"{'constructs':>10} {'poll_rows':>9} {'hit/miss':>9} "
            f"{'queries':>7} {'query_ms':>9}"
        )
        print(f"cost profile: scenario {scenario!r} (per node)", file=out)
        print(header, file=out)
        for name, cost in nodes:
            print(
                f"{name:<14} {cost.propagation_time * 1000:>8.3f} "
                f"{cost.fires_out:>6} {cost.apply_rows:>7} "
                f"{cost.constructs:>10} {cost.poll_rows:>9} "
                f"{cost.cache_hits:>4}/{cost.cache_misses:<4} "
                f"{cost.queries:>7} {cost.query_time * 1000:>9.3f}",
                file=out,
            )
        totals = (
            f"{'TOTAL':<14} {profile.total('propagation_time') * 1000:>8.3f} "
            f"{int(profile.total('fires_out')):>6} "
            f"{int(profile.total('apply_rows')):>7} "
            f"{int(profile.total('constructs')):>10} "
            f"{int(profile.total('poll_rows')):>9} "
            f"{int(profile.total('cache_hits')):>4}/"
            f"{int(profile.total('cache_misses')):<4} "
            f"{profile.queries.count:>7} {profile.queries.time * 1000:>9.3f}"
        )
        print(totals, file=out)
        if profile.sources:
            print(file=out)
            print("per source:", file=out)
            for name in sorted(profile.sources):
                cost = profile.sources[name]
                print(
                    f"  {name}: {cost.polls} polls, {cost.poll_rows} answer rows, "
                    f"{cost.poll_time * 1000:.3f} ms, "
                    f"{cost.compensations} compensations",
                    file=out,
                )
        if args.top:
            print(file=out)
            print(f"top {args.top} by propagation time:", file=out)
            for name, value in profile.top(args.top):
                print(f"  {name}: {value * 1000:.3f} ms", file=out)
    # In --json mode stdout stays pure JSON; the verdict goes to stderr.
    verdict_out = sys.stderr if args.json else out
    mismatches = profile.reconcile(mediator.stats())
    if mismatches:
        for mismatch in mismatches:
            print(f"RECONCILIATION MISMATCH: {mismatch}", file=verdict_out)
        return 1
    print(
        "reconciliation: profile totals match MediatorStats counters exactly",
        file=verdict_out,
    )
    return 0


def _cmd_export_metrics(args, out) -> int:
    from repro.obs import NULL_TRACER, render_prometheus, run_scenario

    mediator = run_scenario(args.scenario, NULL_TRACER)
    snapshot = mediator.metrics.snapshot()
    if args.format == "prometheus":
        text = render_prometheus(snapshot)
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote metrics for {args.scenario!r} to {args.out}", file=out)
    else:
        print(text, end="", file=out)
    return 0


def _cmd_checkpoint(args, out) -> int:
    from repro.durability import DurabilityManager

    mediator = build_mediator_from_files(args.spec, args.data, args.backend, args.layout)
    manager = DurabilityManager(mediator, args.dir)
    try:
        ckpt_id = manager.checkpoint(full=True)
        print(
            f"checkpoint {ckpt_id} written to {args.dir} "
            f"({manager.stats.checkpoint_nodes} nodes, "
            f"{manager.stats.checkpoint_rows} rows)",
            file=out,
        )
    finally:
        manager.close()
    return 0


def _cmd_recover(args, out) -> int:
    from repro.durability import RecoveryManager
    from repro.generator import build_annotated_from_spec

    with open(args.spec) as handle:
        spec = parse_spec(handle.read())
    annotated = build_annotated_from_spec(spec)
    sources = make_sources(spec, initial=_load_data(args.data), backend=args.backend)
    result = RecoveryManager(args.dir).recover(
        annotated, sources, on_stale=args.on_stale
    )
    print(
        f"recovered from checkpoint {result.checkpoint_id}: "
        f"{result.wal_records_replayed} WAL records, "
        f"{result.replayed_txns} source transactions replayed",
        file=out,
    )
    if result.reinitialized_sources:
        print(
            "selectively reinitialized "
            + ", ".join(result.reinitialized_sources)
            + " (nodes: "
            + ", ".join(result.reinitialized_nodes)
            + ")",
            file=out,
        )
    if args.query:
        _print_relation(result.mediator.query(args.query), out)
    return 0


def _parse_crash_point(point: str) -> Tuple[int, str]:
    """Parse one ``--crash TXN:PHASE`` value, or raise a usage ReproError."""
    from repro.faults import CRASH_PHASES

    txn_text, sep, phase = point.partition(":")
    if not sep or phase not in CRASH_PHASES:
        raise ReproError(
            f"--crash expects TXN:PHASE with PHASE one of "
            f"{', '.join(CRASH_PHASES)}; got {point!r}"
        )
    try:
        txn = int(txn_text)
    except ValueError:
        raise ReproError(
            f"--crash expects an integer transaction index; got {point!r}"
        ) from None
    return txn, phase


def _cmd_soak(args, out) -> int:
    from repro.soak import SoakConfig, run_soak, write_slo_report

    crash_points = tuple(_parse_crash_point(point) for point in args.crash or ())
    config = SoakConfig(
        sources=args.sources,
        seed=args.seed,
        steps=args.steps,
        checkpoint_every=args.checkpoint_every,
        staleness_bound=args.staleness_bound,
        crash_points=crash_points,
        durability_dir=args.durability_dir,
        shards=args.shards,
        layout=args.layout,
        replicas=args.replicas,
        sqlite_sources=args.sqlite_sources,
        telemetry_dir=args.telemetry_dir,
        telemetry_cadence=args.telemetry_cadence,
    )
    result = run_soak(config)
    if args.report:
        write_slo_report(result, args.report)
        print(f"freshness-SLO report written to {args.report}", file=out)
    stats = result.stats
    print(
        f"soak: {result.steps_run} steps over {config.sources} sources "
        f"(seed {config.seed}); final membership {len(result.final_members)}",
        file=out,
    )
    print(
        f"  churn: {stats.attaches} attaches ({stats.backfill_rows} backfill rows), "
        f"{stats.detaches} detaches, {stats.outages} outages, "
        f"{stats.updates_applied} source updates",
        file=out,
    )
    print(
        f"  network: {stats.messages_sent} sent, {stats.messages_delivered} delivered, "
        f"{stats.messages_dropped} dropped, {stats.retransmissions} retransmitted, "
        f"{stats.duplicates} duplicated",
        file=out,
    )
    print(
        f"  durability: {stats.crashes} crashes, {stats.recoveries} recoveries; "
        f"{stats.convergence_checks} convergence checkpoints",
        file=out,
    )
    worst = max(result.worst_staleness.values(), default=0.0)
    print(
        f"  freshness: worst tagged staleness {worst:.1f} steps "
        f"(bound {config.staleness_bound:.1f})",
        file=out,
    )
    if config.replicas > 0:
        worst_lag = max(result.replica_worst_lag.values(), default=0.0)
        print(
            f"  replication: {config.replicas} replicas, "
            f"{result.metrics.get('replication.records_shipped', 0):.0f} records "
            f"shipped, {result.metrics.get('replication.replica_resyncs', 0):.0f} "
            f"resyncs ({stats.replica_rebuilds} fleet rebuilds); "
            f"worst replica lag {worst_lag:.1f} steps",
            file=out,
        )
    if result.telemetry_dir:
        print(
            f"  telemetry: metrics.jsonl, trace.jsonl, profile.json in "
            f"{result.telemetry_dir}; {len(result.alerts)} burn-rate alerts",
            file=out,
        )
        for alert in result.alerts:
            print(
                f"  BURN-RATE ALERT: step {alert.step:.0f} source {alert.source} "
                f"staleness {alert.staleness:.1f}/{alert.bound:.1f} "
                f"(fast {alert.fast_burn:.2f}, slow {alert.slow_burn:.2f})",
                file=out,
            )
    for violation in result.convergence_violations:
        print(f"  CONVERGENCE VIOLATION: {violation}", file=out)
    for violation in result.slo_violations:
        print(f"  SLO VIOLATION: {violation}", file=out)
    if result.ok:
        print("  zero convergence violations, freshness SLO held", file=out)
        return 0
    return 1


def _cmd_repl(args, out) -> int:
    mediator = build_mediator_from_files(args.spec, args.data, args.backend, args.layout)
    print("squirrel mediator ready; \\vdp \\stats \\refresh \\insert \\delete \\quit", file=out)
    while True:
        try:
            line = input("squirrel> ").strip()
        except EOFError:
            break
        if not line:
            continue
        try:
            if not _repl_command(mediator, line, out):
                break
        except ReproError as exc:
            print(f"  error: {exc}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro", description="Squirrel integration mediators"
    )
    parser.add_argument("--data", help="JSON file with initial source data")
    parser.add_argument(
        "--backend", choices=("memory", "sqlite"), default="memory",
        help="source database backend",
    )
    parser.add_argument(
        "--layout", choices=("row", "columnar"), default="row",
        help="node-repository storage layout (columnar = struct-of-arrays)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_describe = subparsers.add_parser("describe", help="show the annotated VDP")
    p_describe.add_argument("spec")

    p_query = subparsers.add_parser("query", help="run one query")
    p_query.add_argument("spec")
    p_query.add_argument("expression")

    p_repl = subparsers.add_parser("repl", help="interactive session")
    p_repl.add_argument("spec")

    from repro.obs.harness import scenario_names

    p_trace = subparsers.add_parser(
        "trace", help="run a canned scenario with tracing on"
    )
    p_trace.add_argument("scenario", choices=scenario_names())
    p_trace.add_argument("--out", help="export the trace as JSONL to this path")
    p_trace.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation of the exported trace",
    )
    p_trace.add_argument(
        "--no-provenance", action="store_true",
        help="disable delta provenance tracking",
    )
    p_trace.add_argument(
        "--quiet", action="store_true", help="suppress the span-tree rendering"
    )

    p_stats = subparsers.add_parser(
        "stats", help="run a canned scenario and print its metrics snapshot"
    )
    p_stats.add_argument("scenario", choices=scenario_names())

    p_profile = subparsers.add_parser(
        "profile",
        help="run a canned scenario under the cost profiler and print the "
        "per-node cost table (totals reconcile exactly with MediatorStats)",
    )
    p_profile.add_argument(
        "--scenario", default="figure1",
        choices=["figure1"] + scenario_names(),
        help="scenario to profile (figure1 = the ex21 Figure 1 workload)",
    )
    p_profile.add_argument(
        "--json", action="store_true",
        help="emit the full CostProfile as JSON instead of the table",
    )
    p_profile.add_argument(
        "--top", type=int, default=0, metavar="K",
        help="also print the K most expensive nodes by propagation time",
    )

    p_export = subparsers.add_parser(
        "export-metrics",
        help="run a canned scenario and export its metrics snapshot",
    )
    p_export.add_argument("scenario", choices=scenario_names())
    p_export.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (Prometheus text exposition or JSON)",
    )
    p_export.add_argument("--out", help="write to this path instead of stdout")

    p_ckpt = subparsers.add_parser(
        "checkpoint", help="deploy a mediator and write a durable checkpoint"
    )
    p_ckpt.add_argument("spec")
    p_ckpt.add_argument("--dir", required=True, help="durability directory")

    p_recover = subparsers.add_parser(
        "recover", help="recover a mediator from a durability directory"
    )
    p_recover.add_argument("spec")
    p_recover.add_argument("--dir", required=True, help="durability directory")
    p_recover.add_argument(
        "--on-stale", dest="on_stale", choices=("reinit", "raise"), default="reinit",
        help="when a source log no longer reaches the saved cursor: "
        "selectively reinitialize it (default) or fail",
    )
    p_recover.add_argument("--query", help="run one query against the recovered state")

    p_soak = subparsers.add_parser(
        "soak", help="run a seeded churn & soak workload with convergence checks"
    )
    p_soak.add_argument("--sources", type=int, default=50, help="federation size")
    p_soak.add_argument("--seed", type=int, default=0, help="scenario seed")
    p_soak.add_argument("--steps", type=int, default=40, help="schedule length")
    p_soak.add_argument(
        "--checkpoint-every", type=int, default=10, dest="checkpoint_every",
        help="convergence-checkpoint cadence (steps)",
    )
    p_soak.add_argument(
        "--staleness-bound", type=float, default=15.0, dest="staleness_bound",
        help="freshness-SLO bound in steps (see docs/scenarios.md)",
    )
    p_soak.add_argument(
        "--crash", action="append", metavar="TXN:PHASE",
        help="inject a crash at committed transaction TXN in PHASE "
        "(post-wal-append, torn-wal, mid-checkpoint); repeatable",
    )
    p_soak.add_argument(
        "--durability-dir", dest="durability_dir",
        help="durability directory (default: a temp dir when --crash is given)",
    )
    p_soak.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition node repositories into N shards and run the "
        "IUP's linear rule firings in parallel (1 = serial)",
    )
    p_soak.add_argument(
        "--replicas", type=int, default=0,
        help="attach N WAL-shipped read replicas (implies durability); each "
        "is lag-SLO monitored and checked replica ≡ primary at every "
        "convergence checkpoint",
    )
    p_soak.add_argument(
        "--sqlite-sources", dest="sqlite_sources", type=int, default=None,
        help="back the first N members with SQLite instead of memory "
        "(default: 1 when --replicas is set, else 0)",
    )
    p_soak.add_argument("--report", help="write the freshness-SLO report JSON here")
    p_soak.add_argument(
        "--telemetry-dir", dest="telemetry_dir",
        help="stream continuous telemetry (metrics.jsonl, trace.jsonl, "
        "profile.json) into this directory, with live burn-rate alerting "
        "on the freshness SLO",
    )
    p_soak.add_argument(
        "--telemetry-cadence", dest="telemetry_cadence", type=int, default=1,
        help="steps between metrics snapshots in the telemetry stream",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "describe":
            return _cmd_describe(args, out)
        if args.command == "query":
            return _cmd_query(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "stats":
            return _cmd_stats(args, out)
        if args.command == "profile":
            return _cmd_profile(args, out)
        if args.command == "export-metrics":
            return _cmd_export_metrics(args, out)
        if args.command == "checkpoint":
            return _cmd_checkpoint(args, out)
        if args.command == "recover":
            return _cmd_recover(args, out)
        if args.command == "soak":
            return _cmd_soak(args, out)
        return _cmd_repl(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
