"""Plain-text reporting for the benchmark harness.

Every benchmark prints its result as a table via :func:`render_table`, in
the same rows/series structure the corresponding paper artifact uses, plus
a one-line "shape" statement (who wins, by what factor) via
:func:`shape_line`.  Keeping this in the library (rather than in each
benchmark file) makes the EXPERIMENTS.md tables regenerable verbatim.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

__all__ = ["render_table", "shape_line", "format_value"]


def format_value(value: Any) -> str:
    """Human formatting: floats to 3 significant-ish digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    formatted = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in formatted)) if formatted else len(col)
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    lines.append("=" * max(len(title), sum(widths) + 3 * (len(columns) - 1)))
    lines.append(title)
    lines.append("-" * max(len(title), sum(widths) + 3 * (len(columns) - 1)))
    lines.append("   ".join(col.ljust(w) for col, w in zip(columns, widths)))
    for row in formatted:
        lines.append("   ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    lines.append("")
    return "\n".join(lines)


def shape_line(claim: str, holds: bool, detail: str = "") -> str:
    """A one-line verdict on whether the paper's qualitative shape held."""
    status = "HOLDS" if holds else "DIVERGES"
    suffix = f" ({detail})" if detail else ""
    return f"shape[{status}]: {claim}{suffix}"
