"""Parameter-sweep driver for benchmarks.

A :class:`Sweep` runs one measurement function over a parameter grid and
collects rows; benchmarks use it so every table/figure regeneration is a
declarative grid rather than hand-rolled loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

__all__ = ["Sweep", "grid"]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """The cross product of named parameter axes, as dicts."""
    names = list(axes)
    combos = itertools.product(*(axes[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class Sweep:
    """Runs ``measure(params) -> row dict`` over a list of parameter dicts."""

    measure: Callable[[Dict[str, Any]], Dict[str, Any]]

    def run(self, points: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Measure every point; each result row includes its parameters."""
        rows: List[Dict[str, Any]] = []
        for params in points:
            result = self.measure(dict(params))
            row = dict(params)
            row.update(result)
            rows.append(row)
        return rows

    @staticmethod
    def to_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str]) -> List[List[Any]]:
        """Project result rows onto an ordered column list."""
        return [[row.get(col, "") for col in columns] for row in rows]
