"""Benchmark harness utilities: table rendering and parameter sweeps."""

from repro.bench.reporting import format_value, render_table, shape_line
from repro.bench.sweep import Sweep, grid

__all__ = ["render_table", "shape_line", "format_value", "Sweep", "grid"]
