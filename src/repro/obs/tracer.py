"""Structured tracing for the mediator stack.

A :class:`Tracer` records a tree of **spans** (timed, nested phases of
work: an update transaction, a VAP poll batch, a query evaluation) and
point-in-time **events** hanging off the active span (one rule firing, a
cache verdict, a dropped message).  The taxonomy is closed —
:mod:`repro.obs.export` ships the authoritative name lists and the JSONL
validator rejects anything outside them — so traces stay machine-checkable
as the system grows.

Design constraints, in order:

* **Disabled must be free.**  Every instrumentation site in the hot path
  is either a single ``tracer.enabled`` attribute check or a call that
  short-circuits on the same check before touching arguments.  The
  disabled-mode cost is measured (not assumed) by
  ``benchmarks/bench_obs_overhead.py``.
* **Deterministic under the simulator.**  The clock is injectable: pass a
  simulated :class:`~repro.sim.clock.Clock`'s ``lambda: clock.now`` (the
  runtime driver does) and identical runs produce byte-identical traces.
  Span/event ids are a plain counter, never wall-clock derived.
* **Thread-tolerant.**  Record appends take a lock (VAP poll workers run
  concurrently); the *span stack* is deliberately not thread-local —
  worker threads never open spans themselves, the VAP instead reports
  per-source timings after the gather and the tracer backfills completed
  spans via :meth:`Tracer.add_completed_span`.
* **Streamable.**  Consumers that fold records incrementally (the cost
  profiler, a telemetry pipeline) register via :meth:`Tracer.add_sink`
  and receive each record once it is *complete*: events and backfilled
  spans immediately, context-managed spans when they exit.  Sinks are
  invoked outside the record lock.  A tracer created with
  ``retain=False`` feeds sinks without accumulating ``_records`` —
  bounded memory for profile-only runs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.provenance import ProvenanceTracker

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class Span:
    """One entered span; also its own context manager."""

    __slots__ = ("tracer", "record")

    def __init__(self, tracer: "Tracer", record: Dict[str, Any]):
        self.tracer = tracer
        self.record = record

    @property
    def id(self) -> int:
        return self.record["id"]

    @property
    def name(self) -> str:
        return self.record["name"]

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to this span (merged into ``attrs``)."""
        self.record["attrs"].update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._exit_span(self, error=exc is not None)
        return False


class _NullSpan:
    """The shared no-op span: every disabled-tracer call lands here."""

    __slots__ = ()
    id = 0
    name = ""

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and events for one mediator (or one workload run).

    ``enabled=False`` (the production default — see :data:`NULL_TRACER`)
    turns every method into a constant-time no-op.  ``clock`` is any
    zero-argument callable returning a monotone float; it defaults to
    ``time.perf_counter`` and is typically replaced by a simulated clock.
    ``provenance=True`` additionally activates the per-transaction delta
    provenance machinery (:class:`~repro.obs.provenance.ProvenanceTracker`),
    which the IUP consults to attribute node deltas to source transactions.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        provenance: bool = False,
        retain: bool = True,
    ):
        self.enabled = enabled
        self.clock = clock if clock is not None else time.perf_counter
        self.provenance = ProvenanceTracker(enabled=enabled and provenance)
        self.retain = retain
        self._records: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callable fed every *completed* record (span records
        on exit, events immediately).  No-op registration on a disabled
        tracer is allowed but the sink will never fire."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Unregister a previously added sink (ignores unknown sinks)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _notify(self, record: Dict[str, Any]) -> None:
        # Called outside the lock: sinks may inspect the tracer freely.
        for sink in self._sinks:
            sink(record)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        with self._lock:
            record = {
                "type": "span",
                "id": self._next_id,
                "parent": self._stack[-1] if self._stack else None,
                "name": name,
                "start": self.clock(),
                "end": None,
                "attrs": dict(attrs),
            }
            self._next_id += 1
            if self.retain:
                self._records.append(record)
            self._stack.append(record["id"])
        return Span(self, record)

    def _exit_span(self, span: Span, error: bool = False) -> None:
        with self._lock:
            span.record["end"] = self.clock()
            if error:
                span.record["attrs"].setdefault("error", True)
            # Pop through to this span: tolerate a caller forgetting to
            # close an inner span rather than corrupting the whole tree.
            while self._stack:
                top = self._stack.pop()
                if top == span.record["id"]:
                    break
        if self._sinks:
            self._notify(span.record)

    def add_completed_span(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> None:
        """Record a span measured elsewhere (e.g. inside a poll worker
        thread), parented under the currently active span."""
        if not self.enabled:
            return
        with self._lock:
            record = {
                "type": "span",
                "id": self._next_id,
                "parent": self._stack[-1] if self._stack else None,
                "name": name,
                "start": start,
                "end": end,
                "attrs": dict(attrs),
            }
            self._next_id += 1
            if self.retain:
                self._records.append(record)
        if self._sinks:
            self._notify(record)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the currently active span."""
        if not self.enabled:
            return
        with self._lock:
            record = {
                "type": "event",
                "id": self._next_id,
                "span": self._stack[-1] if self._stack else None,
                "name": name,
                "time": self.clock(),
                "attrs": dict(attrs),
            }
            if self.retain:
                self._records.append(record)
            self._next_id += 1
        if self._sinks:
            self._notify(record)

    # ------------------------------------------------------------------
    # Provenance façade
    # ------------------------------------------------------------------
    def provenance_of(self, node: str):
        """The origin set (``frozenset`` of
        :class:`~repro.obs.provenance.TxnOrigin`) recorded for ``node``'s
        most recent delta — empty when the node never changed or
        provenance tracking is off."""
        return self.provenance.origins_of(node)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """A snapshot copy of every record, in creation order."""
        with self._lock:
            return [dict(r) for r in self._records]

    def record_count(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        """Drop all records (span ids keep counting — ids stay unique)."""
        with self._lock:
            self._records.clear()
            self._stack.clear()

    def span_tree(self) -> List[Dict[str, Any]]:
        """The records as a forest: each span dict gains ``children``
        (sub-spans, in order) and ``events`` (its direct events)."""
        roots: List[Dict[str, Any]] = []
        spans: Dict[int, Dict[str, Any]] = {}
        for record in self.records():
            if record["type"] == "span":
                record["children"] = []
                record["events"] = []
                spans[record["id"]] = record
                parent = spans.get(record["parent"])
                (parent["children"] if parent else roots).append(record)
            else:
                parent = spans.get(record["span"])
                if parent is not None:
                    parent["events"].append(record)
                else:
                    roots.append(record)
        return roots


#: The shared disabled tracer every component defaults to — one instance,
#: so the "is tracing on?" check is a plain attribute read with no
#: allocation anywhere on the default path.
NULL_TRACER = Tracer(enabled=False)
