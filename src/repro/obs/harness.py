"""Canned traced scenarios: one call → a populated tracer.

The CLI's ``repro trace`` subcommand and the trace integration tests both
need the same thing — a deployed mediator with tracing (and provenance)
enabled, driven through a representative workload that exercises every
span family: view initialization, a materialized-only query, a
virtual-attribute query (VDP walk, polls, temp construction, cache
verdicts), source updates flowing through an update transaction (rule
firings with delta sizes, cache invalidation), and a post-update re-query.

Each scenario is deterministic: fixed seeds, fixed update rows, and — for
workloads over the fault-injecting simulator — the simulated clock, so two
runs produce identical traces (modulo wall-clock timestamps for the
in-process scenarios; record structure and attributes are identical).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.obs.tracer import Tracer

__all__ = ["SCENARIOS", "run_scenario", "scenario_names"]


def _run_figure1(example: str, tracer: Tracer):
    from repro.deltas import SetDelta
    from repro.relalg import row
    from repro.workloads.scenarios import figure1_mediator

    mediator, sources = figure1_mediator(example, tracer=tracer)
    # Materialized-only probe: under ex21 everything is materialized; under
    # ex22/ex23 the stored projection of T still answers narrow queries.
    mediator.query_relation("T", attrs=["r1", "s1"])
    # Full-width query: touches virtual attributes under ex22/ex23.
    mediator.query_relation("T")
    # Two source transactions (one per source) → one update transaction
    # carrying two origins, then a re-query over the refreshed view.
    d_r = SetDelta()
    d_r.insert("R", row(r1=9001, r2=5, r3=77, r4=100))
    sources["db1"].execute(d_r)
    d_s = SetDelta()
    d_s.insert("S", row(s1=5, s2=888, s3=10))
    sources["db2"].execute(d_s)
    mediator.refresh()
    mediator.query_relation("T")
    return mediator


def _run_union(tracer: Tracer):
    from repro.deltas import SetDelta
    from repro.relalg import row
    from repro.workloads.scenarios import union_mediator

    mediator, sources = union_mediator(
        overrides={"east_p": "[o^v, c^v, a^v]"}, tracer=tracer
    )
    mediator.query_relation("all_orders")
    delta = SetDelta()
    delta.insert("orders_east", row(oid=9000, cust=3, amount=500))
    sources["east"].execute(delta)
    mediator.refresh()
    mediator.query_relation("all_orders")
    return mediator


def _run_figure4(tracer: Tracer):
    from repro.deltas import SetDelta
    from repro.relalg import row
    from repro.workloads.scenarios import figure4_mediator

    mediator, sources = figure4_mediator("paper", tracer=tracer)
    mediator.query_relation("G")
    mediator.query_relation("E")
    delta = SetDelta()
    delta.insert("A", row(a1=9000, a2=1))
    sources["dbA"].execute(delta)
    mediator.refresh()
    mediator.query_relation("E")
    return mediator


def _run_faults(tracer: Tracer):
    """The Figure-1 environment over faulty channels: drops, duplicates,
    retransmissions, and an outage window all land in the trace."""
    import random

    from repro.core import annotate
    from repro.faults import ChannelFaults, FaultPlan, OutageWindow
    from repro.runtime.driver import SimulatedEnvironment
    from repro.sim import EnvironmentDelays
    from repro.workloads import (
        FIGURE1_ANNOTATIONS,
        UpdateStream,
        choice_of,
        figure1_sources,
        figure1_vdp,
        uniform_int,
    )

    plan = FaultPlan(
        seed=5,
        channels={
            "db1": ChannelFaults(
                drop_rate=0.3,
                duplicate_rate=0.3,
                outages=(OutageWindow(30.0, 40.0),),
            )
        },
        fault_free_after_attempt=2,
    )
    env = SimulatedEnvironment(
        annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"]),
        figure1_sources(r_rows=40, s_rows=20, seed=7),
        EnvironmentDelays.uniform(
            ["db1", "db2"], ann_delay=0.5, comm_delay=1.0, u_hold_delay_med=5.0
        ),
        fault_plan=plan,
        record_updates=False,
        tracer=tracer,
    )
    stream = UpdateStream(
        env.sources["db1"],
        "R",
        policies={
            "r2": uniform_int(0, 20),
            "r3": uniform_int(0, 100),
            "r4": choice_of([100, 200]),
        },
        rng=random.Random(3),
    )
    for t in (2.0, 12.0, 22.0, 32.0, 47.0):
        env.schedule_action(t, stream.step, "workload step")
    env.schedule_query(55.0, record=False)
    env.run_until(80.0)
    return env.mediator


SCENARIOS: Dict[str, Tuple[str, Callable[[Tracer], object]]] = {
    "ex21": (
        "Figure 1 under Example 2.1 (fully materialized support)",
        lambda tracer: _run_figure1("ex21", tracer),
    ),
    "ex22": (
        "Figure 1 under Example 2.2 (virtual auxiliary R')",
        lambda tracer: _run_figure1("ex22", tracer),
    ),
    "ex23": (
        "Figure 1 under Example 2.3 (hybrid T, key-based construction)",
        lambda tracer: _run_figure1("ex23", tracer),
    ),
    "union": (
        "Union-shaped VDP with one virtual branch",
        _run_union,
    ),
    "fig4": (
        "Figure 4 / Example 5.1 (difference node, arithmetic join)",
        _run_figure4,
    ),
    "faults": (
        "Figure 1 over faulty channels (drops, duplicates, outage)",
        _run_faults,
    ),
}


def scenario_names():
    """The canned scenario names, sorted."""
    return sorted(SCENARIOS)


def run_scenario(name: str, tracer: Tracer):
    """Drive one canned scenario against ``tracer``; returns the mediator."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    return SCENARIOS[name][1](tracer)
