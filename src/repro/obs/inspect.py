"""Human-readable rendering of traces and metrics (the inspector half of
``repro trace`` / ``repro stats``)."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.obs.tracer import Tracer

__all__ = ["render_span_tree", "render_metrics", "render_metrics_diff"]


def _fmt_attrs(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        elif isinstance(value, (list, tuple)):
            value = "[" + ",".join(str(v) for v in value) + "]"
        parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def _render_node(node: Dict[str, Any], depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    if node["type"] == "span":
        start, end = node["start"], node["end"]
        duration = "" if end is None else f" [{(end - start) * 1000:.3f}ms]"
        lines.append(f"{indent}{node['name']}{duration}{_fmt_attrs(node['attrs'])}")
        for event in node["events"]:
            lines.append(f"{indent}  · {event['name']}{_fmt_attrs(event['attrs'])}")
        for child in node["children"]:
            _render_node(child, depth + 1, lines)
    else:
        lines.append(f"{indent}· {node['name']}{_fmt_attrs(node['attrs'])}")


def render_span_tree(tracer: Tracer) -> str:
    """The tracer's records as an indented span/event tree."""
    lines: List[str] = []
    for root in tracer.span_tree():
        _render_node(root, 0, lines)
    return "\n".join(lines)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, Mapping) and "count" in value:
        # Histogram summary: count/sum/min/max + deterministic quantiles.
        parts = []
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            if key in value:
                reading = value[key]
                parts.append(
                    f"{key}={reading:.6g}" if isinstance(reading, float) else f"{key}={reading}"
                )
        return " ".join(parts)
    return str(value)


def render_metrics(snapshot: Mapping[str, Any]) -> str:
    """One metrics snapshot as aligned ``name value`` lines."""
    if not snapshot:
        return "(no metrics)"
    width = max(len(name) for name in snapshot)
    return "\n".join(
        f"{name.ljust(width)}  {_fmt_value(snapshot[name])}" for name in sorted(snapshot)
    )


def render_metrics_diff(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    include_zero: bool = False,
) -> str:
    """What changed between two snapshots, as ``name before -> after (+d)``.

    Non-numeric metrics (histogram summaries) are shown whenever their
    representation changed.
    """
    lines: List[str] = []
    names = sorted(set(before) | set(after))
    width = max((len(n) for n in names), default=0)
    for name in names:
        b, a = before.get(name, 0), after.get(name, 0)
        if isinstance(b, (int, float)) and isinstance(a, (int, float)):
            delta = a - b
            if delta == 0 and not include_zero:
                continue
            sign = "+" if delta >= 0 else ""
            lines.append(
                f"{name.ljust(width)}  {_fmt_value(b)} -> {_fmt_value(a)} ({sign}{_fmt_value(delta)})"
            )
        elif b != a:
            lines.append(f"{name.ljust(width)}  {b!r} -> {a!r}")
    return "\n".join(lines) if lines else "(no change)"
