"""The metrics registry: one registration point for every counter.

Before this module, each component kept a hand-written stats dataclass and
``SquirrelMediator.stats()`` copied 20+ fields across by hand — adding a
counter meant editing three places and silently losing it in any you
forgot.  The registry inverts that: components register their stats
dataclasses (every numeric field becomes a ``component.field`` metric) or
ad-hoc instruments, and snapshots/resets are derived, never enumerated.

Three instrument kinds cover the repo's needs:

* :class:`Counter` — monotone count, ``inc()``;
* :class:`Gauge` — settable level, ``set()``;
* :class:`Histogram` — observation stream with count/sum/min/max plus
  deterministic p50/p95/p99 from fixed log-width buckets (no sampling).

Each instrument supports **labeled children** (``counter.labels("R")``)
that roll up into the parent — per-relation or per-source breakdowns
without pre-declaring the label space.

:func:`dataclass_counter_items` / :func:`reset_dataclass_counters` /
:func:`merge_dataclass_counters` are the ``dataclasses.fields``-driven
helpers the stats dataclasses now build on, so a newly added field can
never be silently dropped from a merge, a reset, or a snapshot
(regression-pinned in ``tests/obs/test_metrics.py``).
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "dataclass_counter_items",
    "reset_dataclass_counters",
    "merge_dataclass_counters",
]


# ---------------------------------------------------------------------------
# dataclasses.fields-driven helpers for the existing stats dataclasses
# ---------------------------------------------------------------------------
def dataclass_counter_items(obj: Any) -> List[Tuple[str, Any]]:
    """``(field_name, value)`` for every numeric field of a stats dataclass."""
    out = []
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((f.name, value))
    return out


def reset_dataclass_counters(obj: Any) -> None:
    """Reset every field of a stats dataclass to its declared default."""
    for f in dataclasses.fields(obj):
        if f.default is not dataclasses.MISSING:
            setattr(obj, f.name, f.default)
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            setattr(obj, f.name, f.default_factory())  # type: ignore[misc]


def merge_dataclass_counters(obj: Any, other: Any) -> None:
    """Add every numeric field of ``other`` into ``obj`` — derived from
    ``dataclasses.fields``, so new counters can never be silently dropped."""
    for f in dataclasses.fields(obj):
        value = getattr(other, f.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            setattr(obj, f.name, getattr(obj, f.name) + value)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class _Instrument:
    """Shared labeled-children machinery."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._children: Dict[str, "_Instrument"] = {}

    def labels(self, label: str):
        """The labeled child instrument (created on first use)."""
        child = self._children.get(label)
        if child is None:
            child = type(self)(f"{self.name}{{{label}}}", self.description)
            self._children[label] = child
        return child

    def child_items(self) -> List[Tuple[str, "_Instrument"]]:
        return sorted(self._children.items())

    def reset(self) -> None:
        for child in self._children.values():
            child.reset()


class Counter(_Instrument):
    """A monotone counter; ``inc`` on a labeled child also bumps the parent."""

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self.value = 0
        self._parent: Optional["Counter"] = None

    def inc(self, amount: int = 1) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.value += amount

    def labels(self, label: str) -> "Counter":
        child = super().labels(label)
        child._parent = self  # type: ignore[attr-defined]
        return child  # type: ignore[return-value]

    def reset(self) -> None:
        self.value = 0
        super().reset()

    def snapshot(self) -> Any:
        return self.value


class Gauge(_Instrument):
    """A settable level (e.g. stored rows, live cache entries)."""

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0
        super().reset()

    def snapshot(self) -> Any:
        return self.value


class Histogram(_Instrument):
    """An observation stream summarized as count/sum/min/max + quantiles.

    Quantiles are **deterministic**: every observation lands in a fixed
    log-width bucket (:data:`BUCKETS_PER_DECADE` per power of ten — no
    sampling, no reservoirs), so identical runs produce identical
    p50/p95/p99 readings.  A quantile answer is the upper bound of the
    bucket holding that rank, clamped to the observed min/max; the
    relative error is bounded by the bucket width
    (``10**(1/BUCKETS_PER_DECADE) - 1``, about 17%).  Non-positive
    observations share one underflow bucket reported as ``0.0``.
    """

    #: Fixed log-bucket resolution shared by every histogram.
    BUCKETS_PER_DECADE = 16

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._underflow = 0  # observations <= 0

    def _bucket_index(self, value: float) -> int:
        return math.floor(math.log10(value) * self.BUCKETS_PER_DECADE)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > 0:
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            self._underflow += 1

    def quantile(self, q: float) -> Optional[float]:
        """The deterministic ``q``-quantile (``0 < q <= 1``) of every
        observation so far, or ``None`` before the first observation."""
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._underflow:
            return 0.0
        seen = self._underflow
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                upper = 10.0 ** ((index + 1) / self.BUCKETS_PER_DECADE)
                # Clamp to the observed range: a single-value stream
                # reports that exact value at every quantile.
                assert self.min is not None and self.max is not None
                return min(max(upper, self.min), self.max)
        return self.max

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._buckets.clear()
        self._underflow = 0
        super().reset()

    def snapshot(self) -> Any:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class MetricsRegistry:
    """Every metric of one mediator, under dotted names.

    Three registration forms:

    * :meth:`register` — an explicit instrument;
    * :meth:`register_stats` — a stats *dataclass*: each numeric field is
      exported live as ``prefix.field`` and reset through the object's own
      ``reset()`` (or field defaults);
    * :meth:`register_callable` — a derived reading (e.g. total stored
      rows), excluded from resets.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._stats_objects: Dict[str, Any] = {}
        self._callables: Dict[str, Callable[[], Any]] = {}

    # -- registration ---------------------------------------------------
    def register(self, instrument: _Instrument) -> _Instrument:
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        existing = self._instruments.get(name)
        if isinstance(existing, Counter):
            return existing
        return self.register(Counter(name, description))  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        existing = self._instruments.get(name)
        if isinstance(existing, Gauge):
            return existing
        return self.register(Gauge(name, description))  # type: ignore[return-value]

    def histogram(self, name: str, description: str = "") -> Histogram:
        existing = self._instruments.get(name)
        if isinstance(existing, Histogram):
            return existing
        return self.register(Histogram(name, description))  # type: ignore[return-value]

    def register_stats(self, prefix: str, stats: Any) -> None:
        """Expose every numeric field of a stats dataclass as
        ``prefix.field`` (read live at snapshot time)."""
        self._stats_objects[prefix] = stats

    def register_callable(self, name: str, fn: Callable[[], Any]) -> None:
        self._callables[name] = fn

    # -- reading --------------------------------------------------------
    def value(self, name: str) -> Any:
        """One metric's current value by dotted name."""
        return self.snapshot()[name]

    def snapshot(self) -> Dict[str, Any]:
        """Every metric, flat ``{dotted.name: value}`` (labeled children as
        ``name{label}``).  Deterministically ordered."""
        out: Dict[str, Any] = {}
        for prefix in sorted(self._stats_objects):
            for field_name, value in dataclass_counter_items(
                self._stats_objects[prefix]
            ):
                out[f"{prefix}.{field_name}"] = value
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            out[name] = instrument.snapshot()
            for _, child in instrument.child_items():
                out[child.name] = child.snapshot()
        for name in sorted(self._callables):
            out[name] = self._callables[name]()
        return out

    def snapshot_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument and stats object (derived callables are
        readings of live state and are left alone)."""
        for instrument in self._instruments.values():
            instrument.reset()
        for stats in self._stats_objects.values():
            if hasattr(stats, "reset"):
                stats.reset()
            else:
                reset_dataclass_counters(stats)
