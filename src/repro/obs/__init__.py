"""Unified observability for the mediator stack (spans, provenance, metrics).

* :mod:`repro.obs.tracer` — nested spans + point events, no-op when
  disabled, deterministic under the simulated clock;
* :mod:`repro.obs.provenance` — ``(source, txn_id)`` delta provenance
  carried through rule firing, queryable via ``Tracer.provenance_of``;
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry the
  stats dataclasses are re-derived from;
* :mod:`repro.obs.export` — JSONL export validated against the
  checked-in ``trace_schema.json``;
* :mod:`repro.obs.profile` — the cost profiler: folds the trace stream
  into per-node/per-edge/per-source cost profiles (the annotation
  advisor's input), reconciled exactly against the stats counters;
* :mod:`repro.obs.telemetry` — continuous telemetry: JSONL metrics
  streams, the Prometheus text renderer, and freshness burn-rate
  alerting for long soak runs;
* :mod:`repro.obs.inspect` — the pretty-printers behind ``repro trace``
  and ``repro stats``.

See ``docs/observability.md`` for the span taxonomy and provenance
semantics.
"""

from repro.obs.export import (
    SCHEMA_PATH,
    TraceValidationError,
    export_jsonl,
    load_schema,
    validate_jsonl_file,
    validate_records,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dataclass_counter_items,
    merge_dataclass_counters,
    reset_dataclass_counters,
)
from repro.obs.harness import SCENARIOS, run_scenario, scenario_names
from repro.obs.inspect import render_metrics, render_metrics_diff, render_span_tree
from repro.obs.profile import CostProfile, CostProfiler
from repro.obs.provenance import ProvenanceTracker, TxnOrigin, origin_labels
from repro.obs.telemetry import (
    BurnRateAlert,
    FreshnessBurnRateMonitor,
    MetricsStream,
    TelemetryPipeline,
    render_prometheus,
    validate_telemetry_file,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "TxnOrigin",
    "ProvenanceTracker",
    "origin_labels",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "dataclass_counter_items",
    "merge_dataclass_counters",
    "reset_dataclass_counters",
    "SCHEMA_PATH",
    "load_schema",
    "export_jsonl",
    "validate_records",
    "validate_jsonl_file",
    "TraceValidationError",
    "CostProfile",
    "CostProfiler",
    "BurnRateAlert",
    "FreshnessBurnRateMonitor",
    "MetricsStream",
    "TelemetryPipeline",
    "render_prometheus",
    "validate_telemetry_file",
    "SCENARIOS",
    "run_scenario",
    "scenario_names",
    "render_span_tree",
    "render_metrics",
    "render_metrics_diff",
]
