"""Per-node cost profiles folded live from the tracer stream.

The tracer (PR 4) records *what happened*; this module aggregates those
spans and events into *who is expensive* — the attributed, queryable cost
data the ROADMAP's cost-based annotation advisor needs (the paper's §8
leaves "how to choose m/v annotations" open; any advisor starts from
exactly this profile).

:class:`CostProfiler` is a tracer **sink** (see
:meth:`~repro.obs.tracer.Tracer.add_sink`): it receives each record once
complete and folds it incrementally, so profiling long soak runs does not
require retaining the trace (pair it with ``Tracer(retain=False)`` for
bounded memory).  The folded result is a :class:`CostProfile`:

* **per node** — propagation time and rows (``process_node`` spans,
  ``rule_fire`` / ``node_apply`` events), shard-local work split out from
  ``shard_worker`` spans, exchange reads, VAP construct/poll rows and
  cache verdicts per virtual subtree, and query latency per exported
  node (a query's duration is attributed to every relation it references,
  captured from its ``query_classify`` event);
* **per edge** — rule firings with delta/contribution row flow, shard
  task time, exchange reads;
* **per source** — poll count/time and pre-compensation answer rows
  (``poll_answer`` events, emitted exactly where ``VAPStats.polled_rows``
  accrues), compensations;
* **durability** — WAL bytes per transaction, checkpoint time/rows.

Every count the profiler folds mirrors a counter some stats dataclass
increments at the same site, so :meth:`CostProfile.reconcile` can check
the attribution against :class:`~repro.core.mediator.MediatorStats`
**exactly** — any drift between the trace taxonomy and the counters is a
bug, not noise (property-tested in ``tests/obs/test_profile.py``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer

__all__ = [
    "NodeCost",
    "EdgeCost",
    "SourceCost",
    "QueryCost",
    "TxnCost",
    "DurabilityCost",
    "CostProfile",
    "CostProfiler",
]


def _num_dict(obj: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, dict):
            out[f.name] = {str(k): v for k, v in sorted(value.items())}
        else:
            out[f.name] = value
    return out


@dataclasses.dataclass
class NodeCost:
    """Everything one VDP node cost during the profiled window."""

    # IUP propagation (materialized side)
    process_time: float = 0.0      # process_node span seconds
    processed: int = 0             # process_node spans (≡ nodes_processed)
    fires_out: int = 0             # rule firings out of this node
    delta_rows_out: int = 0        # smashed delta rows fired out
    contribution_rows_in: int = 0  # rows contributed *into* this node
    applies: int = 0               # node_apply events
    apply_rows: int = 0            # delta rows applied to this node
    shard_time: float = 0.0        # shard_worker span seconds (sum over tasks)
    shard_tasks: int = 0
    shard_work: int = 0            # evaluator work units inside shard tasks
    exchange_reads: int = 0        # cross-shard sibling reads out of this node
    # VAP construction (virtual side)
    constructs: int = 0            # temp_built events
    construct_rows: int = 0        # rows in built temporaries
    polls: int = 0                 # poll answers feeding this relation
    poll_rows: int = 0             # pre-compensation answer rows
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    key_based: int = 0             # key-based construction plans chosen
    # QP (demand side)
    queries: int = 0               # queries referencing this relation
    query_time: float = 0.0        # referencing queries' latency seconds

    @property
    def propagation_time(self) -> float:
        return self.process_time + self.shard_time

    @property
    def propagation_rows(self) -> int:
        return self.apply_rows


@dataclasses.dataclass
class EdgeCost:
    """Cost of one rulebase edge (child -> parent)."""

    fires: int = 0
    delta_rows: int = 0
    contribution_rows: int = 0
    shard_tasks: int = 0
    shard_time: float = 0.0
    shard_work: int = 0
    exchange_reads: int = 0


@dataclasses.dataclass
class SourceCost:
    """Cost attributed to one source."""

    polls: int = 0              # poll_answer events (≡ VAPStats.polls share)
    poll_rows: int = 0          # pre-compensation answer rows
    poll_time: float = 0.0      # poll span seconds (batch-level, per source)
    poll_spans: int = 0
    compensations: int = 0


@dataclasses.dataclass
class QueryCost:
    """Aggregate query-path cost."""

    count: int = 0
    time: float = 0.0
    rows: int = 0
    virtual: int = 0
    materialized_only: int = 0


@dataclasses.dataclass
class TxnCost:
    """Aggregate update-transaction cost."""

    count: int = 0
    time: float = 0.0


@dataclasses.dataclass
class DurabilityCost:
    """WAL / checkpoint cost, with per-transaction WAL attribution."""

    wal_records: int = 0
    wal_bytes: int = 0
    checkpoints: int = 0
    checkpoint_time: float = 0.0
    checkpoint_rows: int = 0
    wal_bytes_by_txn: Dict[int, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class CostProfile:
    """The folded profile: stable shape, deterministic serialization.

    ``nodes`` / ``edges`` / ``sources`` key their cost records by node
    name, ``(child, parent)`` pair, and source name.  The aggregate
    sections (``queries``, ``txns``, ``durability``) carry the costs that
    have no single owning node.  Counters reconcile exactly with
    :class:`~repro.core.mediator.MediatorStats` — see :meth:`reconcile`.
    """

    nodes: Dict[str, NodeCost] = dataclasses.field(default_factory=dict)
    edges: Dict[Tuple[str, str], EdgeCost] = dataclasses.field(default_factory=dict)
    sources: Dict[str, SourceCost] = dataclasses.field(default_factory=dict)
    queries: QueryCost = dataclasses.field(default_factory=QueryCost)
    txns: TxnCost = dataclasses.field(default_factory=TxnCost)
    durability: DurabilityCost = dataclasses.field(default_factory=DurabilityCost)
    cache_subsumption_hits: int = 0
    compensations: int = 0

    # -- derived totals (the reconciliation currency) -------------------
    def total(self, field: str) -> float:
        """Sum one :class:`NodeCost` field (or property) over all nodes."""
        return sum(getattr(cost, field) for cost in self.nodes.values())

    def source_total(self, field: str) -> float:
        return sum(getattr(cost, field) for cost in self.sources.values())

    # -- ranking --------------------------------------------------------
    def top(self, k: int, key: str = "propagation_time") -> List[Tuple[str, float]]:
        """The ``k`` most expensive nodes by ``key`` (a :class:`NodeCost`
        field or property), costliest first; name-ordered ties."""
        ranked = sorted(
            ((name, getattr(cost, key)) for name, cost in self.nodes.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    # -- the advisor's input --------------------------------------------
    def attribute_costs(self) -> Dict[str, Dict[str, float]]:
        """Per-node attributed costs in the annotation advisor's input
        shape: ``{node: {cost_kind: value}}``, keys sorted, one row per
        node ever observed.  This is the contract the future cost-based
        advisor consumes — keep it stable."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.nodes):
            cost = self.nodes[name]
            out[name] = {
                "cache_hits": cost.cache_hits,
                "cache_misses": cost.cache_misses,
                "construct_rows": cost.construct_rows,
                "constructs": cost.constructs,
                "exchange_reads": cost.exchange_reads,
                "poll_rows": cost.poll_rows,
                "propagation_rows": cost.propagation_rows,
                "propagation_time": cost.propagation_time,
                "queries": cost.queries,
                "query_time": cost.query_time,
                "rule_fires": cost.fires_out,
            }
        return out

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict with deterministic key order."""
        return {
            "kind": "cost-profile",
            "version": 1,
            "nodes": {name: _num_dict(self.nodes[name]) for name in sorted(self.nodes)},
            "edges": {
                f"{child}->{parent}": _num_dict(self.edges[(child, parent)])
                for child, parent in sorted(self.edges)
            },
            "sources": {
                name: _num_dict(self.sources[name]) for name in sorted(self.sources)
            },
            "queries": _num_dict(self.queries),
            "txns": _num_dict(self.txns),
            "durability": _num_dict(self.durability),
            "cache_subsumption_hits": self.cache_subsumption_hits,
            "compensations": self.compensations,
            "attribute_costs": self.attribute_costs(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- reconciliation -------------------------------------------------
    def reconcile(self, stats: Any) -> List[str]:
        """Check the profile's totals against a
        :class:`~repro.core.mediator.MediatorStats` snapshot taken over
        the same window.  Returns mismatch descriptions (empty = exact).

        Every checked pair is emitted at the *same instrumentation site*
        as the counter it mirrors, so equality is exact, not approximate.
        """
        checks: List[Tuple[str, float, float]] = [
            ("rules_fired", self.total("fires_out"), stats.rules_fired),
            ("update_transactions", self.txns.count, stats.update_transactions),
            ("queries", self.queries.count, stats.queries),
            ("virtual_queries", self.queries.virtual, stats.virtual_queries),
            (
                "materialized_only_queries",
                self.queries.materialized_only,
                stats.materialized_only_queries,
            ),
            ("polls", self.source_total("polls"), stats.polls),
            ("polled_rows", self.source_total("poll_rows"), stats.polled_rows),
            ("compensations", self.compensations, stats.compensations),
            (
                "key_based_constructions",
                self.total("key_based"),
                stats.key_based_constructions,
            ),
            ("cache_hits", self.total("cache_hits"), stats.cache_hits),
            ("cache_misses", self.total("cache_misses"), stats.cache_misses),
            (
                "cache_invalidations",
                self.total("cache_invalidations"),
                stats.cache_invalidations,
            ),
            ("subsumption_hits", self.cache_subsumption_hits, stats.subsumption_hits),
            ("shard_tasks", self.total("shard_tasks"), stats.shard_tasks),
            ("exchange_reads", self.total("exchange_reads"), stats.exchange_reads),
        ]
        mismatches = []
        for name, profiled, counted in checks:
            if profiled != counted:
                mismatches.append(
                    f"{name}: profile folded {profiled!r}, stats counted {counted!r}"
                )
        return mismatches


class CostProfiler:
    """Folds the tracer's record stream into a :class:`CostProfile`.

    Attach to an **enabled** tracer before the profiled work runs::

        tracer = Tracer(enabled=True)         # retain=False for soaks
        profiler = CostProfiler()
        profiler.attach(tracer)
        ...                                   # run the workload
        profile = profiler.profile()

    The sink runs on whichever thread completes the record — in this
    codebase that is always the main thread (workers never touch the
    tracer), so the fold needs no locking.
    """

    def __init__(self) -> None:
        self._profile = CostProfile()
        # query span id -> refs captured from its query_classify event
        # (the event arrives while the span is still open).
        self._pending_query_refs: Dict[int, List[str]] = {}
        self._span_handlers: Dict[str, Callable[[Dict[str, Any], float], None]] = {
            "process_node": self._span_process_node,
            "shard_worker": self._span_shard_worker,
            "poll": self._span_poll,
            "query": self._span_query,
            "update_txn": self._span_update_txn,
            "checkpoint": self._span_checkpoint,
        }
        self._event_handlers: Dict[str, Callable[[Dict[str, Any]], None]] = {
            "rule_fire": self._event_rule_fire,
            "node_apply": self._event_node_apply,
            "exchange": self._event_exchange,
            "poll_answer": self._event_poll_answer,
            "temp_built": self._event_temp_built,
            "cache_hit": self._event_cache_hit,
            "cache_miss": self._event_cache_miss,
            "cache_invalidate": self._event_cache_invalidate,
            "compensation": self._event_compensation,
            "key_based": self._event_key_based,
            "query_classify": self._event_query_classify,
            "wal_append": self._event_wal_append,
            "checkpoint_complete": self._event_checkpoint_complete,
        }

    # -- wiring ---------------------------------------------------------
    def attach(self, tracer: Tracer) -> "CostProfiler":
        tracer.add_sink(self.on_record)
        return self

    def detach(self, tracer: Tracer) -> None:
        tracer.remove_sink(self.on_record)

    def profile(self) -> CostProfile:
        """The live folded profile (keeps accumulating while attached)."""
        return self._profile

    def reset(self) -> None:
        self._profile = CostProfile()
        self._pending_query_refs.clear()

    # -- the sink -------------------------------------------------------
    def on_record(self, record: Dict[str, Any]) -> None:
        name = record["name"]
        if record["type"] == "span":
            handler = self._span_handlers.get(name)
            if handler is not None:
                end = record["end"]
                duration = (end - record["start"]) if end is not None else 0.0
                handler(record, duration)
        else:
            handler = self._event_handlers.get(name)
            if handler is not None:
                handler(record)

    # -- helpers --------------------------------------------------------
    def _node(self, name: str) -> NodeCost:
        cost = self._profile.nodes.get(name)
        if cost is None:
            cost = self._profile.nodes[name] = NodeCost()
        return cost

    def _edge(self, child: str, parent: str) -> EdgeCost:
        key = (child, parent)
        cost = self._profile.edges.get(key)
        if cost is None:
            cost = self._profile.edges[key] = EdgeCost()
        return cost

    def _source(self, name: str) -> SourceCost:
        cost = self._profile.sources.get(name)
        if cost is None:
            cost = self._profile.sources[name] = SourceCost()
        return cost

    # -- span folds -----------------------------------------------------
    def _span_process_node(self, record: Dict[str, Any], duration: float) -> None:
        cost = self._node(record["attrs"]["node"])
        cost.processed += 1
        cost.process_time += duration

    def _span_shard_worker(self, record: Dict[str, Any], duration: float) -> None:
        attrs = record["attrs"]
        work = attrs.get("work", 0)
        node = self._node(attrs["node"])
        node.shard_tasks += 1
        node.shard_time += duration
        node.shard_work += work
        edge = self._edge(attrs["node"], attrs["parent"])
        edge.shard_tasks += 1
        edge.shard_time += duration
        edge.shard_work += work

    def _span_poll(self, record: Dict[str, Any], duration: float) -> None:
        cost = self._source(record["attrs"]["source"])
        cost.poll_spans += 1
        cost.poll_time += duration

    def _span_query(self, record: Dict[str, Any], duration: float) -> None:
        attrs = record["attrs"]
        agg = self._profile.queries
        agg.count += 1
        agg.time += duration
        agg.rows += attrs.get("rows", 0)
        if attrs.get("virtual"):
            agg.virtual += 1
        else:
            agg.materialized_only += 1
        for ref in self._pending_query_refs.pop(record["id"], []):
            node = self._node(ref)
            node.queries += 1
            node.query_time += duration

    def _span_update_txn(self, record: Dict[str, Any], duration: float) -> None:
        self._profile.txns.count += 1
        self._profile.txns.time += duration

    def _span_checkpoint(self, record: Dict[str, Any], duration: float) -> None:
        self._profile.durability.checkpoints += 1
        self._profile.durability.checkpoint_time += duration

    # -- event folds ----------------------------------------------------
    def _event_rule_fire(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        child, parent = attrs["child"], attrs["parent"]
        delta, contribution = attrs["delta_size"], attrs["contribution_size"]
        node = self._node(child)
        node.fires_out += 1
        node.delta_rows_out += delta
        self._node(parent).contribution_rows_in += contribution
        edge = self._edge(child, parent)
        edge.fires += 1
        edge.delta_rows += delta
        edge.contribution_rows += contribution

    def _event_node_apply(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        node = self._node(attrs["node"])
        node.applies += 1
        node.apply_rows += attrs["delta_size"]

    def _event_exchange(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        reads = len(attrs.get("siblings", ()))
        self._node(attrs["child"]).exchange_reads += reads
        self._edge(attrs["child"], attrs["parent"]).exchange_reads += reads

    def _event_poll_answer(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        source = self._source(attrs["source"])
        source.polls += 1
        source.poll_rows += attrs["rows"]
        node = self._node(attrs["relation"])
        node.polls += 1
        node.poll_rows += attrs["rows"]

    def _event_temp_built(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        node = self._node(attrs["relation"])
        node.constructs += 1
        node.construct_rows += attrs["rows"]

    def _event_cache_hit(self, record: Dict[str, Any]) -> None:
        self._node(record["attrs"]["relation"]).cache_hits += 1
        if record["attrs"].get("subsumption"):
            self._profile.cache_subsumption_hits += 1

    def _event_cache_miss(self, record: Dict[str, Any]) -> None:
        self._node(record["attrs"]["relation"]).cache_misses += 1

    def _event_cache_invalidate(self, record: Dict[str, Any]) -> None:
        self._node(record["attrs"]["relation"]).cache_invalidations += 1

    def _event_compensation(self, record: Dict[str, Any]) -> None:
        self._profile.compensations += 1
        self._source(record["attrs"]["source"]).compensations += 1

    def _event_key_based(self, record: Dict[str, Any]) -> None:
        self._node(record["attrs"]["relation"]).key_based += 1

    def _event_query_classify(self, record: Dict[str, Any]) -> None:
        span_id = record["span"]
        if span_id is not None:
            self._pending_query_refs[span_id] = list(record["attrs"].get("refs", ()))

    def _event_wal_append(self, record: Dict[str, Any]) -> None:
        attrs = record["attrs"]
        dur = self._profile.durability
        dur.wal_records += 1
        dur.wal_bytes += attrs["bytes"]
        txn = attrs["txn"]
        dur.wal_bytes_by_txn[txn] = dur.wal_bytes_by_txn.get(txn, 0) + attrs["bytes"]

    def _event_checkpoint_complete(self, record: Dict[str, Any]) -> None:
        self._profile.durability.checkpoint_rows += record["attrs"]["rows"]
