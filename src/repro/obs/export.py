"""JSONL trace export and schema validation.

One trace record per line.  The record shapes and the **closed** span/event
taxonomy live in the checked-in ``trace_schema.json`` next to this module —
the CI trace-smoke step re-validates every exported trace against it, so an
instrumentation site emitting a name outside the taxonomy fails the build
instead of silently growing an undocumented vocabulary.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.tracer import Tracer

__all__ = [
    "SCHEMA_PATH",
    "load_schema",
    "export_jsonl",
    "validate_records",
    "validate_jsonl_file",
    "TraceValidationError",
]

SCHEMA_PATH = pathlib.Path(__file__).resolve().parent / "trace_schema.json"


class TraceValidationError(ValueError):
    """An exported trace violates the checked-in schema."""


def load_schema(path: Optional[Union[str, pathlib.Path]] = None) -> Dict[str, Any]:
    """The trace schema (the checked-in one unless ``path`` overrides)."""
    with open(path or SCHEMA_PATH) as handle:
        return json.load(handle)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of attr values to JSON-stable forms."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    return repr(value)


def export_jsonl(
    tracer: Tracer, path: Union[str, pathlib.Path], validate: bool = True
) -> int:
    """Write every record of ``tracer`` to ``path`` as JSONL.

    Returns the number of records written.  With ``validate`` (the
    default) the records are schema-checked *before* the file is written,
    so an invalid trace never lands on disk.
    """
    records = []
    for record in tracer.records():
        record = dict(record)
        record["attrs"] = _jsonable(record.get("attrs", {}))
        records.append(record)
    if validate:
        validate_records(records)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def validate_records(
    records: Iterable[Mapping[str, Any]],
    schema: Optional[Dict[str, Any]] = None,
) -> int:
    """Check records against the schema; returns how many were checked.

    Raises :class:`TraceValidationError` on: unknown record types, unknown
    span/event names, missing required fields, unfinished spans, duplicate
    ids, or parent/span references to ids that never appeared as spans.
    """
    schema = schema or load_schema()
    span_names = set(schema["span_names"])
    event_names = set(schema["event_names"])
    span_required = schema["span_required_fields"]
    event_required = schema["event_required_fields"]
    seen_ids: set = set()
    span_ids: set = set()
    checked = 0
    for i, record in enumerate(records):
        where = f"record {i}"
        rtype = record.get("type")
        if rtype not in schema["record_types"]:
            raise TraceValidationError(f"{where}: unknown record type {rtype!r}")
        required = span_required if rtype == "span" else event_required
        for key in required:
            if key not in record:
                raise TraceValidationError(f"{where}: missing field {key!r}")
        rid = record["id"]
        if rid in seen_ids:
            raise TraceValidationError(f"{where}: duplicate id {rid}")
        seen_ids.add(rid)
        name = record["name"]
        if rtype == "span":
            if name not in span_names:
                raise TraceValidationError(f"{where}: unknown span name {name!r}")
            if record["end"] is None:
                raise TraceValidationError(f"{where}: span {name!r} never ended")
            parent = record["parent"]
            if parent is not None and parent not in span_ids:
                raise TraceValidationError(
                    f"{where}: span {name!r} references unknown parent {parent}"
                )
            span_ids.add(rid)
        else:
            if name not in event_names:
                raise TraceValidationError(f"{where}: unknown event name {name!r}")
            span = record["span"]
            if span is not None and span not in span_ids:
                raise TraceValidationError(
                    f"{where}: event {name!r} references unknown span {span}"
                )
        checked += 1
    return checked


def validate_jsonl_file(
    path: Union[str, pathlib.Path], schema: Optional[Dict[str, Any]] = None
) -> int:
    """Validate one exported JSONL file; returns the record count."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TraceValidationError(f"line {line_no}: invalid JSON: {exc}")
    return validate_records(records, schema)
