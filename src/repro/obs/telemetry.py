"""Continuous telemetry: metrics streams, Prometheus export, burn-rate SLOs.

PR 6's soak harness proved the Theorem 7.2 freshness bound but reported it
only *terminally* — a production operator (or the future annotation
advisor) needs the live signal.  This module adds the three missing
pieces:

* :func:`render_prometheus` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot in the Prometheus text exposition format (histograms become
  ``summary`` families with deterministic p50/p95/p99 quantile series);
* :class:`MetricsStream` / :class:`TelemetryPipeline` — cadence-driven
  JSONL metrics snapshots (one ``{"kind": "metrics", ...}`` record per
  sample) with the record shapes checked into ``trace_schema.json`` and
  enforced by :func:`validate_telemetry_file`;
* :class:`FreshnessBurnRateMonitor` — the SRE-style multi-window alerting
  rule over the staleness/bound **burn ratio**: a fast window catches
  "it is on fire now", a slow window refuses to page on a single spike;
  an alert fires on the rising edge of (fast ≥ fast_threshold AND
  slow ≥ slow_threshold) per source and re-arms when the fast window
  clears.  Alerts land in the stream (``{"kind": "alert", ...}``) *and*
  in the trace (``slo_alert`` events), not only in the terminal report.

Everything is step-indexed (the soak harness's logical clock), never
wall-clock, so fixed-seed runs emit byte-identical streams.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.export import TraceValidationError, load_schema
from repro.obs.metrics import Histogram
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "render_prometheus",
    "MetricsStream",
    "BurnRateAlert",
    "FreshnessBurnRateMonitor",
    "TelemetryPipeline",
    "validate_telemetry_file",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _prom_name(name: str, namespace: str) -> str:
    cleaned = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _split_label(name: str) -> Tuple[str, Optional[str]]:
    # Registry children are exported as ``base{label}``.
    if name.endswith("}") and "{" in name:
        base, label = name[:-1].split("{", 1)
        return base, label
    return name, None


def render_prometheus(
    snapshot: Mapping[str, Any], namespace: str = "repro"
) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    Scalar readings render as untyped samples; histogram snapshots render
    as a ``summary`` family: ``_count`` / ``_sum`` plus one series per
    deterministic quantile, e.g.::

        # TYPE repro_durability_checkpoint_ms summary
        repro_durability_checkpoint_ms{quantile="0.5"} 1.33
        repro_durability_checkpoint_ms_count 4
        repro_durability_checkpoint_ms_sum 5.2

    Labeled children (``name{label}``) become ``{label="..."}`` series of
    the parent family.  Output is deterministically ordered.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        base, label = _split_label(name)
        prom = _prom_name(base, namespace)
        suffix = f'{{label="{label}"}}' if label is not None else ""
        if isinstance(value, Mapping):  # histogram summary
            if not suffix:
                lines.append(f"# TYPE {prom} summary")
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                reading = value.get(q_key)
                if reading is None:
                    continue
                if label is not None:
                    lines.append(
                        f'{prom}{{label="{label}",quantile="{q}"}} {reading}'
                    )
                else:
                    lines.append(f'{prom}{{quantile="{q}"}} {reading}')
            lines.append(f"{prom}_count{suffix} {value.get('count', 0)}")
            lines.append(f"{prom}_sum{suffix} {value.get('sum', 0.0)}")
        elif isinstance(value, bool):
            lines.append(f"{prom}{suffix} {int(value)}")
        elif isinstance(value, (int, float)):
            lines.append(f"{prom}{suffix} {value}")
        # non-numeric readings (lists, strings) have no Prometheus form
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSONL metrics stream
# ---------------------------------------------------------------------------
class MetricsStream:
    """Appends schema-checked telemetry records to one JSONL file.

    Record kinds (see ``telemetry_record_kinds`` in ``trace_schema.json``):
    ``meta`` (stream header), ``metrics`` (one registry snapshot),
    ``alert`` (one burn-rate alert), ``profile`` (a final cost profile).
    ``seq`` increases strictly; ``step`` is the producer's logical clock.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self._seq = 0
        self._handle = open(self.path, "w")

    def write(self, kind: str, step: float, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": kind, "seq": self._seq, "step": step}
        record.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        return record

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def validate_telemetry_file(
    path: Union[str, pathlib.Path], schema: Optional[Dict[str, Any]] = None
) -> int:
    """Validate one metrics-stream JSONL file; returns the record count.

    Checks every line against the ``telemetry_*`` section of the trace
    schema: known ``kind``, required fields present, strictly increasing
    ``seq``, and a ``meta`` header first.
    """
    schema = schema or load_schema()
    kinds = set(schema["telemetry_record_kinds"])
    required = schema["telemetry_required_fields"]
    count = 0
    last_seq = -1
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"line {line_no}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceValidationError(f"{where}: invalid JSON: {exc}")
            kind = record.get("kind")
            if kind not in kinds:
                raise TraceValidationError(f"{where}: unknown record kind {kind!r}")
            if count == 0 and kind != "meta":
                raise TraceValidationError(
                    f"{where}: stream must start with a 'meta' record, got {kind!r}"
                )
            for key in required[kind]:
                if key not in record:
                    raise TraceValidationError(
                        f"{where}: {kind!r} record missing field {key!r}"
                    )
            seq = record["seq"]
            if seq <= last_seq:
                raise TraceValidationError(
                    f"{where}: seq {seq} not greater than previous {last_seq}"
                )
            last_seq = seq
            count += 1
    return count


# ---------------------------------------------------------------------------
# Burn-rate alerting over the freshness SLO
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BurnRateAlert:
    """One rising-edge burn-rate alert for one source."""

    step: float
    source: str
    staleness: float
    bound: float
    fast_burn: float   # mean staleness/bound over the fast window
    slow_burn: float   # mean staleness/bound over the slow window

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FreshnessBurnRateMonitor:
    """Multi-window burn-rate alerting on the Theorem 7.2 staleness bound.

    Each step the harness reports every announcing source's *adjusted*
    staleness (the same value the SLO check uses).  The burn ratio is
    ``staleness / bound`` — 1.0 means the freshness budget is fully
    burned.  A source alerts when its fast-window mean burn reaches
    ``fast_threshold`` **and** its slow-window mean burn reaches
    ``slow_threshold`` (the classic two-window rule: the slow window
    filters one-step spikes, the fast window guarantees the condition is
    still live).  Alerts are rising-edge per source: no re-alert until
    the fast window drops back below threshold.
    """

    def __init__(
        self,
        bound: float,
        fast_window: int = 5,
        slow_window: int = 20,
        fast_threshold: float = 1.0,
        slow_threshold: float = 0.5,
    ):
        if bound <= 0:
            raise ValueError(f"staleness bound must be positive, got {bound!r}")
        if fast_window < 1 or slow_window < fast_window:
            raise ValueError(
                f"need 1 <= fast_window <= slow_window, got "
                f"{fast_window} / {slow_window}"
            )
        self.bound = bound
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.fast_threshold = fast_threshold
        self.slow_threshold = slow_threshold
        self._burns: Dict[str, Deque[float]] = {}
        self._firing: Dict[str, bool] = {}
        self.alerts: List[BurnRateAlert] = []

    def observe(self, step: float, staleness: Mapping[str, float]) -> List[BurnRateAlert]:
        """Fold one step's per-source staleness readings; returns the
        alerts that fired *this* step (also appended to :attr:`alerts`)."""
        fired: List[BurnRateAlert] = []
        for source in sorted(staleness):
            value = staleness[source]
            window = self._burns.get(source)
            if window is None:
                window = self._burns[source] = deque(maxlen=self.slow_window)
            window.append(value / self.bound)
            fast = list(window)[-self.fast_window:]
            fast_burn = sum(fast) / len(fast)
            slow_burn = sum(window) / len(window)
            hot = (
                fast_burn >= self.fast_threshold
                and slow_burn >= self.slow_threshold
            )
            if hot and not self._firing.get(source, False):
                alert = BurnRateAlert(
                    step=step,
                    source=source,
                    staleness=value,
                    bound=self.bound,
                    fast_burn=fast_burn,
                    slow_burn=slow_burn,
                )
                fired.append(alert)
                self.alerts.append(alert)
            if fast_burn < self.fast_threshold:
                self._firing[source] = False
            elif hot:
                self._firing[source] = True
        # Sources that stopped reporting (detached) re-arm implicitly: their
        # windows stay frozen and a re-attach starts a fresh edge.
        return fired


# ---------------------------------------------------------------------------
# The pipeline: cadence snapshots + live SLO monitoring over one stream
# ---------------------------------------------------------------------------
class TelemetryPipeline:
    """Continuous telemetry for one long-running (soak) workload.

    Wires a :class:`MetricsStream`, a :class:`FreshnessBurnRateMonitor`,
    and a snapshot provider together:

    * every ``cadence`` steps, one ``metrics`` record holding the merged
      registry snapshot (plus the pipeline's own ``telemetry.*``
      instruments: a staleness histogram and an alert counter);
    * every step, the burn-rate monitor folds the adjusted staleness map;
      rising-edge alerts are written to the stream immediately and
      mirrored as ``slo_alert`` trace events.

    ``snapshot_fn`` is a zero-argument callable returning the *current*
    registry snapshot — a callable, not a registry, because the soak
    harness replaces the mediator (and its registry) on crash recovery
    while the pipeline must keep streaming.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        snapshot_fn: Callable[[], Mapping[str, Any]],
        bound: float,
        cadence: int = 1,
        monitor: Optional[FreshnessBurnRateMonitor] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if cadence < 1:
            raise ValueError(f"cadence must be >= 1, got {cadence!r}")
        self.stream = MetricsStream(path)
        self.snapshot_fn = snapshot_fn
        self.cadence = cadence
        self.monitor = monitor or FreshnessBurnRateMonitor(bound)
        self.tracer = tracer
        self.staleness_histogram = Histogram(
            "telemetry.staleness", "adjusted per-source staleness per step"
        )
        self._snapshots = 0
        self.stream.write(
            "meta", step=0, cadence=cadence, bound=self.monitor.bound
        )

    @property
    def alerts(self) -> List[BurnRateAlert]:
        return self.monitor.alerts

    def _merged_snapshot(self) -> Dict[str, Any]:
        merged = dict(self.snapshot_fn())
        merged["telemetry.staleness"] = self.staleness_histogram.snapshot()
        merged["telemetry.alerts"] = len(self.monitor.alerts)
        return merged

    def observe(self, step: float, staleness: Mapping[str, float]) -> List[BurnRateAlert]:
        """Fold one step: monitor the SLO, snapshot on cadence."""
        for source in sorted(staleness):
            self.staleness_histogram.observe(staleness[source])
        fired = self.monitor.observe(step, staleness)
        for alert in fired:
            self.stream.write("alert", **alert.as_dict())
            if self.tracer.enabled:
                self.tracer.event(
                    "slo_alert",
                    source=alert.source,
                    staleness=alert.staleness,
                    bound=alert.bound,
                    fast_burn=alert.fast_burn,
                    slow_burn=alert.slow_burn,
                )
        if int(step) % self.cadence == 0:
            self.snapshot(step)
        return fired

    def snapshot(self, step: float) -> Dict[str, Any]:
        """Write one ``metrics`` record now (also used for the final
        end-of-run sample)."""
        record = self.stream.write(
            "metrics", step=step, metrics=self._merged_snapshot()
        )
        self._snapshots += 1
        if self.tracer.enabled:
            self.tracer.event(
                "metrics_snapshot", step=step, seq=record["seq"]
            )
        return record

    def write_profile(self, step: float, profile_dict: Mapping[str, Any]) -> None:
        """Append a final ``profile`` record (a serialized CostProfile)."""
        self.stream.write("profile", step=step, profile=dict(profile_dict))

    def close(self, step: Optional[float] = None) -> None:
        """Final snapshot (unless ``step`` is None) and stream close."""
        if step is not None:
            self.snapshot(step)
        self.stream.close()
