"""Delta provenance: which source transactions caused which node deltas.

Every announcement the mediator enqueues is stamped with a monotone
``(source, txn_id)`` origin (:class:`TxnOrigin` — the update queue assigns
ids per source in arrival order).  During an update transaction the IUP
feeds this tracker:

1. :meth:`ProvenanceTracker.begin_transaction` receives, per updated leaf,
   the flushed entries' deltas *before* the net-accumulate fold — one
   sub-delta per origin.  Their bag-sum equals the folded delta
   (cancellation is just addition of signed counts), so attribution is
   exact at the leaves.
2. While firing the rule for an edge, the IUP re-fires the rule once per
   origin sub-delta against the same sibling catalog
   (:meth:`sub_deltas` → :meth:`record_contribution`).  For **linear**
   rules — bag SPJ/union edges whose compiled parts reference the child
   exactly once — the per-origin contributions sum to the joint
   contribution exactly (the delta computation is linear in the child
   delta against fixed siblings), so per-row signed counts per origin are
   exact at every bag node too.
3. Non-linear edges (self-joins, difference rules) and set-delta
   normalization break that decomposition; those record the contributing
   origins wholesale (:meth:`note_origins`) and flag the node
   **approximate** (:meth:`is_approx`) — the origin set is then an upper
   bound, never an omission.

Rows whose signed counts cancel *across* origins are deliberately kept:
they vanish from the node's actual delta, but excluding either origin
alone would have changed the node, so both belong in its origin set.  The
resulting contract — verified against from-scratch recompute by
``tests/properties/test_provenance_exact.py`` — is: for exact nodes,
``origins_of(node)`` equals the set of source transactions whose exclusion
changes the node's recomputed value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.deltas import AnyDelta, BagDelta, SetDelta

__all__ = ["TxnOrigin", "ProvenanceTracker"]


@dataclass(frozen=True, order=True)
class TxnOrigin:
    """One source transaction: the ``(source, txn_id)`` announcement stamp."""

    source: str
    txn_id: int

    @property
    def label(self) -> str:
        """The compact ``source#txn_id`` form used in trace events."""
        return f"{self.source}#{self.txn_id}"


def origin_labels(origins: Iterable[TxnOrigin]) -> List[str]:
    """Sorted ``source#txn`` labels — the JSON-friendly origin-set form."""
    return [o.label for o in sorted(origins)]


class ProvenanceTracker:
    """Per-(node, row, origin) signed-count bookkeeping for one mediator."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        # In-flight transaction state: node -> origin -> row -> signed count.
        self._counts: Dict[str, Dict[TxnOrigin, Dict[object, int]]] = {}
        # Origins attributed wholesale (approximate edges): node -> origins.
        self._forced: Dict[str, set] = {}
        self._approx: set = set()
        # Committed per-node results (last transaction that touched each).
        self._last_origins: Dict[str, FrozenSet[TxnOrigin]] = {}
        self._last_counts: Dict[str, Dict[TxnOrigin, Dict[object, int]]] = {}
        self._last_approx: set = set()

    # ------------------------------------------------------------------
    # Transaction lifecycle (driven by the IUP)
    # ------------------------------------------------------------------
    def begin_transaction(
        self, leaf_subs: Mapping[str, List[Tuple[TxnOrigin, BagDelta]]]
    ) -> None:
        """Start attribution for one update transaction.

        ``leaf_subs`` maps each updated leaf to its flushed entries'
        per-origin bag deltas, in arrival order.
        """
        if not self.enabled:
            return
        self._counts = {}
        self._forced = {}
        self._approx = set()
        for leaf, subs in leaf_subs.items():
            for origin, delta in subs:
                self.record_contribution(leaf, origin, delta)

    def record_contribution(
        self, node: str, origin: TxnOrigin, delta: AnyDelta
    ) -> None:
        """Attribute one origin's (sub-)delta contribution to ``node``."""
        if not self.enabled:
            return
        rows = self._counts.setdefault(node, {}).setdefault(origin, {})
        if isinstance(delta, SetDelta):
            for _, row, sign in delta.atoms():
                rows[row] = rows.get(row, 0) + sign
        else:
            for _, row, count in delta.entries():
                rows[row] = rows.get(row, 0) + count

    def note_origins(self, node: str, origins: Iterable[TxnOrigin]) -> None:
        """Attribute origins without per-row counts (approximate edges)."""
        if not self.enabled:
            return
        self._forced.setdefault(node, set()).update(origins)

    def mark_approx(self, node: str) -> None:
        """Flag ``node``'s origin set as an upper bound, not exact."""
        if self.enabled:
            self._approx.add(node)

    def sub_deltas(self, node: str) -> List[Tuple[TxnOrigin, BagDelta]]:
        """The node's in-flight delta split per origin (sorted by origin).

        Rows whose count for an origin nets to zero are omitted from that
        origin's sub-delta (they contribute nothing downstream) but stay in
        the provenance record.
        """
        out: List[Tuple[TxnOrigin, BagDelta]] = []
        for origin in sorted(self._counts.get(node, {})):
            delta = BagDelta()
            for row, count in self._counts[node][origin].items():
                if count != 0:
                    delta.add(node, row, count)
            if not delta.is_empty():
                out.append((origin, delta))
        return out

    def live_origins(self, node: str) -> FrozenSet[TxnOrigin]:
        """Origins attributed to ``node`` in the in-flight transaction."""
        found = {
            origin
            for origin, rows in self._counts.get(node, {}).items()
            if any(count != 0 for count in rows.values())
        }
        found.update(self._forced.get(node, ()))
        return frozenset(found)

    def live_nodes(self) -> List[str]:
        """Nodes with any in-flight attribution this transaction, sorted."""
        return sorted(set(self._counts) | set(self._forced))

    def live_approx(self, node: str) -> bool:
        """True when the in-flight attribution for ``node`` is approximate."""
        return node in self._approx

    def commit(self) -> None:
        """Seal the in-flight transaction: every node touched this
        transaction overwrites its committed record (untouched nodes keep
        the record of the last transaction that changed them)."""
        if not self.enabled:
            return
        for node in set(self._counts) | set(self._forced):
            self._last_origins[node] = self.live_origins(node)
            self._last_counts[node] = {
                origin: dict(rows)
                for origin, rows in self._counts.get(node, {}).items()
            }
            if node in self._approx:
                self._last_approx.add(node)
            else:
                self._last_approx.discard(node)
        self._counts = {}
        self._forced = {}
        self._approx = set()

    # ------------------------------------------------------------------
    # Queries (post-commit)
    # ------------------------------------------------------------------
    def origins_of(self, node: str) -> FrozenSet[TxnOrigin]:
        """Origin set of the last committed delta that touched ``node``."""
        return self._last_origins.get(node, frozenset())

    def row_counts(self, node: str) -> Dict[TxnOrigin, Dict[object, int]]:
        """Per-origin signed row counts behind :meth:`origins_of` (tests)."""
        return {
            origin: dict(rows)
            for origin, rows in self._last_counts.get(node, {}).items()
        }

    def is_approx(self, node: str) -> bool:
        """True when the node's committed origin set is an upper bound."""
        return node in self._last_approx

    def tracked_nodes(self) -> List[str]:
        """Nodes with a committed provenance record, sorted."""
        return sorted(self._last_origins)

    def clear(self) -> None:
        """Forget everything (view re-initialization)."""
        self._counts = {}
        self._forced = {}
        self._approx = set()
        self._last_origins.clear()
        self._last_counts.clear()
        self._last_approx.clear()
