"""Workloads: synthetic data, update streams, query mixes, paper scenarios."""

from repro.workloads.queries import QueryMix, QueryTemplate, attribute_profile
from repro.workloads.updates import UpdateStream, choice_of, constant, uniform_int
from repro.workloads.scenarios import (
    FIGURE1_ANNOTATIONS,
    chain_mediator,
    chain_schemas,
    figure1_mediator,
    figure1_schemas,
    figure1_sources,
    figure1_vdp,
    figure2_trace,
    figure4_mediator,
    figure4_schemas,
    figure4_sources,
    figure4_vdp,
    union_mediator,
    union_schemas,
    union_sources,
    union_vdp,
)

__all__ = [
    "FIGURE1_ANNOTATIONS",
    "figure1_mediator",
    "figure1_schemas",
    "figure1_sources",
    "figure1_vdp",
    "figure2_trace",
    "figure4_mediator",
    "figure4_schemas",
    "figure4_sources",
    "figure4_vdp",
    "chain_mediator",
    "chain_schemas",
    "union_mediator",
    "union_schemas",
    "union_sources",
    "union_vdp",
    "UpdateStream",
    "uniform_int",
    "choice_of",
    "constant",
    "QueryMix",
    "QueryTemplate",
    "attribute_profile",
]
