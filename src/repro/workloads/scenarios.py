"""The paper's running examples as ready-made scenarios.

* :func:`figure1_mediator` — Figure 1's VDP over ``R`` and ``S`` with the
  export ``T = π_{r1,r3,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S)`` and
  the three annotations of Examples 2.1 (fully materialized support),
  2.2 (virtual auxiliary ``R'``), and 2.3 (hybrid ``T``).
* :func:`figure4_mediator` — Figure 4 / Example 5.1's two-export VDP
  (``E`` with the arithmetic join condition, ``G`` a difference node) under
  the paper's suggested annotation.

Both build deterministic synthetic data from a seed, so tests and
benchmarks are reproducible.  (Figure 1's relation ``T`` is written
``π_{r1,s1,s2}`` in Example 2.1's text and ``π_{r1,r3,s1,s2}`` in the
figure caption; we follow the caption, which Example 2.3 requires —
``r3`` must be an attribute of ``T`` for its hybrid annotation.)
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple

from repro.core import AnnotatedVDP, SquirrelMediator, annotate, build_vdp
from repro.core.vdp import VDP
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import Attribute, RelationSchema
from repro.sources import MemorySource, SourceDatabase

__all__ = [
    "FIGURE1_ANNOTATIONS",
    "figure1_schemas",
    "figure1_sources",
    "figure1_vdp",
    "figure1_mediator",
    "figure2_trace",
    "chain_schemas",
    "chain_mediator",
    "union_schemas",
    "union_sources",
    "union_vdp",
    "union_mediator",
    "figure4_schemas",
    "figure4_sources",
    "figure4_vdp",
    "figure4_mediator",
]


# ---------------------------------------------------------------------------
# Figure 1 / Examples 2.1 - 2.3
# ---------------------------------------------------------------------------
def figure1_schemas() -> Dict[str, RelationSchema]:
    """Schemas of the two source relations ``R`` and ``S``."""
    return {
        "R": RelationSchema(
            "R",
            (
                Attribute("r1", "int"),
                Attribute("r2", "int"),
                Attribute("r3", "int"),
                Attribute("r4", "int"),
            ),
            key=("r1",),
        ),
        "S": RelationSchema(
            "S",
            (Attribute("s1", "int"), Attribute("s2", "int"), Attribute("s3", "int")),
            key=("s1",),
        ),
    }


def figure1_sources(
    r_rows: int = 200,
    s_rows: int = 60,
    seed: int = 7,
    join_domain: int = 50,
) -> Dict[str, SourceDatabase]:
    """Two in-memory sources populated with deterministic synthetic data.

    About half the ``R`` rows pass ``r4 = 100`` and half the ``S`` rows pass
    ``s3 < 50``, so the view stays non-trivially populated.
    """
    rng = random.Random(seed)
    schemas = figure1_schemas()
    r_values = [
        (
            i,                                  # r1: key
            rng.randrange(join_domain),         # r2: join attribute
            rng.randrange(1000),                # r3: payload
            100 if rng.random() < 0.5 else 200,  # r4: selection attribute
        )
        for i in range(r_rows)
    ]
    s_values = [
        (
            i,                        # s1: key / join attribute
            rng.randrange(1000),      # s2: payload
            rng.randrange(100),       # s3: selection attribute
        )
        for i in range(min(s_rows, join_domain))
    ]
    db1 = MemorySource("db1", [schemas["R"]], initial={"R": r_values})
    db2 = MemorySource("db2", [schemas["S"]], initial={"S": s_values})
    return {"db1": db1, "db2": db2}


def figure1_vdp() -> VDP:
    """The Figure 1 VDP: leaf-parents ``R_p``/``S_p`` under export ``T``."""
    schemas = figure1_schemas()
    return build_vdp(
        source_schemas=schemas,
        source_of={"R": "db1", "S": "db2"},
        views={
            "R_p": "project[r1, r2, r3](select[r4 = 100](R))",
            "S_p": "project[s1, s2](select[s3 < 50](S))",
            "T": "project[r1, r3, s1, s2](R_p join[r2 = s1] S_p)",
        },
        exports=["T"],
    )


FIGURE1_ANNOTATIONS: Dict[str, Dict[str, str]] = {
    # Example 2.1: everything materialized (fully materialized support).
    "ex21": {},
    # Example 2.2: the frequently-updated auxiliary R' kept virtual.
    "ex22": {"R_p": "[r1^v, r2^v, r3^v]"},
    # Example 2.3: hybrid T; both auxiliaries virtual.
    "ex23": {
        "T": "[r1^m, r3^v, s1^m, s2^v]",
        "R_p": "[r1^v, r2^v, r3^v]",
        "S_p": "[s1^v, s2^v]",
    },
}


def figure1_mediator(
    example: str = "ex21",
    sources: Optional[Mapping[str, SourceDatabase]] = None,
    seed: int = 7,
    eca_enabled: bool = True,
    key_based_enabled: bool = True,
    indexing_enabled: bool = True,
    vap_cache_enabled: bool = True,
    parallel_polls: bool = True,
    shards: int = 1,
    parallel_propagation: Optional[bool] = None,
    layout: str = "row",
    smash_enabled: bool = True,
    tracer: Tracer = NULL_TRACER,
    profiling_enabled: bool = False,
) -> Tuple[SquirrelMediator, Dict[str, SourceDatabase]]:
    """A deployed, initialized Figure-1 mediator under one of the paper's
    annotations (``"ex21"``, ``"ex22"``, ``"ex23"``)."""
    if example not in FIGURE1_ANNOTATIONS:
        raise ValueError(f"unknown example {example!r}; choose from {sorted(FIGURE1_ANNOTATIONS)}")
    sources = dict(sources) if sources else figure1_sources(seed=seed)
    annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS[example])
    mediator = SquirrelMediator(
        annotated,
        sources,
        eca_enabled=eca_enabled,
        key_based_enabled=key_based_enabled,
        indexing_enabled=indexing_enabled,
        vap_cache_enabled=vap_cache_enabled,
        parallel_polls=parallel_polls,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
        tracer=tracer,
        profiling_enabled=profiling_enabled,
    )
    mediator.initialize()
    return mediator, sources


# ---------------------------------------------------------------------------
# Parametric join chains ("VDPs can be of any size", Section 2)
# ---------------------------------------------------------------------------
def chain_schemas(depth: int) -> Dict[str, RelationSchema]:
    """``depth + 1`` source relations ``T0(k0, v0) ... Tn(kn, vn)``."""
    return {
        f"T{i}": RelationSchema(
            f"T{i}",
            (Attribute(f"k{i}", "int"), Attribute(f"v{i}", "int")),
            key=(f"k{i}",),
        )
        for i in range(depth + 1)
    }


def chain_mediator(
    depth: int,
    rows_per_source: int = 30,
    seed: int = 37,
    default_annotation: str = "m",
    shards: int = 1,
    parallel_propagation: Optional[bool] = None,
    layout: str = "row",
    smash_enabled: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> Tuple[SquirrelMediator, Dict[str, SourceDatabase]]:
    """A join chain of the given depth: ``Ni = N(i-1) ⋈_{v(i-1)=ki} Ti``.

    Each level's ``v`` values point into the next level's key domain, so an
    update at the bottom source propagates through every level to the
    export ``N<depth>``.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rng = random.Random(seed)
    schemas = chain_schemas(depth)
    sources: Dict[str, SourceDatabase] = {}
    for i in range(depth + 1):
        values = [(k, rng.randrange(rows_per_source)) for k in range(rows_per_source)]
        sources[f"db{i}"] = MemorySource(f"db{i}", [schemas[f"T{i}"]], initial={f"T{i}": values})

    views: Dict[str, str] = {"N1": "T0 join[v0 = k1] T1"}
    for i in range(2, depth + 1):
        views[f"N{i}"] = f"N{i - 1} join[v{i - 1} = k{i}] T{i}"
    vdp = build_vdp(
        source_schemas=schemas,
        source_of={f"T{i}": f"db{i}" for i in range(depth + 1)},
        views=views,
        exports=[f"N{depth}"],
    )
    mediator = SquirrelMediator(
        annotate(vdp, {}, default=default_annotation),
        sources,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
        tracer=tracer,
    )
    mediator.initialize()
    return mediator, sources


# ---------------------------------------------------------------------------
# Union scenario (Section 5.1 shape (c), union flavour)
# ---------------------------------------------------------------------------
def union_schemas() -> Dict[str, RelationSchema]:
    """Two regional order tables with identical shape."""
    cols = (
        Attribute("oid", "int"),
        Attribute("cust", "int"),
        Attribute("amount", "int"),
    )
    return {
        "orders_east": RelationSchema("orders_east", cols, key=("oid",)),
        "orders_west": RelationSchema("orders_west", cols, key=("oid",)),
    }


def union_sources(rows_per_region: int = 40, seed: int = 23) -> Dict[str, SourceDatabase]:
    """Two regional sources; east oids are even, west oids odd (disjoint)."""
    rng = random.Random(seed)
    schemas = union_schemas()
    east = [(2 * i, rng.randrange(10), rng.randrange(1000)) for i in range(rows_per_region)]
    west = [(2 * i + 1, rng.randrange(10), rng.randrange(1000)) for i in range(rows_per_region)]
    return {
        "east": MemorySource("east", [schemas["orders_east"]], initial={"orders_east": east}),
        "west": MemorySource("west", [schemas["orders_west"]], initial={"orders_west": west}),
    }


def union_vdp() -> VDP:
    """A union node over two regional leaf-parents: ``all_orders`` is the
    bag union of big orders from both regions (Section 5.1's union shape)."""
    schemas = union_schemas()
    return build_vdp(
        source_schemas=schemas,
        source_of={"orders_east": "east", "orders_west": "west"},
        views={
            "east_p": "rename[oid = o, cust = c, amount = a](select[amount > 100](orders_east))",
            "west_p": "rename[oid = o, cust = c, amount = a](select[amount > 100](orders_west))",
            "all_orders": "project[o, c, a](east_p) union project[o, c, a](west_p)",
        },
        exports=["all_orders"],
    )


def union_mediator(
    overrides: Optional[Mapping[str, str]] = None,
    seed: int = 23,
    shards: int = 1,
    parallel_propagation: Optional[bool] = None,
    layout: str = "row",
    smash_enabled: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> Tuple[SquirrelMediator, Dict[str, SourceDatabase]]:
    """A deployed union-scenario mediator (fully materialized by default)."""
    sources = union_sources(seed=seed)
    annotated = annotate(union_vdp(), dict(overrides or {}))
    mediator = SquirrelMediator(
        annotated,
        sources,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
        tracer=tracer,
    )
    mediator.initialize()
    return mediator, sources


# ---------------------------------------------------------------------------
# Figure 2 / Remark 3.1
# ---------------------------------------------------------------------------
def figure2_trace():
    """Figure 2's six-step scenario: pseudo-consistent but NOT consistent.

    One source ``db`` holds binary ``R``; the view is ``S = π_2(R)`` (set
    semantics).  Returns ``(trace, view_fn)`` ready for the checkers.
    """
    from repro.correctness.trace import IntegrationTrace
    from repro.relalg import Evaluator, scan

    r_schema = RelationSchema("R", (Attribute("x"), Attribute("y")))
    s_schema = RelationSchema("S", (Attribute("y"),))
    view_expr = scan("R").project(["y"], dedup=True)

    def view_fn(source_states):
        catalog = {"R": source_states["db"]["R"]}
        return {"S": Evaluator(catalog).evaluate(view_expr, "S")}

    from repro.relalg import SetRelation

    def r_state(*pairs):
        return {"R": SetRelation.from_values(r_schema, pairs)}

    def s_state(*values):
        return {"S": SetRelation.from_values(s_schema, [(v,) for v in values])}

    trace = IntegrationTrace(["db"])
    db_states = [
        (1.0, r_state(("a", "a"))),
        (2.0, r_state(("b", "b"))),
        (3.0, r_state(("c", "a"))),
        (4.0, r_state(("d", "a"))),
        (5.0, r_state(("e", "a"))),
        (6.0, r_state(("f", "a"))),
    ]
    view_states = [
        (1.0, s_state("a")),
        (2.0, s_state("a")),
        (3.0, s_state("b")),
        (4.0, s_state("a")),
        (5.0, s_state("b")),
        (6.0, s_state("a")),
    ]
    for t, state in db_states:
        trace.record_source_state("db", t, state)
    for t, state in view_states:
        trace.record_view_state(t, "query", state)
    return trace, view_fn


# ---------------------------------------------------------------------------
# Figure 4 / Example 5.1
# ---------------------------------------------------------------------------
def figure4_schemas() -> Dict[str, RelationSchema]:
    """Schemas of the four source relations ``A``, ``B``, ``C``, ``D``."""
    return {
        "A": RelationSchema(
            "A", (Attribute("a1", "int"), Attribute("a2", "int")), key=("a1",)
        ),
        "B": RelationSchema(
            "B", (Attribute("b1", "int"), Attribute("b2", "int")), key=("b1",)
        ),
        "C": RelationSchema(
            "C", (Attribute("c1", "int"), Attribute("c2", "int")), key=("c1",)
        ),
        "D": RelationSchema(
            "D", (Attribute("d1", "int"), Attribute("d2", "int")), key=("d1",)
        ),
    }


def figure4_sources(
    a_rows: int = 60,
    b_rows: int = 40,
    cd_rows: int = 40,
    seed: int = 11,
) -> Dict[str, SourceDatabase]:
    """Four in-memory sources with data exercising both exports.

    ``C``/``D`` rows are built so their equi-join produces ``(a1, b1)``
    pairs overlapping ``π_{a1,b1} E`` — the difference node ``G`` then has
    something to subtract.
    """
    rng = random.Random(seed)
    schemas = figure4_schemas()
    a_values = [(i, rng.randrange(20)) for i in range(a_rows)]
    b_values = [(i, rng.randrange(3, 12)) for i in range(b_rows)]
    # c2 carries candidate a1 values, d2 candidate b1 values; c1 = d1 links them.
    c_values = [(i, rng.randrange(a_rows)) for i in range(cd_rows)]
    d_values = [(i, rng.randrange(b_rows)) for i in range(cd_rows)]
    return {
        "dbA": MemorySource("dbA", [schemas["A"]], initial={"A": a_values}),
        "dbB": MemorySource("dbB", [schemas["B"]], initial={"B": b_values}),
        "dbC": MemorySource("dbC", [schemas["C"]], initial={"C": c_values}),
        "dbD": MemorySource("dbD", [schemas["D"]], initial={"D": d_values}),
    }


def figure4_vdp() -> VDP:
    """The Figure 4 VDP: hybrid join export ``E``, difference export ``G``."""
    schemas = figure4_schemas()
    return build_vdp(
        source_schemas=schemas,
        source_of={"A": "dbA", "B": "dbB", "C": "dbC", "D": "dbD"},
        views={
            "A_p": "A",
            "B_p": "B",
            "C_p": "C",
            "D_p": "D",
            "E": "project[a1, a2, b1](A_p join[a1 ^ 2 + a2 < b2 ^ 2] B_p)",
            "F": "rename[c2 = a1, d2 = b1](project[c2, d2](C_p join[c1 = d1] D_p))",
            "G": "project[a1, b1](E) minus F",
        },
        exports=["E", "G"],
    )


def figure4_mediator(
    annotation: str = "paper",
    sources: Optional[Mapping[str, SourceDatabase]] = None,
    seed: int = 11,
    eca_enabled: bool = True,
    key_based_enabled: bool = True,
    indexing_enabled: bool = True,
    vap_cache_enabled: bool = True,
    parallel_polls: bool = True,
    shards: int = 1,
    parallel_propagation: Optional[bool] = None,
    layout: str = "row",
    smash_enabled: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> Tuple[SquirrelMediator, Dict[str, SourceDatabase]]:
    """A deployed Figure-4 mediator.

    ``annotation`` is ``"paper"`` (Example 5.1's suggestion: ``B'`` and
    ``F`` virtual, ``E`` hybrid ``[a1^m, a2^v, b1^m]``, the rest
    materialized), ``"all_m"``, or ``"all_v"`` (exports cannot store
    nothing under ``all_v`` — every node is virtual and every query polls).
    """
    overrides: Dict[str, str]
    default = "m"
    if annotation == "paper":
        overrides = {
            "B_p": "[b1^v, b2^v]",
            "E": "[a1^m, a2^v, b1^m]",
            "F": "[a1^v, b1^v]",
        }
    elif annotation == "all_m":
        overrides = {}
    elif annotation == "all_v":
        overrides = {}
        default = "v"
    else:
        raise ValueError(f"unknown annotation {annotation!r}")
    sources = dict(sources) if sources else figure4_sources(seed=seed)
    annotated = annotate(figure4_vdp(), overrides, default=default)
    mediator = SquirrelMediator(
        annotated,
        sources,
        eca_enabled=eca_enabled,
        key_based_enabled=key_based_enabled,
        indexing_enabled=indexing_enabled,
        vap_cache_enabled=vap_cache_enabled,
        parallel_polls=parallel_polls,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
        tracer=tracer,
    )
    mediator.initialize()
    return mediator, sources
