"""Synthetic update streams against source databases.

An :class:`UpdateStream` turns a per-attribute value policy into an endless
sequence of non-redundant transactions (inserts, deletes, and row
modifications) for one source relation, usable both directly (call
:meth:`UpdateStream.step`) and under the simulator (schedule
``stream.step`` at event times).

Value policies are callables ``rng -> value``; :func:`uniform_int` and
:func:`choice_of` cover the common cases.  Keys are drawn from a private
counter so inserts never collide.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.deltas import SetDelta
from repro.errors import SourceError
from repro.relalg import Row
from repro.sources.base import SourceDatabase

__all__ = ["uniform_int", "choice_of", "constant", "UpdateStream"]

ValuePolicy = Callable[[random.Random], Any]


def uniform_int(low: int, high: int) -> ValuePolicy:
    """Uniformly random integer in ``[low, high)``."""
    return lambda rng: rng.randrange(low, high)


def choice_of(values: Sequence[Any]) -> ValuePolicy:
    """Uniformly random element of ``values``."""
    chosen = list(values)
    return lambda rng: rng.choice(chosen)


def constant(value: Any) -> ValuePolicy:
    """Always ``value``."""
    return lambda rng: value


class UpdateStream:
    """Generates non-redundant transactions against one source relation."""

    def __init__(
        self,
        source: SourceDatabase,
        relation: str,
        policies: Mapping[str, ValuePolicy],
        rng: random.Random,
        insert_weight: float = 0.5,
        delete_weight: float = 0.25,
        modify_weight: float = 0.25,
        key_start: int = 1_000_000,
    ):
        """``policies`` must cover every non-key attribute; key attributes
        (per the relation's schema) are drawn from a fresh counter."""
        self.source = source
        self.relation = relation
        self.schema = source.schema(relation)
        self.policies = dict(policies)
        self.rng = rng
        self._weights = (insert_weight, delete_weight, modify_weight)
        self._next_key = key_start
        self.steps = 0
        missing = [
            a.name
            for a in self.schema.attributes
            if a.name not in self.policies and a.name not in self.schema.key
        ]
        if missing:
            raise SourceError(f"no value policy for attributes {missing}")

    # ------------------------------------------------------------------
    def _fresh_row(self) -> Row:
        values: Dict[str, Any] = {}
        for attribute in self.schema.attributes:
            if attribute.name in self.schema.key and attribute.name not in self.policies:
                values[attribute.name] = self._next_key
            else:
                values[attribute.name] = self.policies[attribute.name](self.rng)
        self._next_key += 1
        return Row(values)

    def _pick_victim(self) -> Optional[Row]:
        # Sort before drawing: relation storage iterates in hash order,
        # which varies with PYTHONHASHSEED — a seeded rng alone would still
        # produce a different victim sequence every interpreter run.
        rows = sorted(
            self.source.relation(self.relation).rows(),
            key=lambda r: tuple(sorted((k, repr(v)) for k, v in r.items())),
        )
        return self.rng.choice(rows) if rows else None

    # ------------------------------------------------------------------
    def next_transaction(self) -> SetDelta:
        """The next transaction (without executing it)."""
        insert_w, delete_w, modify_w = self._weights
        roll = self.rng.random() * (insert_w + delete_w + modify_w)
        delta = SetDelta()
        if roll < insert_w:
            delta.insert(self.relation, self._fresh_row())
            return delta
        victim = self._pick_victim()
        if victim is None:
            delta.insert(self.relation, self._fresh_row())
            return delta
        if roll < insert_w + delete_w:
            delta.delete(self.relation, victim)
            return delta
        # Modify: keep the key, redraw one non-key attribute.
        non_key = [a.name for a in self.schema.attributes if a.name not in self.schema.key]
        if not non_key:
            delta.delete(self.relation, victim)
            return delta
        target = self.rng.choice(non_key)
        replacement = victim.with_value(target, self.policies[target](self.rng))
        if replacement == victim:
            delta.delete(self.relation, victim)
            return delta
        delta.delete(self.relation, victim)
        delta.insert(self.relation, replacement)
        return delta

    def step(self) -> SetDelta:
        """Generate and execute one transaction; returns its delta."""
        delta = self.next_transaction()
        self.source.execute(delta)
        self.steps += 1
        return delta

    def run(self, count: int) -> int:
        """Execute ``count`` transactions; returns the number executed."""
        for _ in range(count):
            self.step()
        return count
