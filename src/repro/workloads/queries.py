"""Synthetic query mixes against a mediator's export relations.

A :class:`QueryMix` is a weighted set of query templates (text in the
algebra mini-language, or expressions); sampling produces ready-to-run
queries.  The helper :func:`attribute_profile` converts a mix into the
per-attribute access frequencies the Section 5.3 planner consumes — the
"queries against relation T mainly refer to attributes r1 and s1" input of
Example 2.3, derived mechanically from the workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union as TypingUnion

from repro.core import SquirrelMediator
from repro.core.derived_from import child_requirements
from repro.errors import ParseError
from repro.relalg import TRUE, Expression, Relation, parse_expression

__all__ = ["QueryTemplate", "QueryMix", "attribute_profile"]


@dataclass(frozen=True)
class QueryTemplate:
    """One weighted query template."""

    expression: Expression
    weight: float = 1.0

    @classmethod
    def of(cls, text_or_expr: TypingUnion[str, Expression], weight: float = 1.0) -> "QueryTemplate":
        """From query text or an expression tree."""
        expr = (
            parse_expression(text_or_expr)
            if isinstance(text_or_expr, str)
            else text_or_expr
        )
        return cls(expr, weight)


class QueryMix:
    """A weighted collection of query templates."""

    def __init__(self, templates: Sequence[QueryTemplate], rng: random.Random):
        if not templates:
            raise ParseError("a query mix needs at least one template")
        self.templates = list(templates)
        self.rng = rng
        self.issued = 0

    @classmethod
    def of(
        cls,
        weighted: Mapping[str, float],
        rng: random.Random,
    ) -> "QueryMix":
        """From ``{query text: weight}``."""
        return cls([QueryTemplate.of(text, w) for text, w in weighted.items()], rng)

    def sample(self) -> Expression:
        """Draw one query according to the weights."""
        total = sum(t.weight for t in self.templates)
        roll = self.rng.random() * total
        acc = 0.0
        for template in self.templates:
            acc += template.weight
            if roll < acc:
                return template.expression
        return self.templates[-1].expression

    def run_one(self, mediator: SquirrelMediator) -> Relation:
        """Sample a query and run it against a mediator."""
        self.issued += 1
        return mediator.query(self.sample())

    def run(self, mediator: SquirrelMediator, count: int) -> int:
        """Run ``count`` sampled queries."""
        for _ in range(count):
            self.run_one(mediator)
        return count


def attribute_profile(
    mix: QueryMix, schemas: Mapping[str, "object"]
) -> Dict[Tuple[str, str], float]:
    """Per-(relation, attribute) access frequency implied by a query mix.

    For every template, the attributes it touches per referenced relation
    are computed with the same lineage walk the QP uses; frequencies are
    weight-normalized.  Feed the result to
    :class:`repro.planner.WorkloadProfile` as ``attr_access``.
    """
    total_weight = sum(t.weight for t in mix.templates)
    freq: Dict[Tuple[str, str], float] = {}
    for template in mix.templates:
        share = template.weight / total_weight
        output = frozenset(
            template.expression.infer_schema(schemas, "q").attribute_names
        )
        requirements = child_requirements(template.expression, output, TRUE, schemas)
        for relation, request in requirements.items():
            for attr in request.attrs:
                key = (relation, attr)
                freq[key] = freq.get(key, 0.0) + share
    return freq
