"""The replica side of WAL shipping: apply, resync, promote.

A :class:`ReplicaMediator` is a full second mediator over the *same*
autonomous sources, kept current not by polling them but by applying the
primary's shipped WAL records to its own materialized copies.  The one
iron rule: **a replica never touches a source before promotion.**  Every
poll path (``initial_snapshot``, ``take_announcement_versioned``) consumes
the source's pending announcement accumulator — state that belongs to the
primary's update pump — so a polling replica would silently corrupt the
primary.  Replication is therefore *physical*: each shipped record
carries the committing transaction's exact per-node repository writes
(captured at the primary's single apply point), and the replica replays
those writes verbatim — bit-identical stored state, and never a poll.
Re-running propagation instead would poll whenever a materialized node
sits over a virtual operand (the VAP must fetch the other join side), so
logical replay is only legal post-mortem.  Replicas bootstrap and heal
exclusively from the primary's durability directory (checkpoint chain +
live WAL tail, re-shipped by the
:class:`~repro.replication.WalShipper`), and first query a source at
:meth:`promote` time, when the primary is already dead.

Staleness model (the Theorem 7.2 extension — see
:class:`repro.sim.ReplicationDelays`): a replica knows it is current as of
``current_as_of``, the newest instant at which its applied transaction
index matched the primary's committed index (learned from applied records
and heartbeats).  ``lag(now) = now - current_as_of`` is the replica's
ignorance window; a resyncing replica's lag is unbounded (``inf``) until
the heal lands, exactly like a ``begin_resync`` source in the PR 6
backfill path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.mediator import SquirrelMediator
from repro.core.persistence import decode_repo, reinitialize_sources
from repro.core.vdp import AnnotatedVDP
from repro.deltas import SetDelta, net_accumulate
from repro.durability.checkpoint import CheckpointStore
from repro.durability.wal import WalRecord, WriteAheadLog
from repro.errors import MediatorError
from repro.faults.staleness import StalenessTag, TaggedAnswer
from repro.obs.tracer import NULL_TRACER
from repro.relalg import TRUE
from repro.sources.base import SourceDatabase

__all__ = ["ReplicaMediator", "PromotionResult"]

_INF = float("inf")


@dataclass
class PromotionResult:
    """What one failover promotion replayed before going live."""

    replica: str
    wal_records_replayed: int = 0
    replayed_txns: int = 0
    reinitialized_sources: Tuple[str, ...] = ()


class ReplicaMediator:
    """One fault-tolerant read replica fed by shipped WAL records."""

    def __init__(
        self,
        name: str,
        annotated: AnnotatedVDP,
        sources: Mapping[str, SourceDatabase],
        directory: str,
        tracer=NULL_TRACER,
        **mediator_kwargs,
    ):
        self.name = name
        self.annotated = annotated
        self.sources = dict(sources)
        self.directory = directory
        self.checkpoints = CheckpointStore(directory)
        self.tracer = tracer
        self.mediator_kwargs = dict(mediator_kwargs)
        self.mediator_kwargs.setdefault("tracer", tracer)

        self.mediator: Optional[SquirrelMediator] = None
        self.seq_floor: Dict[str, int] = {}
        #: Highest primary transaction index whose record is applied here.
        self.applied_txn = 0
        #: Highest primary transaction index this replica knows exists.
        self.primary_txn_seen = 0
        #: Newest instant at which applied_txn covered primary_txn_seen.
        self.current_as_of = 0.0
        self.last_heartbeat: Optional[float] = None
        #: Set when a shipping gap became unhealable by retransmission;
        #: cleared by resync_from_checkpoint.  While set, reads are
        #: tagged/routed as unboundedly stale.
        self.needs_resync = False
        self.is_primary = False

        self.records_applied = 0
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Bootstrap / gap healing: checkpoint-based resync
    # ------------------------------------------------------------------
    def resync_from_checkpoint(self, now: float) -> int:
        """Rebuild this replica's state from the primary's checkpoint chain.

        Installs every storing node's image from the newest usable chain,
        seeds the ``(source, seq)`` idempotence floors and reflected
        cursors from the chain's metadata, and swaps the fresh mediator in
        wholesale (the old one, gap and all, is discarded).  Returns the
        checkpoint's ``wal_txn`` — the shipper re-ships the live WAL tail
        past it to close the distance to the primary's present.
        """
        with self.tracer.span("replica_resync") as span:
            mediator = SquirrelMediator(self.annotated, self.sources, **self.mediator_kwargs)
            meta, node_images = self.checkpoints.resolve_chain(
                self.annotated.nodes_with_storage()
            )
            for node_name, image in node_images.items():
                node = self.annotated.vdp.node(node_name)
                mediator.store.install_repo(
                    node_name,
                    decode_repo(
                        node.kind,
                        mediator.store.stored_schema(node_name),
                        image["columns"],
                        image["rows"],
                        node_name,
                    ),
                )
            mediator.store._initialized = True
            mediator.store._build_declared_indexes()
            mediator._initialized = True
            for source_name, cursor in meta.get("cursors", {}).items():
                if source_name in mediator.sources:
                    mediator.queue.note_reflected_cursor(source_name, int(cursor))

            self.mediator = mediator
            self.seq_floor = {
                source_name: int(value)
                for source_name, value in meta.get("source_seqs", {}).items()
            }
            self.applied_txn = int(meta.get("wal_txn", 0))
            self.primary_txn_seen = max(self.primary_txn_seen, self.applied_txn)
            if self.applied_txn >= self.primary_txn_seen:
                self.current_as_of = now
            self.needs_resync = False
            self.resyncs += 1
            span.set(
                replica=self.name,
                checkpoint=meta["id"],
                wal_txn=self.applied_txn,
            )
        return self.applied_txn

    def mark_gap(self) -> None:
        """Flag an unhealable shipping gap: reads degrade until resync.

        Every source goes ``begin_resync`` so tagged answers disclose
        unbounded staleness — a gapped replica may be missing arbitrary
        committed transactions and must never serve a bounded-staleness
        read as if it were merely lagging.
        """
        self.needs_resync = True
        if self.mediator is not None:
            for source_name in sorted(self.mediator.sources):
                self.mediator.begin_resync(source_name)

    # ------------------------------------------------------------------
    # Steady state: idempotent record application
    # ------------------------------------------------------------------
    def apply_record(
        self,
        record: WalRecord,
        node_applies: Sequence[Tuple[str, object]],
        now: float,
    ) -> bool:
        """Apply one shipped WAL record; returns True when it changed state.

        ``node_applies`` is the committing transaction's exact repository
        write list, captured at the primary's apply point — replaying it
        verbatim reproduces the primary's stored state bit-for-bit without
        running propagation (which may poll; see the module docstring).
        Idempotent by transaction index: a record at or below
        ``applied_txn`` (duplicate delivery, or one the bootstrap
        checkpoint already absorbed) is skipped, so replica state always
        sits on a transaction boundary the primary actually committed.
        The ``(source, seq)`` floors and reflected cursors advance
        alongside — :meth:`promote` resumes recovery from them.
        """
        if self.mediator is None:
            raise RuntimeError(f"replica {self.name!r} has no state; resync first")
        self.primary_txn_seen = max(self.primary_txn_seen, record.txn)
        if record.txn <= self.applied_txn:
            if not self.needs_resync and self.applied_txn >= self.primary_txn_seen:
                self.current_as_of = now
            return False
        with self.tracer.span("replica_apply") as span:
            for node_name, delta in node_applies:
                self.mediator.store.apply_delta(node_name, delta)
            for source_name in sorted(record.sources):
                if source_name not in self.mediator.sources:
                    continue
                entry = record.sources[source_name]
                if entry.seq > self.seq_floor.get(source_name, 0):
                    self.seq_floor[source_name] = entry.seq
                if entry.cursor is not None:
                    self.mediator.queue.note_reflected_cursor(
                        source_name, entry.cursor
                    )
            span.set(replica=self.name, txn=record.txn, nodes=len(node_applies))
        self.applied_txn = record.txn
        self.records_applied += 1
        if not self.needs_resync and self.applied_txn >= self.primary_txn_seen:
            self.current_as_of = now
        return True

    # ------------------------------------------------------------------
    # Liveness and staleness
    # ------------------------------------------------------------------
    def observe_heartbeat(self, now: float, primary_txn: int) -> None:
        """A heartbeat carrying the primary's committed transaction index."""
        self.last_heartbeat = now
        self.primary_txn_seen = max(self.primary_txn_seen, primary_txn)
        if not self.needs_resync and self.applied_txn >= self.primary_txn_seen:
            self.current_as_of = now

    def lag(self, now: float) -> float:
        """This replica's ignorance window at ``now`` (``inf`` mid-gap)."""
        if self.needs_resync or self.mediator is None:
            return _INF
        return max(0.0, now - self.current_as_of)

    def staleness_tag(self, now: float) -> StalenessTag:
        """Per-source staleness disclosure for answers served right now.

        Every source carries at least the replica's lag (the shipping
        pipeline's contribution), widened by whatever the underlying
        mediator's own tag discloses (resync markers → ``inf``).
        """
        lag = self.lag(now)
        base: Mapping[str, float] = {}
        names: Tuple[str, ...] = ()
        if self.mediator is not None:
            base = self.mediator.staleness_tag(now).staleness
            names = tuple(sorted(self.mediator.sources))
        staleness = {name: max(lag, base.get(name, 0.0)) for name in names}
        return StalenessTag(time=now, staleness=staleness)

    def query_tagged(
        self,
        relation: str,
        now: float,
        attrs=None,
        predicate=TRUE,
    ) -> TaggedAnswer:
        """A materialized-only read, tagged with this replica's staleness."""
        if self.mediator is None:
            raise RuntimeError(f"replica {self.name!r} has no state; resync first")
        answer = self.mediator.query_relation(relation, attrs, predicate)
        return TaggedAnswer(answer, self.staleness_tag(now))

    # ------------------------------------------------------------------
    # Failover: become the primary
    # ------------------------------------------------------------------
    def promote(self, now: float) -> PromotionResult:
        """Converge on everything the dead primary committed, then go live.

        The replica-local variant of the restart-recovery protocol, run
        over state the replica *already holds* instead of a cold
        checkpoint load:

        1. replay the primary's **on-disk WAL tail** past this replica's
           own ``(source, seq)`` floors — records the shipper never
           delivered (including ones a crash cut off mid-ship) are
           acknowledged transactions and must not be lost;
        2. **catch up from source logs** past the post-WAL cursors —
           transactions sources committed that the primary never saw.
           Touching the sources is legal now: the primary is dead, so its
           announcement accumulators have no other consumer;
        3. a source whose log was compacted past the cursor is rebuilt by
           selective re-initialization, staleness-tagged while in flight;
        4. one update transaction propagates the union.

        After this returns, the replica answers as the primary
        (``is_primary`` is set) and has lost no acknowledged transaction.
        """
        if self.mediator is None:
            raise RuntimeError(f"replica {self.name!r} has no state; resync first")
        from repro.durability.manager import WAL_FILENAME

        with self.tracer.span("failover") as span:
            # Step 0: checkpoints compact the WAL, so transactions this
            # replica never applied may survive *only* in the newest
            # checkpoint chain — the on-disk tail cannot bridge a gap
            # below the chain's wal_txn.  Re-baseline from the chain
            # first whenever it is ahead (this also heals a promote()
            # forced onto a gapped replica).
            try:
                meta, _ = self.checkpoints.resolve_chain(
                    self.annotated.nodes_with_storage()
                )
                chain_txn = int(meta.get("wal_txn", 0))
            except MediatorError:
                chain_txn = 0
            if self.needs_resync or chain_txn > self.applied_txn:
                self.resync_from_checkpoint(now)
            mediator = self.mediator

            # Step 1: the primary's durable WAL tail past our floors.
            nets: Dict[str, SetDelta] = {}
            cursors: Dict[str, int] = {}
            wal_records = 0
            wal_txn = self.applied_txn
            for record in WriteAheadLog.read_records(
                os.path.join(self.directory, WAL_FILENAME)
            ):
                fresh = False
                for source_name, entry in record.sources.items():
                    if source_name not in mediator.sources:
                        continue
                    if entry.seq <= self.seq_floor.get(source_name, 0):
                        continue
                    self.seq_floor[source_name] = entry.seq
                    fresh = True
                    existing = nets.get(source_name)
                    nets[source_name] = (
                        entry.delta
                        if existing is None
                        else net_accumulate(existing, entry.delta)
                    )
                    if entry.cursor is not None:
                        cursors[source_name] = max(
                            cursors.get(source_name, 0), entry.cursor
                        )
                if fresh:
                    wal_records += 1
                wal_txn = max(wal_txn, record.txn)
            for source_name, cursor in cursors.items():
                mediator.queue.note_reflected_cursor(source_name, cursor)

            # Step 2: source-log catch-up past the reflected cursors.
            stale = []
            replayed = 0
            for source_name, kind in sorted(mediator.contributor_kinds.items()):
                if not kind.announces:
                    continue
                source = mediator.sources[source_name]
                cursor = mediator.queue.reflected_cursor(source_name) or 0
                _, now_cursor = source.take_announcement_versioned()
                logged = {seq: delta for seq, delta in source.log()}
                needed = range(cursor + 1, now_cursor + 1)
                if any(seq not in logged for seq in needed):
                    stale.append(source_name)
                    continue
                net = nets.get(source_name, SetDelta())
                for seq in needed:
                    net = net_accumulate(net, logged[seq])
                    replayed += 1
                if not net.is_empty():
                    mediator.enqueue_update(source_name, net, cursor=now_cursor)
                else:
                    mediator.queue.note_reflected_cursor(source_name, now_cursor)

            # Step 3: one propagation pass over everything recovered.
            mediator.run_update_transaction()

            # Step 4: selective re-init of sources with compacted logs.
            if stale:
                for source_name in stale:
                    mediator.begin_resync(source_name)
                try:
                    with self.tracer.span("selective_reinit") as reinit_span:
                        nodes = reinitialize_sources(mediator, stale)
                        reinit_span.set(sources=stale, nodes=sorted(nodes))
                finally:
                    for source_name in stale:
                        mediator.end_resync(source_name)

            self.applied_txn = wal_txn
            self.primary_txn_seen = max(self.primary_txn_seen, wal_txn)
            self.current_as_of = now
            self.is_primary = True
            mediator.replication.failovers += 1
            span.set(
                replica=self.name,
                wal_records=wal_records,
                replayed_txns=replayed,
                stale=stale,
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "promotion",
                    replica=self.name,
                    txn=wal_txn,
                    wal_records=wal_records,
                    replayed_txns=replayed,
                    stale=stale,
                )
        return PromotionResult(
            replica=self.name,
            wal_records_replayed=wal_records,
            replayed_txns=replayed,
            reinitialized_sources=tuple(sorted(stale)),
        )

    def __repr__(self) -> str:
        return (
            f"<ReplicaMediator {self.name!r} txn={self.applied_txn} "
            f"floors={self.seq_floor}>"
        )
