"""A deterministic primary + replica-fleet driver for chaos tests/benches.

Wires the whole replication stack over the Figure 1 environment with
everything materialized (``ex21`` — replicas must never need to poll):
one primary :class:`~repro.core.SquirrelMediator` under a
:class:`~repro.durability.DurabilityManager`, a :class:`WalShipper`
streaming to N :class:`ReplicaMediator`\\ s through a seeded
:class:`~repro.faults.FaultPlan` (channel keys ``ship:replica-<i>``), a
:class:`ReadRouter` and a :class:`FailoverCoordinator`.  Time is an
integer step counter; every run with the same parameters is bit-identical.

The ground truth for every assertion is :meth:`expected_exports`: a
from-scratch mediator built over the *same live sources* — whatever the
primary acknowledged plus whatever the sources committed on their own is,
by definition, what a converged replica must show.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core import SquirrelMediator, annotate
from repro.deltas import SetDelta
from repro.durability import CheckpointPolicy, DurabilityManager
from repro.errors import SimulatedCrash
from repro.faults.plan import CrashSchedule, FaultPlan
from repro.faults.reliable import BackoffPolicy
from repro.obs.tracer import NULL_TRACER
from repro.relalg import row
from repro.workloads import FIGURE1_ANNOTATIONS, figure1_sources, figure1_vdp

from repro.replication.failover import FailoverCoordinator
from repro.replication.replica import ReplicaMediator
from repro.replication.router import ReadRouter
from repro.replication.shipper import WalShipper

__all__ = ["ReplicationHarness"]


class ReplicationHarness:
    """One primary, N replicas, a fault plan, and an integer clock."""

    def __init__(
        self,
        replicas: int = 2,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
        policy: Optional[BackoffPolicy] = None,
        crash_points: Sequence = (),
        directory: Optional[str] = None,
        checkpoint_every: int = 4,
        heartbeat_timeout: float = 3.0,
        on_stale: str = "degrade",
        tracer=NULL_TRACER,
    ):
        if directory is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory()
            directory = self._tmp.name
        self.directory = directory
        self.seed = seed
        self.tracer = tracer
        self.annotated = annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"])
        self.sources = figure1_sources(seed=seed)
        self.primary = SquirrelMediator(self.annotated, self.sources, tracer=tracer)
        self.primary.initialize()
        self.durability = DurabilityManager.attach(
            self.primary,
            directory,
            policy=CheckpointPolicy(every_txns=checkpoint_every, every_wal_bytes=0),
            crash_schedule=CrashSchedule(list(crash_points)) if crash_points else None,
        )
        self.shipper = WalShipper(
            self.durability, faults=faults, policy=policy, tracer=tracer
        )
        self.replicas: List[ReplicaMediator] = []
        for i in range(replicas):
            replica = ReplicaMediator(
                f"replica-{i}",
                annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"]),
                self.sources,
                directory,
                tracer=tracer,
            )
            self.replicas.append(replica)
            self.shipper.attach_replica(replica, now=0.0)
        self.router = ReadRouter(
            self.replicas, primary=self.primary, on_stale=on_stale, tracer=tracer
        )
        self.coordinator = FailoverCoordinator(
            self.shipper, heartbeat_timeout=heartbeat_timeout
        )
        self.step = 0
        self.commits = 0
        self.primary_dead = False

    # ------------------------------------------------------------------
    # The workload
    # ------------------------------------------------------------------
    def workload_delta(self, k: int) -> SetDelta:
        """The k-th committed delta — seeded, collision-free keys."""
        rng = random.Random((self.seed << 20) + k)
        delta = SetDelta()
        if k % 3 == 2:
            delta.insert("S", row(s1=90_000 + k, s2=7000 + k, s3=rng.randrange(100)))
        else:
            delta.insert(
                "R",
                row(
                    r1=50_000 + k,
                    r2=rng.randrange(50),
                    r3=rng.randrange(1000),
                    r4=100 if k % 2 == 0 else rng.randrange(99),
                ),
            )
        return delta

    def commit(self) -> bool:
        """One source commit + primary refresh; False when the crash fired.

        A :class:`SimulatedCrash` kills the primary exactly as the crash
        schedule dictates — the source has already committed (it is
        autonomous), so the transaction is part of the ground truth either
        way.
        """
        k = self.commits
        self.commits += 1
        source = "db2" if k % 3 == 2 else "db1"
        self.sources[source].execute(self.workload_delta(k))
        if self.primary_dead:
            return False
        try:
            self.primary.refresh()
        except SimulatedCrash:
            self.kill_primary()
            return False
        return True

    def silent_commit(self) -> None:
        """A source-side commit the (dead or slow) primary never sees."""
        k = self.commits
        self.commits += 1
        source = "db2" if k % 3 == 2 else "db1"
        self.sources[source].execute(self.workload_delta(k))

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def tick(self) -> float:
        """Advance one step; the shipper runs only while the primary lives."""
        self.step += 1
        if not self.primary_dead:
            self.shipper.tick(float(self.step))
        return float(self.step)

    def run(self, commits: int) -> None:
        """``commits`` rounds of commit-then-tick."""
        for _ in range(commits):
            self.commit()
            self.tick()

    def drain(self) -> None:
        """Force every replica current (test/convergence-check hook)."""
        self.shipper.drain(float(self.step))

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def kill_primary(self) -> None:
        """The primary process dies: no more refreshes, ships, heartbeats."""
        if self.primary_dead:
            return
        self.primary_dead = True
        self.shipper.close()
        self.durability.close()

    def advance_past_timeout(self) -> float:
        """Silent ticks until heartbeat-timeout detection can fire."""
        target = self.step + int(self.coordinator.heartbeat_timeout) + 2
        while self.step < target:
            self.tick()
        return float(self.step)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def expected_exports(self) -> Dict[str, object]:
        """Every export's content per a from-scratch recompute, by name.

        Builds a cold mediator over the same live sources — consuming
        nothing (``initialize`` snapshots; announcements are only taken by
        the primary's pump, which this never runs).
        """
        fresh = SquirrelMediator(
            annotate(figure1_vdp(), FIGURE1_ANNOTATIONS["ex21"]), self.sources
        )
        fresh.initialize()
        return {name: fresh.query_relation(name) for name in sorted(fresh.vdp.exports)}

    def replica_exports(self, replica: ReplicaMediator) -> Dict[str, object]:
        assert replica.mediator is not None
        return {
            name: replica.mediator.query_relation(name)
            for name in sorted(replica.mediator.vdp.exports)
        }

    def assert_converged(self) -> None:
        """Every replica's exports equal the from-scratch recompute."""
        self.drain()
        expected = self.expected_exports()
        for replica in self.replicas:
            got = self.replica_exports(replica)
            for name in expected:
                if got.get(name) != expected[name]:
                    raise AssertionError(
                        f"{replica.name} diverged on export {name!r} "
                        f"(applied_txn={replica.applied_txn})"
                    )

    def close(self) -> None:
        self.shipper.close()
        if not self.primary_dead:
            self.durability.close()
        if hasattr(self, "_tmp"):
            self._tmp.cleanup()
