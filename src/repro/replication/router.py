"""Bounded-staleness read routing across replicas.

A :class:`ReadRouter` answers ``π_A σ_f R`` reads from the replica fleet
under a per-query **staleness budget**: the caller's bound on how stale
an answer may be, compared against each replica's Theorem 7.2 ignorance
window (:meth:`ReplicaMediator.lag`).  Replicas within budget share the
load round-robin.  When *no* replica qualifies, the ``on_stale`` policy
decides — and on every path the answer is honest:

* ``"degrade"`` (default) — serve from the least-lagged replica, tagged
  with its actual staleness (the caller sees exactly how far over budget
  the answer is; never silently wrong);
* ``"primary"`` — fall back to the primary mediator for a fresh answer
  (when one was supplied and is alive);
* ``"reject"`` — raise :class:`~repro.errors.StaleReadError` carrying
  every replica's lag.

A resyncing replica's lag is ``inf``: it can never satisfy a finite
budget, so gap-healing replicas drain out of the serving rotation
automatically and rejoin once caught up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.mediator import SquirrelMediator
from repro.errors import MediatorError, StaleReadError
from repro.faults.staleness import StalenessTag, TaggedAnswer
from repro.obs.tracer import NULL_TRACER
from repro.relalg import TRUE

from repro.replication.replica import ReplicaMediator

__all__ = ["ReadRouter"]

_INF = float("inf")
_POLICIES = ("degrade", "primary", "reject")


class ReadRouter:
    """Routes tagged reads across replicas under staleness budgets."""

    def __init__(
        self,
        replicas: Sequence[ReplicaMediator],
        primary: Optional[SquirrelMediator] = None,
        default_budget: float = _INF,
        on_stale: str = "degrade",
        tracer=NULL_TRACER,
    ):
        if on_stale not in _POLICIES:
            raise MediatorError(
                f"on_stale must be one of {_POLICIES}, got {on_stale!r}"
            )
        self.replicas = list(replicas)
        self.primary = primary
        self.default_budget = default_budget
        self.on_stale = on_stale
        self.tracer = tracer
        self._rr = 0
        self.served: Dict[str, int] = {r.name: 0 for r in self.replicas}
        self.degraded = 0
        self.primary_fallbacks = 0
        self.rejected = 0

    def lags(self, now: float) -> Dict[str, float]:
        """Every replica's current lag, by name."""
        return {r.name: r.lag(now) for r in self.replicas}

    def route(self, now: float, staleness_budget: Optional[float] = None):
        """The replica that would serve a read at ``now``, or ``None``.

        Round-robin over the replicas whose lag fits the budget, so load
        spreads evenly across every copy that is fresh enough.
        """
        budget = self.default_budget if staleness_budget is None else staleness_budget
        eligible = [r for r in self.replicas if r.lag(now) <= budget]
        if not eligible:
            return None
        choice = eligible[self._rr % len(eligible)]
        self._rr += 1
        return choice

    def query(
        self,
        relation: str,
        now: float,
        staleness_budget: Optional[float] = None,
        on_stale: Optional[str] = None,
        attrs=None,
        predicate=TRUE,
    ) -> TaggedAnswer:
        """One bounded-staleness read; the tag always tells the truth.

        Raises :class:`StaleReadError` only under ``on_stale="reject"``
        with no in-budget replica; the ``"degrade"`` and ``"primary"``
        policies always produce an answer (tagged, or fresh).
        """
        budget = self.default_budget if staleness_budget is None else staleness_budget
        policy = self.on_stale if on_stale is None else on_stale
        if policy not in _POLICIES:
            raise MediatorError(f"on_stale must be one of {_POLICIES}, got {policy!r}")

        replica = self.route(now, budget)
        if replica is not None:
            self.served[replica.name] = self.served.get(replica.name, 0) + 1
            return replica.query_tagged(relation, now, attrs, predicate)

        if policy == "primary" and self.primary is not None:
            self.primary_fallbacks += 1
            answer = self.primary.query_relation(relation, attrs, predicate)
            return TaggedAnswer(answer, self.primary.staleness_tag(now))
        if policy == "reject" or (policy == "primary" and self.primary is None):
            self.rejected += 1
            raise StaleReadError(budget, self.lags(now))

        # Degrade: the least-lagged replica, with full disclosure.
        best = min(self.replicas, key=lambda r: (r.lag(now), r.name), default=None)
        if best is None:
            raise StaleReadError(budget, {})
        self.degraded += 1
        self.served[best.name] = self.served.get(best.name, 0) + 1
        answer = best.query_tagged(relation, now, attrs, predicate)
        if self.tracer.enabled:
            self.tracer.event(
                "stale_answer",
                replica=best.name,
                budget=None if budget == _INF else budget,
                staleness=None if answer.tag.worst() == _INF else answer.tag.worst(),
            )
        return answer

    def __repr__(self) -> str:
        return f"<ReadRouter replicas={[r.name for r in self.replicas]}>"
