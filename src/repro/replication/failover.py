"""Failover: detect a dead primary, promote the most-caught-up replica.

Liveness is judged from heartbeats: the :class:`WalShipper` stamps every
replica on every tick, so "no replica has heard a heartbeat within
``heartbeat_timeout``" means the *shipper* — the primary process —
stopped running.  Detection is deliberately conservative: one slow
replica proves nothing (its channel may be in an outage window), so the
coordinator looks at the **newest** heartbeat across the fleet.

Promotion picks the replica with the highest applied transaction index
(ties broken by name for determinism), skipping replicas mid-resync —
their state is a checkpoint plus a partial tail, strictly behind any
healthy peer.  The winner then runs :meth:`ReplicaMediator.promote`,
which replays the primary's durable WAL tail and catches up from the
source logs before the replica answers as primary — so **no acknowledged
transaction is lost**, even ones committed after the last record the
shipper managed to deliver.
"""

from __future__ import annotations

from typing import List, Optional

from repro.replication.replica import PromotionResult, ReplicaMediator
from repro.replication.shipper import WalShipper

__all__ = ["FailoverCoordinator"]


class FailoverCoordinator:
    """Watches heartbeats and promotes when the primary goes silent."""

    def __init__(self, shipper: WalShipper, heartbeat_timeout: float = 5.0):
        self.shipper = shipper
        self.heartbeat_timeout = heartbeat_timeout
        self.promoted: Optional[ReplicaMediator] = None

    @property
    def replicas(self) -> List[ReplicaMediator]:
        return self.shipper.replicas

    def newest_heartbeat(self) -> Optional[float]:
        """The most recent heartbeat any replica has observed."""
        beats = [
            r.last_heartbeat for r in self.replicas if r.last_heartbeat is not None
        ]
        return max(beats) if beats else None

    def primary_alive(self, now: float) -> bool:
        """True while some replica heard the primary recently enough.

        A fleet that never heard a heartbeat at all is treated as alive —
        the shipper simply has not ticked yet; failover before the first
        contact would promote over a perfectly healthy primary.
        """
        if self.promoted is not None:
            return False
        newest = self.newest_heartbeat()
        if newest is None:
            return True
        return now - newest <= self.heartbeat_timeout

    def candidates(self) -> List[ReplicaMediator]:
        """Promotion candidates, best first: most caught up, not mid-gap."""
        healthy = [r for r in self.replicas if not r.needs_resync and r.mediator]
        return sorted(healthy, key=lambda r: (-r.applied_txn, r.name))

    def check(self, now: float) -> Optional[PromotionResult]:
        """Detect-and-promote: returns the promotion when one happened.

        Idempotent after the first promotion (``promoted`` stays set).
        Raises when the primary is dead but no healthy candidate exists —
        silent unavailability would be worse than a loud one.
        """
        if self.promoted is not None or self.primary_alive(now):
            return None
        ranked = self.candidates()
        if not ranked:
            raise RuntimeError(
                "primary is dead and no replica is promotable "
                "(all mid-resync or uninitialized)"
            )
        winner = ranked[0]
        result = winner.promote(now)
        self.promoted = winner
        return result

    def __repr__(self) -> str:
        state = self.promoted.name if self.promoted else "watching"
        return f"<FailoverCoordinator {state} timeout={self.heartbeat_timeout}>"
