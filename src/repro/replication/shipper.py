"""The primary side of WAL shipping: stream, retransmit, heal, heartbeat.

A :class:`WalShipper` taps the primary's
:class:`~repro.durability.DurabilityManager` observer hook — it sees each
:class:`~repro.durability.WalRecord` only *after* it is durable, so a
shipped record is by construction an acknowledged transaction — and
streams the records to each attached :class:`ReplicaMediator` over the
fault-injectable channel layer:

* every (replica, record) transmission consults the
  :class:`~repro.faults.FaultPlan` under channel key ``ship:<replica>``,
  so drops, duplicates, delays, reorders, and outage windows all apply;
* per-replica :class:`~repro.faults.ReliableInbox` sequencing releases
  records to the replica in order and exactly once, buffering past gaps;
* retransmission is paced by a :class:`~repro.faults.StreamBackoff` —
  the per-stream attempt counter resets on acknowledged progress, so a
  replica that recovers from a long outage is not pinned at max backoff;
* a gap no retransmission can fill (sender buffer loss, retry budget
  exhausted) marks the replica for **checkpoint-based resync**: the
  replica reloads the primary's newest checkpoint chain and the shipper
  re-ships the live WAL tail past it — the same heal path as bootstrap.

Each shipped record travels with the committing transaction's exact
per-node repository writes (the durability manager's
``last_node_applies``), because replicas replay stored state *physically*
— they must never re-run propagation, which may poll a source (see
:mod:`repro.replication.replica`).  The shipper caches those writes per
transaction for as long as the record stays in the live WAL; a resync
that needs a tail record whose writes predate this shipper (it attached
later) simply forces a full checkpoint first, absorbing the tail.

Time is the caller's simulated clock: drive :meth:`tick` once per step.
Heartbeats (carrying the primary's committed transaction index) ride the
tick directly rather than the faulted channel — the failover detector
cares about *shipper* liveness, and a dead primary stops ticking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.durability.manager import DurabilityManager
from repro.durability.wal import WalRecord
from repro.faults.plan import FaultPlan
from repro.faults.reliable import BackoffPolicy, Envelope, ReliableInbox, StreamBackoff
from repro.obs.tracer import NULL_TRACER

from repro.replication.replica import ReplicaMediator

__all__ = ["WalShipper", "ShippedRecord"]


@dataclass
class ShippedRecord:
    """One WAL record plus its transaction's physical repository writes."""

    record: WalRecord
    node_applies: Tuple = ()


@dataclass
class _Transmission:
    """One in-flight copy set of an envelope, due at ``deliver_at``."""

    deliver_at: float
    envelope: Envelope
    copies: int


@dataclass
class _ReplicaStream:
    """Sender-side state for one replica's ordered record stream."""

    replica: ReplicaMediator
    inbox: ReliableInbox
    backoff: StreamBackoff
    next_seq: int = 0
    transmissions: int = 0
    abandoned: int = 0
    unacked: Dict[int, Envelope] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    retry_at: Dict[int, float] = field(default_factory=dict)
    pending: List[_Transmission] = field(default_factory=list)

    def reset(self, inbox: ReliableInbox) -> None:
        """Start a fresh stream after a resync re-baselines the replica."""
        self.inbox = inbox
        self.next_seq = 0
        self.unacked.clear()
        self.attempts.clear()
        self.retry_at.clear()
        self.pending.clear()


class WalShipper:
    """Streams the primary's committed WAL records to its read replicas."""

    def __init__(
        self,
        manager: DurabilityManager,
        faults: Optional[FaultPlan] = None,
        policy: Optional[BackoffPolicy] = None,
        tracer=NULL_TRACER,
    ):
        self.manager = manager
        self.mediator = manager.mediator
        self.faults = faults
        self.policy = policy or BackoffPolicy()
        self.tracer = tracer
        self.now = 0.0
        self.streams: Dict[str, _ReplicaStream] = {}
        #: Per live-WAL transaction: its physical repository writes,
        #: snapshotted from the manager at observation time (pruned as
        #: checkpoints compact the WAL).
        self._applies: Dict[int, Tuple] = {}
        self._observer: Callable[[WalRecord], None] = self._on_record
        manager.observers.append(self._observer)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach_replica(self, replica: ReplicaMediator, now: float = 0.0) -> None:
        """Register a replica and bootstrap it (checkpoint + WAL tail)."""
        if replica.name in self.streams:
            raise ValueError(f"replica {replica.name!r} already attached")
        self.now = max(self.now, now)
        stream = _ReplicaStream(
            replica=replica,
            inbox=self._make_inbox(replica),
            backoff=StreamBackoff(self.policy, key=f"ship:{replica.name}"),
        )
        self.streams[replica.name] = stream
        self.resync_replica(replica.name, self.now)

    def detach_replica(self, name: str) -> None:
        """Drop a replica's stream (the replica object is untouched)."""
        self.streams.pop(name, None)

    @property
    def replicas(self) -> List[ReplicaMediator]:
        """The attached replicas, in name order."""
        return [self.streams[name].replica for name in sorted(self.streams)]

    def close(self) -> None:
        """Stop shipping: deregister from the durability manager."""
        if self._observer in self.manager.observers:
            self.manager.observers.remove(self._observer)

    def _make_inbox(self, replica: ReplicaMediator) -> ReliableInbox:
        def sink(envelope: Envelope) -> None:
            shipped = envelope.payload
            replica.apply_record(shipped.record, shipped.node_applies, self.now)

        return ReliableInbox(sink, name=f"replica:{replica.name}", tracer=self.tracer)

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def _on_record(self, record: WalRecord) -> None:
        """The durability observer: fan one committed record out to all."""
        self._applies[record.txn] = tuple(self.manager.last_node_applies)
        live = {r.txn for r in self.manager.wal.records}
        for txn in [t for t in self._applies if t not in live and t != record.txn]:
            del self._applies[txn]
        shipped = ShippedRecord(record, self._applies[record.txn])
        for name in sorted(self.streams):
            self._ship(self.streams[name], shipped)
        if self.tracer.enabled and self.streams:
            self.tracer.event(
                "wal_ship", txn=record.txn, replicas=sorted(self.streams)
            )

    def _ship(self, stream: _ReplicaStream, shipped: ShippedRecord) -> None:
        envelope = Envelope(seq=stream.next_seq, payload=shipped, send_time=self.now)
        stream.next_seq += 1
        stream.unacked[envelope.seq] = envelope
        stream.attempts[envelope.seq] = 0
        self.mediator.replication.records_shipped += 1
        self._transmit(stream, envelope, attempt=0)

    def _transmit(self, stream: _ReplicaStream, envelope: Envelope, attempt: int) -> None:
        """One transmission attempt through the fault plan."""
        stream.transmissions += 1
        if self.faults is not None:
            decision = self.faults.decide(
                f"ship:{stream.replica.name}",
                stream.transmissions,
                attempt=attempt,
                now=self.now,
            )
        else:
            decision = None
        if decision is not None and decision.drop:
            stream.retry_at[envelope.seq] = self.now + stream.backoff.next_delay()
            return
        extra_delay = decision.extra_delay if decision is not None else 0.0
        duplicates = decision.duplicates if decision is not None else 0
        reorder = decision.reorder if decision is not None else False
        deliver_at = self.now + extra_delay + (1.0 if reorder else 0.0)
        stream.pending.append(
            _Transmission(deliver_at=deliver_at, envelope=envelope, copies=1 + duplicates)
        )
        # Ack timeout: if delivery does not move the high-water mark past
        # this seq by then (it was out of order, or a later gap holds it),
        # retransmit.
        stream.retry_at[envelope.seq] = deliver_at + stream.backoff.current_delay

    # ------------------------------------------------------------------
    # The clock tick: deliver, ack, retransmit, heal, heartbeat
    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        """Advance the shipping pipeline to ``now`` (one simulation step)."""
        self.now = max(self.now, now)
        for name in sorted(self.streams):
            stream = self.streams[name]
            self._deliver_due(stream)
            self._ack(stream)
            self._retransmit_due(stream)
            if stream.replica.needs_resync or self._permanent_gap(stream):
                if not stream.replica.needs_resync:
                    stream.replica.mark_gap()
                self.resync_replica(name, self.now)
            stream.replica.observe_heartbeat(self.now, self.manager._txn)
        self._update_lag_gauge()

    def _deliver_due(self, stream: _ReplicaStream) -> None:
        due = [t for t in stream.pending if t.deliver_at <= self.now]
        if not due:
            return
        stream.pending = [t for t in stream.pending if t.deliver_at > self.now]
        for transmission in sorted(due, key=lambda t: (t.deliver_at, t.envelope.seq)):
            for _ in range(transmission.copies):
                stream.inbox.deliver(transmission.envelope)

    def _ack(self, stream: _ReplicaStream) -> None:
        """Prune envelopes the inbox high-water mark acknowledges."""
        acked = [s for s in stream.unacked if s <= stream.inbox.delivered_through]
        if not acked:
            return
        for seq in acked:
            stream.unacked.pop(seq, None)
            stream.attempts.pop(seq, None)
            stream.retry_at.pop(seq, None)
        stream.backoff.record_success()

    def _retransmit_due(self, stream: _ReplicaStream) -> None:
        for seq in sorted(stream.unacked):
            if stream.retry_at.get(seq, 0.0) > self.now:
                continue
            attempt = stream.attempts.get(seq, 0) + 1
            stream.attempts[seq] = attempt
            if (
                self.policy.max_retries is not None
                and attempt > self.policy.max_retries
            ):
                # Retry budget exhausted: this seq will never arrive by
                # retransmission — an unhealable stream gap.
                envelope = stream.unacked.pop(seq)
                stream.attempts.pop(seq, None)
                stream.retry_at.pop(seq, None)
                stream.abandoned += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "replica_gap",
                        replica=stream.replica.name,
                        seq=seq,
                        txn=envelope.payload.record.txn,
                    )
                stream.replica.mark_gap()
                continue
            self._transmit(stream, stream.unacked[seq], attempt=attempt)

    def _permanent_gap(self, stream: _ReplicaStream) -> bool:
        """True when the inbox needs a seq no transmission can still fill."""
        if not stream.inbox.pending_gap():
            return False
        needed = stream.inbox.delivered_through + 1
        if needed in stream.unacked:
            return False
        return all(t.envelope.seq != needed for t in stream.pending)

    def inject_gap(self, name: str) -> int:
        """Irrecoverably drop the oldest unacked envelope (test hook).

        Models sender-side buffer loss: the seq is gone from the stream,
        so the next tick detects a permanent gap and heals by resync.
        Returns the dropped seq, or -1 when nothing was in flight.
        """
        stream = self.streams[name]
        if not stream.unacked:
            return -1
        seq = min(stream.unacked)
        stream.unacked.pop(seq)
        stream.attempts.pop(seq, None)
        stream.retry_at.pop(seq, None)
        stream.pending = [t for t in stream.pending if t.envelope.seq != seq]
        if self.tracer.enabled:
            self.tracer.event("replica_gap", replica=name, seq=seq, txn=-1)
        return seq

    # ------------------------------------------------------------------
    # Gap healing
    # ------------------------------------------------------------------
    def resync_replica(self, name: str, now: float) -> None:
        """Heal one replica: checkpoint reload + live WAL tail re-ship.

        A tail record whose physical writes predate this shipper (it
        attached after the record committed) cannot be re-shipped; a full
        checkpoint absorbs the whole tail instead, and the resync retries
        against it.
        """
        self.now = max(self.now, now)
        stream = self.streams[name]
        floor_txn = stream.replica.resync_from_checkpoint(self.now)
        tail = [r for r in self.manager.wal.records if r.txn > floor_txn]
        if any(r.txn not in self._applies for r in tail):
            self.manager.checkpoint(full=True)
            floor_txn = stream.replica.resync_from_checkpoint(self.now)
            tail = [r for r in self.manager.wal.records if r.txn > floor_txn]
        stream.reset(self._make_inbox(stream.replica))
        for record in tail:
            self._ship(stream, ShippedRecord(record, self._applies[record.txn]))
        self.mediator.replication.replica_resyncs += 1

    # ------------------------------------------------------------------
    # Synchronous convergence (tests, soak checkpoints)
    # ------------------------------------------------------------------
    def drain(self, now: float) -> None:
        """Force every attached replica fully current, bypassing delays.

        Delivers all in-flight and unacked envelopes in order, healing any
        permanent gap by resync, until every stream is empty.  Used where
        convergence must hold *now*: soak checkpoint verification and test
        assertions.  Bounded: each pass either empties a stream or resyncs
        it, and a resync stream's tail is re-shipped from a finite WAL.
        """
        self.now = max(self.now, now)
        for _ in range(64):
            settled = True
            for name in sorted(self.streams):
                stream = self.streams[name]
                if stream.replica.needs_resync or self._permanent_gap(stream):
                    if not stream.replica.needs_resync:
                        stream.replica.mark_gap()
                    self.resync_replica(name, self.now)
                    settled = False
                if stream.pending:
                    for transmission in sorted(
                        stream.pending, key=lambda t: (t.deliver_at, t.envelope.seq)
                    ):
                        stream.inbox.deliver(transmission.envelope)
                    stream.pending.clear()
                    settled = False
                self._ack(stream)
                if stream.unacked:
                    for seq in sorted(stream.unacked):
                        stream.inbox.deliver(stream.unacked[seq])
                    self._ack(stream)
                    settled = False
                stream.replica.observe_heartbeat(self.now, self.manager._txn)
            if settled:
                break
        else:
            raise RuntimeError("WalShipper.drain did not settle")
        self._update_lag_gauge()

    def _update_lag_gauge(self) -> None:
        lags = [
            lag
            for lag in (s.replica.lag(self.now) for s in self.streams.values())
            if lag != float("inf")
        ]
        self.mediator.replication.replica_lag = max(lags, default=0.0)

    def __repr__(self) -> str:
        return f"<WalShipper replicas={sorted(self.streams)} now={self.now}>"
