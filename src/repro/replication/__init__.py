"""Fault-tolerant WAL-shipped read replicas (CQRS over the mediator).

The primary :class:`~repro.core.SquirrelMediator` already write-ahead
logs every committed update transaction; this package turns that log into
a replication stream:

* :class:`WalShipper` — primary side: taps the durability manager's
  observer hook and streams each committed
  :class:`~repro.durability.WalRecord` to every replica over the
  fault-injectable channel layer, with in-order/exactly-once delivery
  (:class:`~repro.faults.ReliableInbox`), stream-aware retransmission
  backoff (:class:`~repro.faults.StreamBackoff`), heartbeats, and
  checkpoint-based gap healing;
* :class:`ReplicaMediator` — replica side: a full mediator kept current
  by replaying each shipped record's physical repository writes
  idempotently (by transaction index, with ``(source, seq)`` floors
  advancing for failover), never polling a source before promotion;
  exposes its Theorem 7.2
  ignorance window as :meth:`~ReplicaMediator.lag` and promotes to
  primary through the recovery protocol (WAL tail + source-log catch-up)
  so no acknowledged transaction is ever lost;
* :class:`ReadRouter` — bounded-staleness reads: per-query staleness
  budgets route load round-robin across fresh-enough replicas and
  degrade (tagged), fall back to the primary, or reject
  (:class:`~repro.errors.StaleReadError`) when none qualifies;
* :class:`FailoverCoordinator` — heartbeat-timeout death detection and
  most-caught-up promotion;
* :class:`ReplicationHarness` — a deterministic full-stack driver for
  chaos tests and benchmarks.

``docs/replication.md`` walks through the design and its invariants.
"""

from repro.replication.failover import FailoverCoordinator
from repro.replication.harness import ReplicationHarness
from repro.replication.replica import PromotionResult, ReplicaMediator
from repro.replication.router import ReadRouter
from repro.replication.shipper import WalShipper

__all__ = [
    "WalShipper",
    "ReplicaMediator",
    "PromotionResult",
    "ReadRouter",
    "FailoverCoordinator",
    "ReplicationHarness",
]
