"""Simulated runtime: sources + channels + mediator under the event loop."""

from repro.runtime.driver import ChannelLink, SimulatedEnvironment

__all__ = ["ChannelLink", "SimulatedEnvironment"]
