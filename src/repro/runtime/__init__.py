"""Simulated runtime: sources + channels + mediator under the event loop."""

from repro.runtime.driver import ChannelLink, ReliableChannelLink, SimulatedEnvironment

__all__ = ["ChannelLink", "ReliableChannelLink", "SimulatedEnvironment"]
