"""Simulated integration environments.

Wires sources, FIFO delay channels, and a Squirrel mediator into the
discrete-event simulator, reproducing the paper's environment model:

* a source commits transactions at scheduled times; each commit (re)arms an
  announcement timer, and after ``ann_delay`` the source's pending *net*
  update is sent as one indivisible message;
* messages travel a per-source FIFO channel with ``comm_delay``;
* the mediator flushes its update queue periodically (the ``u_hold_delay``
  policy) and runs an IUP transaction;
* queries arrive as scheduled events and run through the QP/VAP.

Polls issued by the VAP travel a :class:`ChannelLink`: the source first
sends any pending announcement, then the channel is expedited, so every
message the source produced before answering is in the mediator's queue
when the answer is used — the in-order assumption of Section 4 that the
Eager Compensation Algorithm relies on.

A :class:`~repro.correctness.IntegrationTrace` records every source commit
and every observed view state, ready for the Section 3 checkers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import SquirrelMediator
from repro.core.links import SourceLink
from repro.core.vdp import AnnotatedVDP
from repro.correctness import IntegrationTrace
from repro.deltas import SetDelta
from repro.errors import SimulationError
from repro.relalg import Evaluator, Expression, Relation
from repro.sim import Channel, EnvironmentDelays, Simulator
from repro.sources.base import SourceDatabase

__all__ = ["ChannelLink", "SimulatedEnvironment"]


class ChannelLink(SourceLink):
    """A source link that honors simulated channel ordering and delays."""

    def __init__(self, source: SourceDatabase, channel: Channel, announces: bool):
        super().__init__(source.name)
        self.source = source
        self.channel = channel
        self.announces = announces

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        # Flush-before-answer through the same FIFO the announcements use.
        announcement = self.source.take_announcement()
        if announcement is not None and self.announces:
            self.channel.send(announcement)
        self.channel.expedite()

        snapshot = self.source.state()
        self.source.query_count += len(queries)
        self.poll_count += 1
        evaluator = Evaluator(snapshot)
        answers: Dict[str, Relation] = {}
        for name, expr in queries.items():
            answer = evaluator.evaluate(expr, name)
            self.polled_rows += answer.cardinality()
            answers[name] = answer
        return answers


class SimulatedEnvironment:
    """A complete simulated integration environment."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        sources: Mapping[str, SourceDatabase],
        delays: EnvironmentDelays,
        flush_period: Optional[float] = None,
        eca_enabled: bool = True,
        key_based_enabled: bool = True,
        record_updates: bool = True,
    ):
        """``flush_period`` defaults to ``delays.u_hold_delay_med`` (the
        worst-case queue-holding time *is* the flush period under a periodic
        policy); it must be positive."""
        self.sim = Simulator()
        self.delays = delays
        self.sources = dict(sources)
        self.record_updates = record_updates
        self.flush_period = flush_period if flush_period is not None else delays.u_hold_delay_med
        if self.flush_period <= 0:
            raise SimulationError("flush_period must be positive")

        self.trace = IntegrationTrace(sorted(self.sources))
        self._channels: Dict[str, Channel] = {}
        self._announce_armed: Dict[str, bool] = {name: False for name in self.sources}

        kinds = annotated.contributor_kinds()
        links: Dict[str, SourceLink] = {}
        for name in sorted(self.sources):
            source = self.sources[name]
            profile = delays.profile(name)
            channel = Channel(
                self.sim,
                profile.comm_delay,
                deliver=self._make_deliver(name),
                name=f"{name}->mediator",
            )
            self._channels[name] = channel
            announces = bool(name in kinds and kinds[name].announces)
            links[name] = ChannelLink(source, channel, announces)
            source.on_commit(self._make_commit_hook(name, profile.ann_delay, announces))

        self.mediator = SquirrelMediator(
            annotated,
            self.sources,
            links=links,
            eca_enabled=eca_enabled,
            key_based_enabled=key_based_enabled,
        )
        self.mediator.initialize()

        # t_view_init: record initial source states and the initial view.
        for name, source in self.sources.items():
            self.trace.record_source_state(name, self.sim.now, source.state())
        self._record_view("init")

        self.sim.every(
            self.flush_period,
            self._update_transaction,
            description="mediator queue flush",
        )

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def _make_deliver(self, source_name: str) -> Callable:
        def deliver(message: SetDelta, send_time: float) -> None:
            self.mediator.enqueue_update(
                source_name, message, send_time=send_time, arrival_time=self.sim.now
            )

        return deliver

    def _make_commit_hook(self, name: str, ann_delay: float, announces: bool) -> Callable:
        def hook(source: SourceDatabase, delta: SetDelta) -> None:
            self.trace.record_source_state(name, self.sim.now, source.state())
            if not announces or self._announce_armed[name]:
                return
            self._announce_armed[name] = True
            self.sim.schedule(
                ann_delay, lambda: self._announce(name), f"{name}: announce updates"
            )

        return hook

    def _announce(self, name: str) -> None:
        self._announce_armed[name] = False
        announcement = self.sources[name].take_announcement()
        if announcement is not None:
            self._channels[name].send(announcement)

    def _update_transaction(self) -> None:
        result = self.mediator.run_update_transaction()
        if self.record_updates and not result.was_empty:
            self._record_view("update")

    def _record_view(self, kind: str) -> None:
        state = {
            export: self.mediator.query_relation(export)
            for export in self.mediator.vdp.exports
        }
        self.trace.record_view_state(self.sim.now, kind, state)

    # ------------------------------------------------------------------
    # Driving the environment
    # ------------------------------------------------------------------
    def schedule_transaction(self, time: float, source: str, delta: SetDelta) -> None:
        """Commit ``delta`` at ``source`` at simulated time ``time``."""
        if source not in self.sources:
            raise SimulationError(f"unknown source {source!r}")
        self.sim.schedule_at(
            time,
            lambda: self.sources[source].execute(delta),
            f"{source}: commit transaction",
        )

    def schedule_action(self, time: float, action: Callable[[], None], description: str = "") -> None:
        """Schedule an arbitrary callable (e.g. a workload step)."""
        self.sim.schedule_at(time, action, description)

    def schedule_query(self, time: float, record: bool = True) -> None:
        """Observe the view's exports at ``time`` (a query transaction)."""

        def run() -> None:
            if record:
                self._record_view("query")
            else:  # observation without recording (warm-up, debugging)
                for export in self.mediator.vdp.exports:
                    self.mediator.query_relation(export)

        self.sim.schedule_at(time, run, "query transaction")

    def attach_update_stream(
        self,
        stream,
        rate: float,
        until: float,
        rng_seed: int = 0,
        start: float = 0.0,
    ) -> int:
        """Drive an :class:`~repro.workloads.UpdateStream` at a Poisson rate.

        Schedules stream steps with exponential inter-arrival times of mean
        ``1/rate`` from ``start`` up to ``until``; returns the number of
        scheduled transactions.  (Times are pre-drawn so the simulation
        remains fully deterministic.)
        """
        import random as _random

        if rate <= 0:
            raise SimulationError("update rate must be positive")
        rng = _random.Random(rng_seed)
        t = start
        scheduled = 0
        while True:
            t += rng.expovariate(rate)
            if t >= until:
                return scheduled
            self.sim.schedule_at(t, stream.step, "workload transaction")
            scheduled += 1

    def attach_query_load(
        self,
        rate: float,
        until: float,
        rng_seed: int = 1,
        start: float = 0.0,
        record: bool = True,
    ) -> int:
        """Schedule Poisson-arriving query transactions; returns the count."""
        import random as _random

        if rate <= 0:
            raise SimulationError("query rate must be positive")
        rng = _random.Random(rng_seed)
        t = start
        scheduled = 0
        while True:
            t += rng.expovariate(rate)
            if t >= until:
                return scheduled
            self.schedule_query(t, record=record)
            scheduled += 1

    def run_until(self, end_time: float) -> int:
        """Advance the simulation to ``end_time``."""
        return self.sim.run_until(end_time)
