"""Simulated integration environments.

Wires sources, FIFO delay channels, and a Squirrel mediator into the
discrete-event simulator, reproducing the paper's environment model:

* a source commits transactions at scheduled times; each commit (re)arms an
  announcement timer, and after ``ann_delay`` the source's pending *net*
  update is sent as one indivisible message;
* messages travel a per-source FIFO channel with ``comm_delay``;
* the mediator flushes its update queue periodically (the ``u_hold_delay``
  policy) and runs an IUP transaction;
* queries arrive as scheduled events and run through the QP/VAP.

Polls issued by the VAP travel a :class:`ChannelLink`: the source first
sends any pending announcement, then the channel is expedited, so every
message the source produced before answering is in the mediator's queue
when the answer is used — the in-order assumption of Section 4 that the
Eager Compensation Algorithm relies on.

Passing a :class:`~repro.faults.FaultPlan` turns the perfect channels into
faulty ones (drop / duplicate / delay / reorder / outage windows) and
swaps every link for a :class:`ReliableChannelLink`: announcements then
travel in sequence-numbered envelopes through a sender-side retransmission
buffer (per-message timeout, exponential backoff) into a receiver-side
inbox that smashes duplicates idempotently and releases payloads strictly
in order.  On the poll path the link first expedites the channel and then
syncs every still-unacked envelope straight into the inbox, restoring the
flush-before-answer guarantee even across lost messages; polls against a
source inside an outage window raise
:class:`~repro.errors.SourceUnavailableError` instead of hanging.

A :class:`~repro.correctness.IntegrationTrace` records every source commit
and every observed view state, ready for the Section 3 checkers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import SquirrelMediator
from repro.core.links import SourceLink
from repro.core.vdp import AnnotatedVDP
from repro.correctness import IntegrationTrace
from repro.deltas import SetDelta
from repro.errors import SimulationError, SourceUnavailableError
from repro.faults import BackoffPolicy, Envelope, FaultPlan, ReliableInbox, ReliableSender
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import Evaluator, Expression, Relation
from repro.sim import Channel, EnvironmentDelays, Simulator
from repro.sources.base import SourceDatabase

__all__ = ["ChannelLink", "ReliableChannelLink", "SimulatedEnvironment"]


class ChannelLink(SourceLink):
    """A source link that honors simulated channel ordering and delays."""

    def __init__(self, source: SourceDatabase, channel: Channel, announces: bool):
        super().__init__(source.name)
        self.source = source
        self.channel = channel
        self.announces = announces

    # ------------------------------------------------------------------
    # Availability and time (graceful-degradation hooks)
    # ------------------------------------------------------------------
    def now(self) -> Optional[float]:
        return self.channel.simulator.now

    def is_available(self) -> bool:
        plan = self.channel.plan
        if plan is None:
            return True
        return not plan.in_outage(self.channel.fault_key, self.channel.simulator.now)

    def outage_until(self) -> Optional[float]:
        plan = self.channel.plan
        if plan is None:
            return None
        window = plan.outage_at(self.channel.fault_key, self.channel.simulator.now)
        return window.end if window is not None else None

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        self._require_available()
        self._flush_before_answer()
        return self._answer(queries)

    def _require_available(self) -> None:
        if not self.is_available():
            raise SourceUnavailableError(self.source_name, until=self.outage_until())

    def _flush_before_answer(self) -> None:
        # Flush-before-answer through the same FIFO the announcements use.
        announcement = self.source.take_announcement()
        if announcement is not None and self.announces:
            self.channel.send(announcement)
        self.channel.expedite()

    def _answer(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        snapshot = self.source.state()
        self.source.query_count += len(queries)
        self.poll_count += 1
        evaluator = Evaluator(snapshot)
        answers: Dict[str, Relation] = {}
        for name, expr in queries.items():
            answer = evaluator.evaluate(expr, name)
            self.polled_rows += answer.cardinality()
            answers[name] = answer
        return answers


class ReliableChannelLink(ChannelLink):
    """A channel link whose announcements survive a faulty channel.

    Outbound announcements go through a :class:`ReliableSender` (sequence
    numbers, retransmission with exponential backoff); the poll path, being
    a synchronous request/reply exchange, additionally syncs all unacked
    envelopes into the receiver's inbox so the mediator's queue is complete
    before a poll answer is used — the Section 4 in-order assumption,
    re-established over an unreliable link.
    """

    def __init__(
        self,
        source: SourceDatabase,
        channel: Channel,
        announces: bool,
        sender: ReliableSender,
        inbox: ReliableInbox,
    ):
        super().__init__(source, channel, announces)
        self.sender = sender
        self.inbox = inbox

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        self._require_available()
        announcement = self.source.take_announcement()
        if announcement is not None and self.announces:
            self.sender.send(announcement)
        # Early-arrive whatever is still in flight, then recover anything
        # the channel lost: after the sync, the inbox has released every
        # announcement the source ever produced, gap-free and in order.
        self.channel.expedite()
        if self.announces:
            self.sender.sync_into_inbox()
        return self._answer(queries)


class SimulatedEnvironment:
    """A complete simulated integration environment."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        sources: Mapping[str, SourceDatabase],
        delays: EnvironmentDelays,
        flush_period: Optional[float] = None,
        eca_enabled: bool = True,
        key_based_enabled: bool = True,
        vap_cache_enabled: bool = True,
        record_updates: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        backoff: Optional[BackoffPolicy] = None,
        shards: int = 1,
        layout: str = "row",
        tracer: Tracer = NULL_TRACER,
    ):
        """``flush_period`` defaults to ``delays.u_hold_delay_med`` (the
        worst-case queue-holding time *is* the flush period under a periodic
        policy); it must be positive.  ``fault_plan`` (keyed by source name)
        makes every channel faulty and every link reliability-aware;
        ``backoff`` tunes the retransmission policy (defaults to a base
        timeout of one flush period, doubling, capped at 8 periods).
        ``tracer`` is threaded through the channels, the reliability layer,
        and the mediator; an enabled tracer is re-clocked onto the
        simulated clock, so identical runs yield byte-identical traces."""
        self.sim = Simulator(fault_plan=fault_plan)
        self.tracer = tracer
        if tracer.enabled:
            tracer.clock = lambda: self.sim.now
        self.delays = delays
        self.sources = dict(sources)
        self.record_updates = record_updates
        self.fault_plan = fault_plan
        self.flush_period = flush_period if flush_period is not None else delays.u_hold_delay_med
        if self.flush_period <= 0:
            raise SimulationError("flush_period must be positive")
        if backoff is None:
            backoff = BackoffPolicy(
                base_timeout=self.flush_period,
                multiplier=2.0,
                max_backoff=8 * self.flush_period,
            )
        self.backoff = backoff

        self.trace = IntegrationTrace(sorted(self.sources))
        self._channels: Dict[str, Channel] = {}
        self._senders: Dict[str, ReliableSender] = {}
        self._inboxes: Dict[str, ReliableInbox] = {}
        self._announce_armed: Dict[str, bool] = {name: False for name in self.sources}

        kinds = annotated.contributor_kinds()
        links: Dict[str, SourceLink] = {}
        for name in sorted(self.sources):
            source = self.sources[name]
            profile = delays.profile(name)
            announces = bool(name in kinds and kinds[name].announces)
            if fault_plan is None:
                channel = Channel(
                    self.sim,
                    profile.comm_delay,
                    deliver=self._make_deliver(name),
                    name=f"{name}->mediator",
                    tracer=tracer,
                )
                links[name] = ChannelLink(source, channel, announces)
            else:
                inbox = ReliableInbox(
                    self._make_sink(name),
                    name=f"{name}->mediator inbox",
                    tracer=tracer,
                )
                channel = Channel(
                    self.sim,
                    profile.comm_delay,
                    deliver=lambda env, st, _inbox=inbox: _inbox.deliver(env),
                    name=f"{name}->mediator",
                    plan=fault_plan,
                    fault_key=name,
                    tracer=tracer,
                )
                sender = ReliableSender(
                    channel, inbox, self.sim, self.backoff, tracer=tracer
                )
                self._inboxes[name] = inbox
                self._senders[name] = sender
                links[name] = ReliableChannelLink(source, channel, announces, sender, inbox)
            self._channels[name] = channel
            source.on_commit(self._make_commit_hook(name, profile.ann_delay, announces))

        # Simulated-channel links leave supports_parallel_poll False (the
        # event clock is single-threaded), so the VAP's serial poll loop is
        # used regardless of the mediator's parallel_polls default.
        self.mediator = SquirrelMediator(
            annotated,
            self.sources,
            links=links,
            eca_enabled=eca_enabled,
            key_based_enabled=key_based_enabled,
            vap_cache_enabled=vap_cache_enabled,
            shards=shards,
            layout=layout,
            tracer=tracer,
        )
        self.mediator.initialize()

        # t_view_init: record initial source states and the initial view.
        for name, source in self.sources.items():
            self.trace.record_source_state(name, self.sim.now, source.state())
        self._record_view("init")

        self.sim.every(
            self.flush_period,
            self._update_transaction,
            description="mediator queue flush",
        )

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def _make_deliver(self, source_name: str) -> Callable:
        def deliver(message: SetDelta, send_time: float) -> None:
            self.mediator.enqueue_update(
                source_name, message, send_time=send_time, arrival_time=self.sim.now
            )

        return deliver

    def _make_sink(self, source_name: str) -> Callable[[Envelope], None]:
        """The reliable inbox's in-order release target: the update queue."""

        def sink(envelope: Envelope) -> None:
            self.mediator.enqueue_update(
                source_name,
                envelope.payload,
                send_time=envelope.send_time,
                arrival_time=self.sim.now,
                seq=envelope.seq,
            )

        return sink

    def _make_commit_hook(self, name: str, ann_delay: float, announces: bool) -> Callable:
        def hook(source: SourceDatabase, delta: SetDelta) -> None:
            self.trace.record_source_state(name, self.sim.now, source.state())
            if not announces or self._announce_armed[name]:
                return
            self._announce_armed[name] = True
            self.sim.schedule(
                ann_delay, lambda: self._announce(name), f"{name}: announce updates"
            )

        return hook

    def _announce(self, name: str) -> None:
        self._announce_armed[name] = False
        announcement = self.sources[name].take_announcement()
        if announcement is None:
            return
        sender = self._senders.get(name)
        if sender is not None:
            sender.send(announcement)
        else:
            self._channels[name].send(announcement)

    def _update_transaction(self) -> None:
        result = self.mediator.run_update_transaction()
        if self.record_updates and not result.was_empty:
            self._record_view("update")

    def _record_view(self, kind: str) -> None:
        state = {
            export: self.mediator.query_relation(export)
            for export in self.mediator.vdp.exports
        }
        self.trace.record_view_state(self.sim.now, kind, state)

    # ------------------------------------------------------------------
    # Fault-tolerance introspection
    # ------------------------------------------------------------------
    def fault_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-source transport counters (what the faults did, what the
        reliability layer repaired)."""
        stats: Dict[str, Dict[str, int]] = {}
        for name, channel in self._channels.items():
            entry = {
                "sent": channel.messages_sent,
                "delivered": channel.messages_delivered,
                "dropped": channel.messages_dropped,
                "duplicated": channel.messages_duplicated,
            }
            sender = self._senders.get(name)
            if sender is not None:
                entry["retransmits"] = sender.retransmits
                entry["unacked"] = sender.unacked_count()
                entry["abandoned"] = sender.abandoned
            inbox = self._inboxes.get(name)
            if inbox is not None:
                entry["dedup_dropped"] = inbox.duplicates_dropped
                entry["gaps_detected"] = inbox.gaps_detected
                entry["released_in_order"] = inbox.delivered
            stats[name] = entry
        return stats

    def drained(self) -> bool:
        """True when no announcement is in flight, buffered, or unacked —
        the quiescence precondition of convergence checks."""
        for name, channel in self._channels.items():
            if channel.in_flight_count() > 0:
                return False
            inbox = self._inboxes.get(name)
            if inbox is not None and inbox.pending_gap():
                return False
            sender = self._senders.get(name)
            if sender is not None and sender.unacked_count() > 0:
                return False
            if self.sources[name].has_pending_announcement() and self._announce_armed.get(name):
                return False
        return True

    # ------------------------------------------------------------------
    # Driving the environment
    # ------------------------------------------------------------------
    def schedule_transaction(self, time: float, source: str, delta: SetDelta) -> None:
        """Commit ``delta`` at ``source`` at simulated time ``time``."""
        if source not in self.sources:
            raise SimulationError(f"unknown source {source!r}")
        self.sim.schedule_at(
            time,
            lambda: self.sources[source].execute(delta),
            f"{source}: commit transaction",
        )

    def schedule_action(self, time: float, action: Callable[[], None], description: str = "") -> None:
        """Schedule an arbitrary callable (e.g. a workload step)."""
        self.sim.schedule_at(time, action, description)

    def schedule_query(self, time: float, record: bool = True) -> None:
        """Observe the view's exports at ``time`` (a query transaction)."""

        def run() -> None:
            if record:
                self._record_view("query")
            else:  # observation without recording (warm-up, debugging)
                for export in self.mediator.vdp.exports:
                    self.mediator.query_relation(export)

        self.sim.schedule_at(time, run, "query transaction")

    def attach_update_stream(
        self,
        stream,
        rate: float,
        until: float,
        rng_seed: int = 0,
        start: float = 0.0,
    ) -> int:
        """Drive an :class:`~repro.workloads.UpdateStream` at a Poisson rate.

        Schedules stream steps with exponential inter-arrival times of mean
        ``1/rate`` from ``start`` up to ``until``; returns the number of
        scheduled transactions.  (Times are pre-drawn so the simulation
        remains fully deterministic.)
        """
        import random as _random

        if rate <= 0:
            raise SimulationError("update rate must be positive")
        rng = _random.Random(rng_seed)
        t = start
        scheduled = 0
        while True:
            t += rng.expovariate(rate)
            if t >= until:
                return scheduled
            self.sim.schedule_at(t, stream.step, "workload transaction")
            scheduled += 1

    def attach_query_load(
        self,
        rate: float,
        until: float,
        rng_seed: int = 1,
        start: float = 0.0,
        record: bool = True,
    ) -> int:
        """Schedule Poisson-arriving query transactions; returns the count."""
        import random as _random

        if rate <= 0:
            raise SimulationError("query rate must be positive")
        rng = _random.Random(rng_seed)
        t = start
        scheduled = 0
        while True:
            t += rng.expovariate(rate)
            if t >= until:
                return scheduled
            self.schedule_query(t, record=record)
            scheduled += 1

    def run_until(self, end_time: float) -> int:
        """Advance the simulation to ``end_time``."""
        return self.sim.run_until(end_time)
