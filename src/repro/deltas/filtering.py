"""Filtering source deltas down to leaf-parent nodes (Section 6.2, end).

"Because each leaf-parent holds a relation which is a project-select of a
source database relation, it is easy to 'filter' the deltas in the update
queue so that they are applicable to the leaf-parent nodes."

A :class:`LeafParentFilter` captures one leaf-parent definition
``LP = π_C σ_h (SourceRel)`` and converts incoming multi-relation source
deltas into bag deltas on ``LP``.  The optional source-side optimization the
paper mentions (filtering at the source before transmission) is exposed as
:meth:`LeafParentFilter.prefilter`, used by sources configured to do so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.deltas.bag_delta import BagDelta
from repro.deltas.delta import SetDelta
from repro.deltas.operations import AnyDelta, select_project
from repro.errors import DeltaError
from repro.relalg.predicates import Predicate, TRUE, conjoin

__all__ = ["LeafParentFilter"]


@dataclass(frozen=True)
class LeafParentFilter:
    """Filter for one leaf-parent node ``target = π_attrs σ_predicate(source_relation)``."""

    target: str
    source_relation: str
    predicate: Predicate = TRUE
    attrs: Optional[Tuple[str, ...]] = None

    @classmethod
    def from_chain(cls, target: str, chain) -> "LeafParentFilter":
        """Extract the filter from a leaf-parent definition chain.

        ``chain`` is a select/project/rename expression over a single source
        scan (Section 5.1 restriction (a)).  Selection predicates are
        collected and translated back through any renames below them, so the
        resulting predicate speaks the *source* relation's attribute names
        and can run at the source (the Section 6.2 prefilter optimization).
        """
        from repro.relalg.expressions import Project, Rename, Scan, Select

        predicates: List[Predicate] = []
        node = chain
        while True:
            if isinstance(node, Select):
                predicates.append(node.predicate)
                node = node.child
            elif isinstance(node, Project):
                node = node.child
            elif isinstance(node, Rename):
                inverse = {new: old for old, new in node.mapping_dict.items()}
                predicates = [p.rename(inverse) for p in predicates]
                node = node.child
            elif isinstance(node, Scan):
                predicate = conjoin(*predicates) if predicates else TRUE
                return cls(target, node.name, predicate)
            else:
                raise DeltaError(
                    f"leaf-parent definition for {target!r} is not a chain: {chain}"
                )

    def filter(self, delta: AnyDelta) -> BagDelta:
        """The bag delta on the leaf-parent implied by a source delta."""
        return select_project(
            delta,
            self.source_relation,
            self.predicate,
            self.attrs,
            out_relation=self.target,
        )

    def prefilter(self, delta: SetDelta) -> SetDelta:
        """Source-side optimization: drop atoms that cannot affect the target.

        Keeps the delta in source-relation terms (so ordinary filtering still
        applies at the mediator) but removes atoms failing the selection
        condition.  Projection is *not* applied here: the source cannot know
        whether other mediator nodes need the full rows.
        """
        out = SetDelta()
        for rel, r, sign in delta.atoms():
            if rel != self.source_relation or self.predicate.evaluate(r):
                if sign > 0:
                    out.insert(rel, r)
                else:
                    out.delete(rel, r)
        return out
