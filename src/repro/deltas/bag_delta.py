"""Bag-semantics deltas (signed multiplicities).

Deltas "have also been generalized to bags [DHR95]" (Section 6.2).  A bag
delta maps each row of each relation to a non-zero *signed multiplicity*:
``+2`` means "insert two copies", ``-1`` means "remove one copy".  Mediator
*bag nodes* (every non-leaf node except difference nodes) accumulate their
incremental updates as bag deltas, which makes the counting-style SPJ and
union rules of Section 5.2 exact.

Bag smash is pointwise addition (composition of multiset adjustments), bag
inverse is pointwise negation, and bag apply adjusts multiplicities —
raising if a multiplicity would go negative, since that always indicates a
maintenance bug rather than a legal state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DeltaError
from repro.relalg.relation import BagRelation
from repro.relalg.tuples import Row

__all__ = ["BagDelta"]


class BagDelta:
    """A multi-relation bag delta: ``relation -> {row: signed count}``."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[Row, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, relation: str, counts: Dict[Row, int]) -> "BagDelta":
        """Single-relation constructor from a signed-count mapping."""
        delta = cls()
        for r, n in counts.items():
            delta.add(relation, r, n)
        return delta

    @classmethod
    def diff(cls, name: str, before: BagRelation, after: BagRelation) -> "BagDelta":
        """The net bag delta turning ``before`` into ``after``."""
        delta = cls()
        rows = {r for r, _ in before.items()} | {r for r, _ in after.items()}
        # Sorted for run-to-run determinism: set iteration is hash-ordered,
        # and atom order is observable downstream (see SetDelta.diff).
        for r in sorted(rows, key=repr):
            delta.add(name, r, after.count(r) - before.count(r))
        return delta

    def add(self, relation: str, row: Row, signed_count: int) -> None:
        """Accumulate a signed multiplicity for ``row`` (0 is a no-op)."""
        if signed_count == 0:
            return
        rel_counts = self._counts.setdefault(relation, {})
        updated = rel_counts.get(row, 0) + signed_count
        if updated == 0:
            rel_counts.pop(row, None)
        else:
            rel_counts[row] = updated

    def insert(self, relation: str, row: Row, count: int = 1) -> None:
        """Accumulate ``count`` insertions of ``row``."""
        if count <= 0:
            raise DeltaError(f"insert count must be positive, got {count}")
        self.add(relation, row, count)

    def delete(self, relation: str, row: Row, count: int = 1) -> None:
        """Accumulate ``count`` deletions of ``row``."""
        if count <= 0:
            raise DeltaError(f"delete count must be positive, got {count}")
        self.add(relation, row, -count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def relations(self) -> Tuple[str, ...]:
        """Names of relations with at least one non-zero entry."""
        return tuple(rel for rel, counts in self._counts.items() if counts)

    def count(self, relation: str, row: Row) -> int:
        """The signed multiplicity of ``row`` in ``relation`` (0 if absent)."""
        return self._counts.get(relation, {}).get(row, 0)

    def entries(self) -> Iterator[Tuple[str, Row, int]]:
        """Iterate ``(relation, row, signed count)`` for all non-zero entries."""
        for rel, counts in self._counts.items():
            for r, n in counts.items():
                if n:
                    yield rel, r, n

    def entries_for(self, relation: str) -> Iterator[Tuple[Row, int]]:
        """Iterate ``(row, signed count)`` for one relation."""
        for r, n in self._counts.get(relation, {}).items():
            if n:
                yield r, n

    def counts_for(self, relation: str) -> Dict[Row, int]:
        """The signed-count mapping for one relation (a copy)."""
        return {r: n for r, n in self.entries_for(relation)}

    def insertions(self, relation: str) -> List[Tuple[Row, int]]:
        """Positive entries as ``(row, count)``."""
        return [(r, n) for r, n in self.entries_for(relation) if n > 0]

    def deletions(self, relation: str) -> List[Tuple[Row, int]]:
        """Negative entries as ``(row, count)`` with positive counts."""
        return [(r, -n) for r, n in self.entries_for(relation) if n < 0]

    def is_empty(self) -> bool:
        """True when no non-zero entries remain."""
        return all(not counts for counts in self._counts.values())

    def entry_count(self) -> int:
        """Number of distinct (relation, row) entries."""
        return sum(1 for _ in self.entries())

    def magnitude(self) -> int:
        """Total absolute multiplicity across all entries."""
        return sum(abs(n) for _, _, n in self.entries())

    def restrict_to(self, relations: Iterable[str]) -> "BagDelta":
        """The sub-delta mentioning only the given relations."""
        wanted = set(relations)
        out = BagDelta()
        for rel, r, n in self.entries():
            if rel in wanted:
                out.add(rel, r, n)
        return out

    # ------------------------------------------------------------------
    # Heraclitus operators (bag flavour)
    # ------------------------------------------------------------------
    def smash(self, other: "BagDelta") -> "BagDelta":
        """Bag smash: pointwise addition of signed multiplicities."""
        out = self.copy()
        for rel, r, n in other.entries():
            out.add(rel, r, n)
        return out

    def inverse(self) -> "BagDelta":
        """Pointwise negation."""
        out = BagDelta()
        for rel, r, n in self.entries():
            out.add(rel, r, -n)
        return out

    def apply_to(self, relation: BagRelation, relation_name: str) -> None:
        """Adjust multiplicities of ``relation`` by this delta's entries.

        Raises :class:`~repro.errors.DeltaError` if any multiplicity would
        become negative — under correct maintenance that never happens.
        """
        for r, n in self.entries_for(relation_name):
            relation.adjust(r, n)

    def applied(self, relation: BagRelation, relation_name: str) -> BagRelation:
        """A copy of ``relation`` with this delta applied."""
        out = relation.copy()
        self.apply_to(out, relation_name)
        return out

    # ------------------------------------------------------------------
    # Conversions and dunder support
    # ------------------------------------------------------------------
    def copy(self) -> "BagDelta":
        """An independent copy."""
        out = BagDelta()
        for rel, counts in self._counts.items():
            out._counts[rel] = dict(counts)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagDelta):
            return NotImplemented
        mine = {(rel, r): n for rel, r, n in self.entries()}
        theirs = {(rel, r): n for rel, r, n in other.entries()}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(frozenset((rel, r, n) for rel, r, n in self.entries()))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:
        parts = [f"{'+' if n > 0 else ''}{n}·{rel}({dict(r)})" for rel, r, n in self.entries()]
        return "BagDelta{" + ", ".join(sorted(parts)) + "}"
