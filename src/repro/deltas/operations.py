"""Generic delta operations: apply / smash / inverse / pushdown.

These free functions give a uniform surface over :class:`SetDelta` and
:class:`BagDelta` plus the commutation law of Section 6.2::

    π_C σ_f apply(R, Δ)  =  apply(π_C σ_f R, π_C σ_f Δ)

``select_project`` implements the right-hand side's ``π_C σ_f Δ`` for both
delta kinds; :mod:`repro.deltas.filtering` builds leaf-parent filtering on
top of it.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union as TypingUnion

from repro.deltas.bag_delta import BagDelta
from repro.deltas.delta import SetDelta
from repro.errors import DeltaError
from repro.relalg.predicates import Predicate, TruePredicate
from repro.relalg.relation import BagRelation, Relation, SetRelation

__all__ = [
    "AnyDelta",
    "net_accumulate",
    "apply_delta",
    "smash_all",
    "set_to_bag",
    "bag_to_set",
    "select_project",
    "rename_delta",
]

AnyDelta = TypingUnion[SetDelta, BagDelta]


def apply_delta(relation: Relation, delta: AnyDelta, relation_name: Optional[str] = None) -> None:
    """Apply ``delta``'s atoms/entries for ``relation_name`` to ``relation``.

    Dispatches on the relation container: set relations take set deltas (a
    bag delta with all counts in {+1, -1} is converted), bag relations take
    bag deltas (a set delta is converted).
    """
    name = relation_name or relation.schema.name
    if isinstance(relation, SetRelation):
        if isinstance(delta, BagDelta):
            delta = bag_to_set(delta)
        delta.apply_to(relation, name)
    elif isinstance(relation, BagRelation):
        if isinstance(delta, SetDelta):
            delta = set_to_bag(delta)
        delta.apply_to(relation, name)
    else:
        raise DeltaError(f"cannot apply delta to relation of type {type(relation).__name__}")


def smash_all(deltas: Iterable[AnyDelta]) -> Optional[AnyDelta]:
    """Smash a sequence of deltas left-to-right; ``None`` for an empty input.

    This is the IUP's initialization step: "Let Δ hold the smash of all
    incremental updates held in the queue" (Section 6.4).  All deltas must
    be of the same kind.
    """
    result: Optional[AnyDelta] = None
    for delta in deltas:
        if result is None:
            result = delta.copy()
        else:
            if type(result) is not type(delta):
                raise DeltaError("cannot smash set deltas with bag deltas")
            result = result.smash(delta)
    return result


def set_to_bag(delta: SetDelta) -> BagDelta:
    """View a set delta as a bag delta (signs become ±1 counts)."""
    out = BagDelta()
    for rel, r, sign in delta.atoms():
        out.add(rel, r, sign)
    return out


def bag_to_set(delta: BagDelta) -> SetDelta:
    """Convert a bag delta whose counts are all ±1 into a set delta."""
    out = SetDelta()
    for rel, r, n in delta.entries():
        if n == 1:
            out.insert(rel, r)
        elif n == -1:
            out.delete(rel, r)
        else:
            raise DeltaError(
                f"bag delta entry {rel}({dict(r)}) has count {n}; not expressible as a set delta"
            )
    return out


def select_project(
    delta: AnyDelta,
    relation: str,
    predicate: Predicate,
    attrs: Optional[Sequence[str]] = None,
    out_relation: Optional[str] = None,
) -> BagDelta:
    """Compute ``π_attrs σ_predicate Δ`` for one relation of ``delta``.

    The result is always a *bag* delta: projection can merge several source
    atoms onto one output row, and only signed counts represent that
    faithfully (this is precisely why the paper stores projection/union
    nodes as bags).  ``attrs=None`` means "no projection".
    """
    target = out_relation or relation
    out = BagDelta()
    if isinstance(delta, SetDelta):
        entries = ((r, s) for r, s in delta.atoms_for(relation))
    else:
        entries = delta.entries_for(relation)
    for r, n in entries:
        if not predicate.evaluate(r):
            continue
        projected = r.project(attrs) if attrs is not None else r
        out.add(target, projected, n)
    return out


def rename_delta(delta: AnyDelta, mapping: Mapping[str, str], relation: str,
                 out_relation: Optional[str] = None) -> BagDelta:
    """Rename attributes in the atoms of one relation of ``delta``."""
    target = out_relation or relation
    out = BagDelta()
    if isinstance(delta, SetDelta):
        entries = ((r, s) for r, s in delta.atoms_for(relation))
    else:
        entries = delta.entries_for(relation)
    for r, n in entries:
        out.add(target, r.rename(mapping), n)
    return out


def net_accumulate(pending: SetDelta, committed: SetDelta) -> SetDelta:
    """Fold consecutive in-order deltas into one *net* delta.

    Opposite atoms for the same row cancel (an insert that undoes an earlier
    delete — or vice versa — nets to nothing), so the result is exactly the
    difference between the first delta's base state and the last delta's
    final state.  Plain smash would instead keep the later atom, producing
    an atom redundant for the base state; under bag-projection that
    redundancy silently corrupts multiplicities.  Used by source
    announcement accumulation, queue flushing, compensation, and
    warm-restart catch-up.  Precondition (holds for deltas drawn from one
    relation timeline): no same-sign collision on the same row.
    """
    out = SetDelta()
    cancelled = set()
    for rel, r, sign in committed.atoms():
        if pending.sign(rel, r) == -sign:
            cancelled.add((rel, r))
    for rel, r, sign in pending.atoms():
        if (rel, r) not in cancelled:
            (out.insert if sign > 0 else out.delete)(rel, r)
    for rel, r, sign in committed.atoms():
        if (rel, r) not in cancelled:
            (out.insert if sign > 0 else out.delete)(rel, r)
    return out
