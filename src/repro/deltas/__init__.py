"""Heraclitus-style deltas: first-class database differences (Section 6.2).

Set deltas (:class:`SetDelta`) model the paper's insertion/deletion-atom
deltas with ``apply``, ``smash`` and ``inverse``; bag deltas
(:class:`BagDelta`) are the signed-multiplicity generalization used by the
mediator's bag nodes.  :mod:`~repro.deltas.operations` holds the generic
operators and the select/project commutation; :mod:`~repro.deltas.filtering`
adapts source deltas to leaf-parent nodes.
"""

from repro.deltas.bag_delta import BagDelta
from repro.deltas.delta import SetDelta
from repro.deltas.filtering import LeafParentFilter
from repro.deltas.operations import (
    AnyDelta,
    net_accumulate,
    apply_delta,
    bag_to_set,
    rename_delta,
    select_project,
    set_to_bag,
    smash_all,
)

__all__ = [
    "SetDelta",
    "BagDelta",
    "AnyDelta",
    "LeafParentFilter",
    "net_accumulate",
    "apply_delta",
    "smash_all",
    "set_to_bag",
    "bag_to_set",
    "select_project",
    "rename_delta",
]
