"""Set-semantics deltas (the Heraclitus paradigm, Section 6.2).

A *delta* is a set of insertion atoms ``+R(t)`` and deletion atoms ``-R(t)``
subject to the consistency condition that no tuple occurs with both signs for
the same relation.  A delta may refer to several relations at once ("A delta
can simultaneously contain atoms that refer to more than [one] relation").

The two key operators are

* ``apply(db, Δ)`` — ``(db − Δ⁻) ∪ Δ⁺`` per relation, tolerant of redundant
  atoms, matching Heraclitus semantics; and
* ``smash`` (``!``) — state-independent composition:
  ``apply(db, Δ1 ! Δ2) = apply(apply(db, Δ1), Δ2)``.  Computed, as in the
  paper, by taking the union of the two atom sets and deleting every atom of
  ``Δ1`` that conflicts with an atom of ``Δ2``.

``inverse`` flips all signs; for the non-redundant deltas that arise inside
Squirrel mediators it satisfies ``apply(apply(db, Δ), Δ⁻¹) = db`` and
``(Δ1 ! Δ2)⁻¹ = Δ2⁻¹ ! Δ1⁻¹`` — both property-tested in the suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DeltaError
from repro.relalg.relation import SetRelation
from repro.relalg.tuples import Row

__all__ = ["SetDelta"]

Sign = int  # +1 for insertion atoms, -1 for deletion atoms


class SetDelta:
    """A multi-relation set-semantics delta.

    Internally a mapping ``relation name -> {row: sign}``; the consistency
    condition (never both ``+R(t)`` and ``-R(t)``) is structural, because a
    row maps to exactly one sign.
    """

    def __init__(self) -> None:
        self._atoms: Dict[str, Dict[Row, Sign]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_atoms(cls, atoms: Iterable[Tuple[str, Row, Sign]]) -> "SetDelta":
        """Build from ``(relation, row, sign)`` triples."""
        delta = cls()
        for rel, r, sign in atoms:
            if sign > 0:
                delta.insert(rel, r)
            else:
                delta.delete(rel, r)
        return delta

    @classmethod
    def diff(cls, name: str, before: SetRelation, after: SetRelation) -> "SetDelta":
        """The net delta turning ``before`` into ``after``.

        This is how sources compute the "net updates ... that reflect the
        difference between two database states" announced to the mediator
        (Section 4).
        """
        delta = cls()
        before_rows = before.support()
        after_rows = after.support()
        # Sort the set differences: frozenset iteration follows hash order,
        # which varies across processes (PYTHONHASHSEED) — the delta's atom
        # order must not, or every consumer that walks atoms in insertion
        # order (propagation, provenance, traces) becomes run-dependent.
        for r in sorted(after_rows - before_rows, key=repr):
            delta.insert(name, r)
        for r in sorted(before_rows - after_rows, key=repr):
            delta.delete(name, r)
        return delta

    def insert(self, relation: str, row: Row) -> None:
        """Add an insertion atom ``+relation(row)``.

        Adding ``+R(t)`` on top of ``-R(t)`` raises: within one delta the
        consistency condition forbids conflicting atoms.
        """
        self._add_atom(relation, row, +1)

    def delete(self, relation: str, row: Row) -> None:
        """Add a deletion atom ``-relation(row)``."""
        self._add_atom(relation, row, -1)

    def _add_atom(self, relation: str, row: Row, sign: Sign) -> None:
        rel_atoms = self._atoms.setdefault(relation, {})
        existing = rel_atoms.get(row)
        if existing is not None and existing != sign:
            raise DeltaError(
                f"conflicting atoms for {relation}({row!r}): cannot hold both + and -"
            )
        rel_atoms[row] = sign

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def relations(self) -> Tuple[str, ...]:
        """Names of relations this delta mentions (with at least one atom)."""
        return tuple(rel for rel, atoms in self._atoms.items() if atoms)

    def sign(self, relation: str, row: Row) -> Sign:
        """+1, -1, or 0 for the atom status of ``row`` in ``relation``."""
        return self._atoms.get(relation, {}).get(row, 0)

    def atoms(self) -> Iterator[Tuple[str, Row, Sign]]:
        """Iterate all atoms as ``(relation, row, sign)``."""
        for rel, rel_atoms in self._atoms.items():
            for r, sign in rel_atoms.items():
                yield rel, r, sign

    def atoms_for(self, relation: str) -> Iterator[Tuple[Row, Sign]]:
        """Iterate the atoms of one relation."""
        return iter(self._atoms.get(relation, {}).items())

    def insertions(self, relation: str) -> List[Row]:
        """The rows inserted into ``relation``."""
        return [r for r, s in self.atoms_for(relation) if s > 0]

    def deletions(self, relation: str) -> List[Row]:
        """The rows deleted from ``relation``."""
        return [r for r, s in self.atoms_for(relation) if s < 0]

    def is_empty(self) -> bool:
        """True when the delta carries no atoms."""
        return all(not atoms for atoms in self._atoms.values())

    def atom_count(self) -> int:
        """Total number of atoms."""
        return sum(len(atoms) for atoms in self._atoms.values())

    def restrict_to(self, relations: Iterable[str]) -> "SetDelta":
        """The sub-delta mentioning only the given relations."""
        wanted = set(relations)
        out = SetDelta()
        for rel, r, sign in self.atoms():
            if rel in wanted:
                out._add_atom(rel, r, sign)
        return out

    # ------------------------------------------------------------------
    # Heraclitus operators
    # ------------------------------------------------------------------
    def smash(self, other: "SetDelta") -> "SetDelta":
        """``self ! other``: later atoms win on conflict (paper Section 6.2)."""
        out = SetDelta()
        for rel, r, sign in self.atoms():
            out._atoms.setdefault(rel, {})[r] = sign
        for rel, r, sign in other.atoms():
            out._atoms.setdefault(rel, {})[r] = sign
        return out

    def inverse(self) -> "SetDelta":
        """Flip all signs: ``Δ⁻¹``."""
        out = SetDelta()
        for rel, r, sign in self.atoms():
            out._atoms.setdefault(rel, {})[r] = -sign
        return out

    def apply_to(self, relation: SetRelation, relation_name: str) -> None:
        """Apply this delta's atoms for ``relation_name`` to ``relation``.

        Heraclitus apply is tolerant: inserting a present row or deleting an
        absent one is a no-op.  (The paper notes Squirrel deltas are never
        redundant in practice; tolerance is still the correct semantics for
        smashed deltas.)
        """
        for r, sign in self.atoms_for(relation_name):
            present = relation.contains(r)
            if sign > 0 and not present:
                relation.insert(r)
            elif sign < 0 and present:
                relation.delete(r)

    def applied(self, relation: SetRelation, relation_name: str) -> SetRelation:
        """A copy of ``relation`` with this delta applied."""
        out = relation.copy()
        self.apply_to(out, relation_name)
        return out

    def is_redundant_for(self, relation: SetRelation, relation_name: str) -> bool:
        """True if any atom for ``relation_name`` is redundant for ``relation``.

        An insertion atom is redundant when the row is already present, a
        deletion atom when it is absent (Section 6.2).
        """
        for r, sign in self.atoms_for(relation_name):
            present = relation.contains(r)
            if (sign > 0 and present) or (sign < 0 and not present):
                return True
        return False

    # ------------------------------------------------------------------
    # Conversions and dunder support
    # ------------------------------------------------------------------
    def copy(self) -> "SetDelta":
        """An independent copy."""
        out = SetDelta()
        for rel, rel_atoms in self._atoms.items():
            out._atoms[rel] = dict(rel_atoms)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetDelta):
            return NotImplemented
        mine = {(rel, r): s for rel, r, s in self.atoms()}
        theirs = {(rel, r): s for rel, r, s in other.atoms()}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(frozenset((rel, r, s) for rel, r, s in self.atoms()))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:
        parts = []
        for rel, r, sign in self.atoms():
            marker = "+" if sign > 0 else "-"
            parts.append(f"{marker}{rel}({dict(r)})")
        return "SetDelta{" + ", ".join(sorted(parts)) + "}"
