"""Fault injection and fault tolerance for source-mediator links.

Three pieces, layered exactly as ``docs/fault_model.md`` describes:

* :class:`FaultPlan` / :class:`ChannelFaults` / :class:`OutageWindow` — a
  deterministic, seedable schedule of drops, duplicates, delays, reorders
  and crash-and-recover outage windows, consulted by the simulated
  channels on every transmission and delivery;
* :class:`Envelope` / :class:`ReliableInbox` / :class:`ReliableSender` /
  :class:`BackoffPolicy` — the reliability layer that restores in-order,
  exactly-once announcement delivery over a faulty channel (sequence
  numbers, idempotent dedup, gap detection, retransmission with
  exponential backoff);
* :class:`StalenessTag` / :class:`TaggedAnswer` — graceful degradation
  vocabulary: what a materialized answer admits about its freshness while
  a source is inside an outage window.

This package has no dependencies on the core or simulation layers, so any
layer may import it freely.
"""

from repro.faults.plan import (
    CRASH_PHASES,
    NO_FAULTS,
    ChannelFaults,
    CrashPoint,
    CrashSchedule,
    FaultDecision,
    FaultPlan,
    OutageWindow,
)
from repro.faults.reliable import (
    BackoffPolicy,
    Envelope,
    ReliableInbox,
    ReliableSender,
    StreamBackoff,
)
from repro.faults.staleness import StalenessTag, TaggedAnswer

__all__ = [
    "FaultPlan",
    "ChannelFaults",
    "FaultDecision",
    "OutageWindow",
    "NO_FAULTS",
    "CRASH_PHASES",
    "CrashPoint",
    "CrashSchedule",
    "Envelope",
    "ReliableInbox",
    "ReliableSender",
    "BackoffPolicy",
    "StreamBackoff",
    "StalenessTag",
    "TaggedAnswer",
]
