"""Deterministic, seedable fault plans for source-mediator links.

The paper's environment model (Section 4) assumes perfectly reliable,
in-order channels: "the messages transferred from one source database to
the mediator must be in order and every source database sends all the
updates ... in a single undividable message".  Real autonomous sources are
not that polite.  A :class:`FaultPlan` describes, per channel, how that
assumption is violated:

* **drop** — a transmitted message is lost in transit;
* **duplicate** — extra copies of a message arrive;
* **delay** — a message takes extra time (drawn from a configured range);
* **reorder** — a delayed message no longer holds back later ones, so it
  can be overtaken (FIFO is broken for it);
* **crash-and-recover** — scheduled :class:`OutageWindow`\\ s during which
  the link is down: nothing sent or delivered survives, and polls fail.

Every decision is a pure function of ``(seed, channel, transmission index,
attempt)`` hashed through SHA-256, so a plan is *reproducible by
construction*: the same seed yields a byte-identical fault schedule on any
platform or Python version (``fingerprint`` pins this in tests).  The
simulator stays deterministic — chaos runs can be replayed exactly.

Two knobs bound the chaos so convergence proofs terminate:
``active_until`` silences rate-based faults after a horizon, and
``fault_free_after_attempt`` guarantees that a retransmission eventually
gets through (outage windows still apply regardless — a down link is
down).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = [
    "OutageWindow",
    "ChannelFaults",
    "FaultDecision",
    "FaultPlan",
    "NO_FAULTS",
    "CRASH_PHASES",
    "CrashPoint",
    "CrashSchedule",
]


@dataclass(frozen=True)
class OutageWindow:
    """A half-open interval ``[start, end)`` during which a link is down."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(
                f"outage window must have end > start, got [{self.start}, {self.end})"
            )

    def contains(self, time: float) -> bool:
        """True when ``time`` falls inside the window."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class ChannelFaults:
    """Per-channel fault rates and scheduled outages (all rates in [0, 1]).

    ``drop_rate``, ``duplicate_rate``, ``delay_rate`` and ``reorder_rate``
    are independent per-transmission probabilities; a drop preempts the
    others (a lost message cannot also be duplicated).  Extra delay for
    delayed/reordered messages is drawn uniformly from ``delay_range``.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_range: Tuple[float, float] = (0.0, 0.0)
    max_duplicates: int = 1
    outages: Tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise SimulationError(f"invalid delay_range {self.delay_range}")
        if self.max_duplicates < 1:
            raise SimulationError("max_duplicates must be >= 1")

    @property
    def faultless(self) -> bool:
        """True when this configuration can never inject a fault."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.delay_rate == 0.0
            and self.reorder_rate == 0.0
            and not self.outages
        )


NO_FAULTS = ChannelFaults()


#: Where a :class:`CrashPoint` can kill the mediator, relative to the
#: durability protocol's write ordering (see ``docs/durability.md``):
#:
#: * ``post-wal-append`` — the WAL record for the transaction is fully on
#:   disk, but no checkpoint has absorbed it;
#: * ``torn-wal`` — the crash lands *inside* the append: only a prefix of
#:   the record's bytes reach the file (the classic torn tail);
#: * ``mid-checkpoint`` — the checkpoint image is written but the atomic
#:   publish (rename) never happens, leaving a partial ``.tmp`` behind.
CRASH_PHASES = ("post-wal-append", "torn-wal", "mid-checkpoint")


@dataclass(frozen=True)
class CrashPoint:
    """Kill the mediator at one precisely chosen durability instant.

    ``txn`` is the 1-based committed-update-transaction index at which the
    crash fires (the Nth non-empty IUP transaction after durability was
    attached); ``phase`` picks the instant within that transaction's
    durability work (:data:`CRASH_PHASES`).  A ``mid-checkpoint`` point
    fires only if that transaction actually triggers a checkpoint — pair it
    with a :class:`~repro.durability.CheckpointPolicy` whose period divides
    ``txn`` (or force one).
    """

    txn: int
    phase: str = "post-wal-append"

    def __post_init__(self) -> None:
        if self.txn < 1:
            raise SimulationError(f"crash txn must be >= 1, got {self.txn}")
        if self.phase not in CRASH_PHASES:
            raise SimulationError(
                f"unknown crash phase {self.phase!r}; choose from {CRASH_PHASES}"
            )


class CrashSchedule:
    """The crash half of a fault plan: which :class:`CrashPoint`\\ s fire.

    Deterministic by construction (the points are given explicitly, not
    drawn), so a crash-chaos example replays exactly.  The durability
    manager consults :meth:`take` at each instant; a point fires at most
    once.
    """

    def __init__(self, points: Sequence[CrashPoint] = ()):
        self.points = list(points)
        self._fired: List[CrashPoint] = []

    def take(self, phase: str, txn: int) -> Optional[CrashPoint]:
        """The not-yet-fired point matching ``(phase, txn)``, consumed."""
        for point in self.points:
            if point.txn == txn and point.phase == phase and point not in self._fired:
                self._fired.append(point)
                return point
        return None

    def fired(self) -> Tuple[CrashPoint, ...]:
        """Points that have fired, in firing order."""
        return tuple(self._fired)

    def __repr__(self) -> str:
        return f"<CrashSchedule points={self.points} fired={len(self._fired)}>"

_CLEAN = None  # sentinel replaced below (FaultDecision defined first)


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one physical transmission."""

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0
    reorder: bool = False
    outage: bool = False

    @property
    def faulty(self) -> bool:
        """True when anything other than clean FIFO delivery was decided."""
        return self.drop or self.duplicates > 0 or self.extra_delay > 0.0 or self.reorder

    def encode(self) -> str:
        """A canonical textual form (used for schedule fingerprints)."""
        return (
            f"drop={int(self.drop)} dup={self.duplicates} "
            f"delay={self.extra_delay!r} reorder={int(self.reorder)} "
            f"outage={int(self.outage)}"
        )


CLEAN_DECISION = FaultDecision()


class FaultPlan:
    """A deterministic schedule of faults for a set of named channels.

    ``channels`` maps channel keys (source names, in the simulated
    environment) to their :class:`ChannelFaults`; ``default`` applies to
    keys not listed.  ``seed`` fixes every random draw.
    """

    def __init__(
        self,
        seed: int = 0,
        channels: Optional[Mapping[str, ChannelFaults]] = None,
        default: ChannelFaults = NO_FAULTS,
        active_until: float = float("inf"),
        fault_free_after_attempt: int = 3,
    ):
        self.seed = int(seed)
        self.channels: Dict[str, ChannelFaults] = dict(channels or {})
        self.default = default
        self.active_until = active_until
        self.fault_free_after_attempt = fault_free_after_attempt

    # ------------------------------------------------------------------
    # Configuration lookup
    # ------------------------------------------------------------------
    def faults_for(self, key: str) -> ChannelFaults:
        """The fault configuration governing one channel key."""
        return self.channels.get(key, self.default)

    def outage_at(self, key: str, time: float) -> Optional[OutageWindow]:
        """The outage window covering ``time`` on ``key``, if any."""
        for window in self.faults_for(key).outages:
            if window.contains(time):
                return window
        return None

    def in_outage(self, key: str, time: float) -> bool:
        """True when ``key`` is inside a scheduled outage at ``time``."""
        return self.outage_at(key, time) is not None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _rng(self, key: str, transmission: int, attempt: int) -> random.Random:
        material = f"{self.seed}:{key}:{transmission}:{attempt}".encode()
        digest = hashlib.sha256(material).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def decide(
        self, key: str, transmission: int, attempt: int = 0, now: float = 0.0
    ) -> FaultDecision:
        """The fate of one physical transmission.

        ``transmission`` is the channel's monotone send counter (every
        physical send, including retransmissions and duplicates, advances
        it), so retries draw fresh fates.  ``attempt`` is the
        retransmission attempt number; at or beyond
        ``fault_free_after_attempt`` rate-based faults are suppressed so
        retry loops provably converge.  Outage windows apply regardless of
        attempt — a crashed link swallows retries too.
        """
        window = self.outage_at(key, now)
        if window is not None:
            return FaultDecision(drop=True, outage=True)
        faults = self.faults_for(key)
        if faults.faultless:
            return CLEAN_DECISION
        if now >= self.active_until or attempt >= self.fault_free_after_attempt:
            return CLEAN_DECISION
        rng = self._rng(key, transmission, attempt)
        # One draw per fault family, in a fixed order, so schedules are
        # stable even when a rate is zero.
        u_drop = rng.random()
        u_dup = rng.random()
        u_delay = rng.random()
        u_reorder = rng.random()
        u_extra = rng.random()
        if u_drop < faults.drop_rate:
            return FaultDecision(drop=True)
        duplicates = 0
        if u_dup < faults.duplicate_rate:
            duplicates = 1 + int(u_extra * faults.max_duplicates) % faults.max_duplicates
        extra_delay = 0.0
        reorder = False
        if u_delay < faults.delay_rate or u_reorder < faults.reorder_rate:
            lo, hi = faults.delay_range
            extra_delay = lo + (hi - lo) * u_extra
            reorder = u_reorder < faults.reorder_rate
        return FaultDecision(
            drop=False, duplicates=duplicates, extra_delay=extra_delay, reorder=reorder
        )

    # ------------------------------------------------------------------
    # Reproducibility helpers
    # ------------------------------------------------------------------
    def schedule(
        self, key: str, n: int, attempt: int = 0, now: float = 0.0
    ) -> List[FaultDecision]:
        """Decisions for transmissions ``0..n-1`` of one channel."""
        return [self.decide(key, i, attempt, now) for i in range(n)]

    def fingerprint(self, key: str, n: int = 256) -> str:
        """SHA-256 over the canonical encoding of the first ``n`` decisions.

        Equal seeds (and configs) yield byte-identical fingerprints — the
        reproducibility contract chaos tests rely on.
        """
        payload = "\n".join(d.encode() for d in self.schedule(key, n)).encode()
        return hashlib.sha256(payload).hexdigest()

    def __repr__(self) -> str:
        keys = sorted(self.channels) or ["<default>"]
        return f"<FaultPlan seed={self.seed} channels={keys}>"
