"""Reliable delivery over faulty channels: sequencing, dedup, retransmit.

Section 4's correctness argument leans on in-order, exactly-once
announcement delivery.  When a :class:`~repro.faults.FaultPlan` breaks that
(drops, duplicates, reorders), this layer restores the contract end to end:

* the **sender** (:class:`ReliableSender`) wraps every announcement in an
  :class:`Envelope` carrying a per-source sequence number, keeps unacked
  envelopes in a retransmission buffer, and retries each one on a
  per-message timeout with exponential backoff (:class:`BackoffPolicy`);
* the **receiver** (:class:`ReliableInbox`) smashes duplicates
  idempotently by sequence number, detects gaps, buffers out-of-order
  arrivals, and releases payloads to its sink strictly in order.

The acknowledgement path is modeled as a reliable (but lazy) back-channel:
the sender observes the inbox's contiguous high-water mark at each timeout
check, which is exactly what a cumulative-ACK protocol conveys.  All
timing flows through the discrete-event simulator — nothing here reads
wall-clock time, so chaos runs remain fully deterministic and replayable.

``ReliableSender.sync_into_inbox`` is the poll-path escape hatch: a poll is
a synchronous request/reply exchange, so before a poll answer is used the
sender hands every still-unacked envelope straight to the inbox.  That
restores the flush-before-answer guarantee the Eager Compensation
Algorithm requires even when announcements were lost in transit.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Envelope",
    "BackoffPolicy",
    "StreamBackoff",
    "ReliableInbox",
    "ReliableSender",
]


@dataclass(frozen=True)
class Envelope:
    """One sequenced announcement in transit."""

    seq: int
    payload: Any
    send_time: float


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry timing: ``base_timeout * multiplier^attempt``, capped.

    ``max_retries`` of ``None`` means retry until acknowledged (the fault
    plan's ``fault_free_after_attempt`` guarantees termination); a finite
    value abandons the message afterwards (counted, never silent).

    ``jitter="decorrelated"`` switches to decorrelated jitter: each delay
    is drawn uniformly from ``[base_timeout, previous * 3]`` and capped,
    which desynchronizes retry storms across senders that failed at the
    same instant.  The draw is a pure function of ``(jitter_seed, key,
    attempt)`` — same inputs, same delay — so chaos runs stay exactly
    replayable; pass a distinct ``key`` per message stream to decorrelate
    streams from each other.
    """

    base_timeout: float = 1.0
    multiplier: float = 2.0
    max_backoff: float = 30.0
    max_retries: Optional[int] = None
    jitter: str = "none"
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise SimulationError("base_timeout must be positive")
        if self.multiplier < 1.0:
            raise SimulationError("multiplier must be >= 1")
        if self.max_backoff < self.base_timeout:
            raise SimulationError("max_backoff must be >= base_timeout")
        if self.jitter not in ("none", "decorrelated"):
            raise SimulationError("jitter must be 'none' or 'decorrelated'")

    def delay(self, attempt: int, key: str = "") -> float:
        """The wait before the ``attempt``-th timeout check (0-based)."""
        if self.jitter == "none":
            return min(
                self.base_timeout * (self.multiplier ** attempt), self.max_backoff
            )
        # Decorrelated jitter, replayed deterministically: rebuild the
        # chain d0 = base, d_n = min(cap, U(base, 3 * d_{n-1})) with each
        # step's uniform draw seeded from (seed, key, step).
        delay = self.base_timeout
        for step in range(1, attempt + 1):
            rng = random.Random(self._draw_seed(key, step))
            delay = min(
                self.max_backoff, rng.uniform(self.base_timeout, delay * 3.0)
            )
        return min(delay, self.max_backoff)

    def _draw_seed(self, key: str, step: int) -> int:
        material = f"{self.jitter_seed}:{key}:{step}".encode()
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


class StreamBackoff:
    """Retry pacing for one *long-lived* stream sharing one policy.

    :class:`ReliableSender` keeps a per-message attempt counter, which is
    the right shape for independent announcements.  A shipping stream is
    different: one logical peer, an unbounded message sequence, one shared
    notion of "is the peer reachable right now".  Naively feeding a
    stream-lifetime retry count into :meth:`BackoffPolicy.delay` pins a
    replica that recovers after a long outage at ``max_backoff`` forever —
    the counter only ever grows.  This wrapper owns the stream's attempt
    counter and **resets it on acknowledged progress**, so the first
    retransmit after a recovered outage waits ``base_timeout`` again.
    """

    def __init__(self, policy: BackoffPolicy, key: str = ""):
        self.policy = policy
        self.key = key
        self.attempt = 0

    def next_delay(self) -> float:
        """The wait before the next retransmission; escalates the counter."""
        delay = self.policy.delay(self.attempt, key=self.key)
        self.attempt += 1
        return delay

    def record_success(self) -> None:
        """Acknowledged progress: the peer is reachable, reset to base."""
        self.attempt = 0

    @property
    def current_delay(self) -> float:
        """What the next :meth:`next_delay` call would return."""
        return self.policy.delay(self.attempt, key=self.key)


class ReliableInbox:
    """Receiver-side sequencing: dedup, gap detection, in-order release."""

    def __init__(
        self,
        sink: Callable[[Envelope], None],
        name: str = "inbox",
        tracer: Tracer = NULL_TRACER,
    ):
        """``sink(envelope)`` is invoked exactly once per sequence number,
        in strictly increasing order."""
        self.tracer = tracer
        self.sink = sink
        self.name = name
        self.next_seq = 0
        self._buffer: Dict[int, Envelope] = {}
        self.delivered = 0
        self.duplicates_dropped = 0
        self.gaps_detected = 0

    @property
    def delivered_through(self) -> int:
        """Highest sequence number released in order (-1 when none yet)."""
        return self.next_seq - 1

    def pending_gap(self) -> bool:
        """True while buffered envelopes wait on a missing predecessor."""
        return bool(self._buffer)

    def missing(self) -> List[int]:
        """Sequence numbers known to be missing (gap detection)."""
        if not self._buffer:
            return []
        horizon = max(self._buffer)
        return [s for s in range(self.next_seq, horizon) if s not in self._buffer]

    def deliver(self, envelope: Envelope) -> int:
        """Accept one arrival; returns how many payloads were released.

        Duplicates (already released or already buffered) are smashed —
        dropped idempotently — and out-of-order arrivals are buffered until
        the gap fills.
        """
        seq = envelope.seq
        if seq < self.next_seq or seq in self._buffer:
            self.duplicates_dropped += 1
            if self.tracer.enabled:
                self.tracer.event("fault_dedup", inbox=self.name, seq=seq)
            return 0
        if seq > self.next_seq:
            self._buffer[seq] = envelope
            self.gaps_detected += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "fault_gap", inbox=self.name, seq=seq, expected=self.next_seq
                )
            return 0
        released = 0
        self._release(envelope)
        released += 1
        while self.next_seq in self._buffer:
            self._release(self._buffer.pop(self.next_seq))
            released += 1
        return released

    def _release(self, envelope: Envelope) -> None:
        self.next_seq = envelope.seq + 1
        self.delivered += 1
        self.sink(envelope)


class ReliableSender:
    """Sender-side retransmission with per-message timeout and backoff.

    ``channel`` must expose ``send(message, attempt=...)`` (the simulated
    faulty channel); ``simulator`` supplies timers; ``inbox`` is the peer
    whose cumulative-ACK high-water mark the timeout checks consult.
    """

    def __init__(
        self,
        channel,
        inbox: ReliableInbox,
        simulator,
        policy: BackoffPolicy,
        tracer: Tracer = NULL_TRACER,
    ):
        self.tracer = tracer
        self.channel = channel
        self.inbox = inbox
        self.simulator = simulator
        self.policy = policy
        self._next_seq = 0
        self._unacked: Dict[int, Envelope] = {}
        self.sent = 0
        self.retransmits = 0
        self.abandoned = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any) -> Envelope:
        """Transmit one payload reliably; returns its envelope."""
        envelope = Envelope(self._next_seq, payload, self.simulator.now)
        self._next_seq += 1
        self._unacked[envelope.seq] = envelope
        self.sent += 1
        self.channel.send(envelope, attempt=0)
        self._schedule_check(envelope.seq, attempt=0)
        return envelope

    def _schedule_check(self, seq: int, attempt: int) -> None:
        self.simulator.schedule(
            self.policy.delay(attempt, key=f"{self.inbox.name}#{seq}"),
            lambda: self._check(seq, attempt),
            f"{self.inbox.name}: ack check #{seq} (attempt {attempt})",
        )

    def _check(self, seq: int, attempt: int) -> None:
        if seq not in self._unacked:
            return  # already resolved (acked via sync, or abandoned)
        if self.inbox.delivered_through >= seq:
            del self._unacked[seq]
            return  # cumulative ACK covers it
        if self.policy.max_retries is not None and attempt >= self.policy.max_retries:
            del self._unacked[seq]
            self.abandoned += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "fault_abandoned", inbox=self.inbox.name, seq=seq, attempts=attempt
                )
            return
        self.retransmits += 1
        if self.tracer.enabled:
            self.tracer.event(
                "fault_retransmit", inbox=self.inbox.name, seq=seq, attempt=attempt + 1
            )
        self.channel.send(self._unacked[seq], attempt=attempt + 1)
        self._schedule_check(seq, attempt + 1)

    # ------------------------------------------------------------------
    # Introspection and the synchronous poll path
    # ------------------------------------------------------------------
    def unacked_count(self) -> int:
        """Envelopes not yet covered by the cumulative ACK."""
        self._prune()
        return len(self._unacked)

    def _prune(self) -> None:
        acked = [s for s in self._unacked if s <= self.inbox.delivered_through]
        for seq in acked:
            del self._unacked[seq]

    def sync_into_inbox(self) -> int:
        """Hand every unacked envelope directly to the inbox (poll path).

        A poll is a synchronous request/reply exchange with the source, so
        the mediator may recover outstanding announcements through it —
        this fills any gaps the faulty channel left, guaranteeing the
        update queue is complete before a poll answer is used.  Returns the
        number of payloads the inbox released.
        """
        self._prune()
        released = 0
        for seq in sorted(self._unacked):
            released += self.inbox.deliver(self._unacked[seq])
        self._prune()
        return released
