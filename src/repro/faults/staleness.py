"""Staleness tags: what a degraded answer admits about its own freshness.

When a contributing source is inside an outage window, the mediator keeps
serving materialized data (Section 2's core promise — materialized
attributes answer without source contact) but the Theorem 7.2 freshness
bound no longer holds for that source: no announcement can arrive while
the link is down.  Rather than pretend, a degraded answer carries a
:class:`StalenessTag` stating, per unavailable source, a lower bound on
how far behind the served data may be — measured with the same per-source
staleness vocabulary as :mod:`repro.correctness.freshness` (which re-exports
these types and checks tags against analytic bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["StalenessTag", "TaggedAnswer"]


@dataclass(frozen=True)
class StalenessTag:
    """Freshness disclosure attached to an answer served under degradation.

    ``staleness`` maps each currently unavailable source to a lower bound
    on the age of the data served for it: ``now`` minus the send time of
    the last update reflected in the materialized store (``inf`` when no
    update from that source has ever been reflected and no outage start is
    known).  Sources absent from the mapping were reachable at answer
    time, so the ordinary Theorem 7.2 bound governs them.
    """

    time: float
    staleness: Mapping[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one contributing source was unavailable."""
        return bool(self.staleness)

    @property
    def unavailable(self) -> Tuple[str, ...]:
        """The sources that were unavailable at answer time, sorted."""
        return tuple(sorted(self.staleness))

    def worst(self) -> float:
        """The largest per-source staleness bound (0.0 when fresh)."""
        return max(self.staleness.values(), default=0.0)

    def within_bound(self, bound: Mapping[str, float]) -> bool:
        """True when every tagged source's staleness respects ``bound``
        (sources without a bound entry are unconstrained)."""
        for source, value in self.staleness.items():
            limit = bound.get(source)
            if limit is not None and value > limit + 1e-9:
                return False
        return True


@dataclass(frozen=True)
class TaggedAnswer:
    """A query answer plus the staleness tag it was served under."""

    value: object  # a Relation; typed loosely to keep this module dependency-free
    tag: StalenessTag

    @property
    def degraded(self) -> bool:
        """True when the answer was served while a source was unavailable."""
        return self.tag.degraded
