"""The mediator's incremental-update queue (Section 4, Section 6.1).

Holds announcements from source databases in arrival order.  The IUP's
initialization step "flushes" the queue — takes every currently queued
update — and smashes them into a single delta (:meth:`UpdateQueue.flush`).
Updates arriving during an update transaction "remain in the queue until
the next cycle" (Section 6.4 step 1b); with our transactional drivers that
simply means they are enqueued after the flush.

For the Eager Compensation Algorithm (Section 6.3),
:meth:`UpdateQueue.pending_for_source` exposes the queued-but-unprocessed
deltas of one source without consuming them: those are exactly the updates
whose inverse smash brings a freshly polled answer back to the state the
materialized data reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.deltas import SetDelta, net_accumulate

__all__ = ["QueuedUpdate", "UpdateQueue"]


@dataclass(frozen=True)
class QueuedUpdate:
    """One announcement sitting in the queue."""

    source: str
    delta: SetDelta
    send_time: Optional[float] = None  # simulated send time, when available
    arrival_time: Optional[float] = None


class UpdateQueue:
    """An in-order queue of source announcements."""

    def __init__(self) -> None:
        self._entries: List[QueuedUpdate] = []
        self.total_enqueued = 0
        self.total_flushed = 0

    def enqueue(
        self,
        source: str,
        delta: SetDelta,
        send_time: Optional[float] = None,
        arrival_time: Optional[float] = None,
    ) -> None:
        """Append one announcement (a single indivisible net-update message)."""
        self._entries.append(QueuedUpdate(source, delta, send_time, arrival_time))
        self.total_enqueued += 1

    def __len__(self) -> int:
        return len(self._entries)

    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._entries

    def flush(self) -> Tuple[Optional[SetDelta], List[QueuedUpdate]]:
        """Empty the queue; return the combined net delta and the entries.

        This is the IUP's ``empty_queue`` moment.  Entries are folded in
        arrival order with *cancellation* semantics (``net_accumulate``),
        not smash: two in-order messages from one source may carry ``+X``
        then ``-X`` (insert then delete between flushes), whose true net
        effect is nothing — smash would instead keep a spurious ``-X`` that
        corrupts leaf-parent bag multiplicities.  Entries from different
        sources mention disjoint relations, so one sequential fold is both
        safe and order-faithful.
        """
        entries = self._entries
        self._entries = []
        self.total_flushed += len(entries)
        if not entries:
            return None, entries
        combined = SetDelta()
        for entry in entries:
            combined = net_accumulate(combined, entry.delta)
        return combined, entries

    def pending_for_source(self, source: str) -> List[SetDelta]:
        """Queued (unflushed) deltas of one source, in arrival order."""
        return [e.delta for e in self._entries if e.source == source]

    def last_send_time(self, source: str) -> Optional[float]:
        """Send time of the most recent queued announcement from a source."""
        times = [e.send_time for e in self._entries if e.source == source and e.send_time is not None]
        return times[-1] if times else None

    def peek(self) -> List[QueuedUpdate]:
        """A copy of the current entries (observers only)."""
        return list(self._entries)
