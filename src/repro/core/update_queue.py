"""The mediator's incremental-update queue (Section 4, Section 6.1).

Holds announcements from source databases in arrival order.  The IUP's
initialization step "flushes" the queue — takes every currently queued
update — and smashes them into a single delta (:meth:`UpdateQueue.flush`).
Updates arriving during an update transaction "remain in the queue until
the next cycle" (Section 6.4 step 1b); with our transactional drivers that
simply means they are enqueued after the flush.

For the Eager Compensation Algorithm (Section 6.3),
:meth:`UpdateQueue.pending_for_source` exposes the queued-but-unprocessed
deltas of one source without consuming them: those are exactly the updates
whose inverse smash brings a freshly polled answer back to the state the
materialized data reflects.

The paper's Section 4 message assumption — in-order, exactly-once — is
load-bearing: folding one source's deltas in the wrong order (or twice)
corrupts the net (``+X`` then ``-X`` nets to nothing; reversed, it nets to
an insert).  Under faulty links the reliability layer
(:mod:`repro.faults.reliable`) restores that contract upstream, and the
queue defends in depth: an announcement carrying a per-source sequence
number is deduplicated idempotently and, if it arrives ahead of a
lower-numbered sibling, is held in sequence order so the flush fold stays
faithful to the source's commit timeline.

When an update transaction must be abandoned mid-flight (a needed source
went down between flush and poll — see :class:`~repro.errors.SourceUnavailableError`),
:meth:`UpdateQueue.requeue_front` puts the flushed entries back at the head
so the next cycle retries them, ahead of anything that arrived since.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.deltas import SetDelta, net_accumulate
from repro.obs.provenance import TxnOrigin

__all__ = ["QueueStats", "QueuedUpdate", "UpdateQueue"]


@dataclass
class QueueStats:
    """Flush-fold counters, registered with the mediator's metrics registry.

    ``deltas_compacted`` counts the atoms the pre-compaction fold removed:
    the gross atom count of every flushed message minus the atom count of
    the per-source net deltas actually handed to the IUP.  Cancellation
    (``+X`` then ``-X``) and coalescing both land here — it is the exact
    amount of propagation input the fold saved.
    """

    deltas_compacted: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)


@dataclass(frozen=True)
class QueuedUpdate:
    """One announcement sitting in the queue."""

    source: str
    delta: SetDelta
    send_time: Optional[float] = None  # simulated send time, when available
    arrival_time: Optional[float] = None
    seq: Optional[int] = None  # per-source sequence number, when sequenced
    txn_id: int = 0  # monotone per-source stamp assigned at enqueue
    #: The source-log cursor this announcement brings a reader up to (the
    #: source's transaction count at announcement-take time), when the
    #: collector threads it through.  Durability records it in the WAL so a
    #: restart knows where each source's log replay should resume.
    cursor: Optional[int] = None

    @property
    def origin(self) -> TxnOrigin:
        """This announcement's provenance origin (``source#txn_id``)."""
        return TxnOrigin(self.source, self.txn_id)


class UpdateQueue:
    """An in-order queue of source announcements."""

    def __init__(self) -> None:
        self._entries: List[QueuedUpdate] = []
        self._seen_seqs: Dict[str, Set[int]] = {}
        self._last_flushed_send: Dict[str, float] = {}
        self._reflected_cursors: Dict[str, int] = {}
        # Announcement sinks fire from VAP poll worker threads when sources
        # are polled concurrently; everything touching the entry list takes
        # this lock so arrival order stays a single consistent sequence.
        self._lock = threading.Lock()
        self._txn_counters: Dict[str, int] = {}
        self.total_enqueued = 0
        self.total_flushed = 0
        self.total_requeued = 0
        self.duplicates_dropped = 0
        self.reordered_arrivals = 0
        self.batches_flushed = 0
        self.messages_folded = 0
        self.stats = QueueStats()

    def enqueue(
        self,
        source: str,
        delta: SetDelta,
        send_time: Optional[float] = None,
        arrival_time: Optional[float] = None,
        seq: Optional[int] = None,
        cursor: Optional[int] = None,
    ) -> bool:
        """Accept one announcement (a single indivisible net-update message).

        With ``seq`` given, duplicates of an already-seen ``(source, seq)``
        are smashed idempotently (dropped, counted) and an arrival that
        overtook a lower-numbered same-source message is inserted in
        sequence order rather than arrival order.  Returns True when the
        entry was actually queued.

        Every *accepted* entry is stamped with a monotone per-source
        ``txn_id`` — the announcement's provenance origin
        (:class:`~repro.obs.provenance.TxnOrigin`).  Duplicates never
        consume an id, so one source transaction keeps one identity no
        matter how many times the network re-delivers it.
        """
        with self._lock:
            if seq is not None:
                seen = self._seen_seqs.setdefault(source, set())
                if seq in seen:
                    self.duplicates_dropped += 1
                    return False
                seen.add(seq)
            txn_id = self._txn_counters.get(source, 0) + 1
            self._txn_counters[source] = txn_id
            entry = QueuedUpdate(
                source, delta, send_time, arrival_time, seq, txn_id, cursor
            )
            position = len(self._entries)
            if seq is not None:
                for i, existing in enumerate(self._entries):
                    if (
                        existing.source == source
                        and existing.seq is not None
                        and existing.seq > seq
                    ):
                        position = i
                        break
            if position < len(self._entries):
                self.reordered_arrivals += 1
                self._entries.insert(position, entry)
            else:
                self._entries.append(entry)
            self.total_enqueued += 1
            return True

    def __len__(self) -> int:
        return len(self._entries)

    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._entries

    def flush(self) -> Tuple[Optional[SetDelta], List[QueuedUpdate]]:
        """Empty the queue; return the combined net delta and the entries.

        This is the IUP's ``empty_queue`` moment.  Entries are folded in
        arrival order with *cancellation* semantics (``net_accumulate``),
        not smash: two in-order messages from one source may carry ``+X``
        then ``-X`` (insert then delete between flushes), whose true net
        effect is nothing — smash would instead keep a spurious ``-X`` that
        corrupts leaf-parent bag multiplicities.  Entries from different
        sources mention disjoint relations, so folding each source's
        messages into one per-source batch first, then combining batches,
        is both safe and order-faithful — and hands the IUP one net delta
        per source regardless of how many announcements arrived, so N
        messages cost a single propagation pass.
        """
        with self._lock:
            entries = self._entries
            self._entries = []
            self.total_flushed += len(entries)
        if not entries:
            return None, entries
        per_source: Dict[str, SetDelta] = {}
        source_order: List[str] = []
        for entry in entries:
            existing = per_source.get(entry.source)
            if existing is None:
                per_source[entry.source] = entry.delta
                source_order.append(entry.source)
            else:
                per_source[entry.source] = net_accumulate(existing, entry.delta)
        self.batches_flushed += len(source_order)
        self.messages_folded += len(entries)
        gross = sum(entry.delta.atom_count() for entry in entries)
        net = sum(delta.atom_count() for delta in per_source.values())
        self.stats.deltas_compacted += gross - net
        combined = SetDelta()
        for source in source_order:
            combined = net_accumulate(combined, per_source[source])
        return combined, entries

    def requeue_front(self, entries: Sequence[QueuedUpdate]) -> None:
        """Put flushed-but-unprocessed entries back at the head of the queue.

        Used when an update transaction is abandoned after its flush (e.g.
        a required source went down before the VAP could poll it): the
        entries must be retried *before* anything that arrived since, or
        per-source ordering breaks.
        """
        if not entries:
            return
        with self._lock:
            self._entries = list(entries) + self._entries
            self.total_requeued += len(entries)
            self.total_flushed -= len(entries)

    def mark_reflected(self, entries: Sequence[QueuedUpdate]) -> None:
        """Record that flushed entries were actually propagated into the
        materialized data (the IUP calls this after its kernel completes —
        not when a transaction is deferred).  Feeds staleness tags."""
        for entry in entries:
            if entry.send_time is not None:
                previous = self._last_flushed_send.get(entry.source, float("-inf"))
                self._last_flushed_send[entry.source] = max(previous, entry.send_time)
            if entry.cursor is not None:
                self.note_reflected_cursor(entry.source, entry.cursor)

    def note_reflected_cursor(self, source: str, cursor: int) -> None:
        """Record that the materialized data reflects ``source``'s log
        through ``cursor`` (monotone — lower values never regress it).
        Seeded at view initialization and advanced by
        :meth:`mark_reflected` for cursor-carrying entries."""
        previous = self._reflected_cursors.get(source, -1)
        self._reflected_cursors[source] = max(previous, cursor)

    def reflected_cursor(self, source: str) -> Optional[int]:
        """The highest source-log cursor known to be reflected in the
        materialized data, or ``None`` when no cursor was ever threaded
        through for this source."""
        return self._reflected_cursors.get(source)

    def discard_source(self, source: str) -> int:
        """Drop every queued entry of one source; returns how many.

        Selective re-initialization replaces a source's materialized
        contributions with a fresh snapshot — announcements queued before
        the swap describe transactions the snapshot already reflects, and
        flushing them afterwards would double-apply.
        """
        with self._lock:
            kept = [e for e in self._entries if e.source != source]
            dropped = len(self._entries) - len(kept)
            self._entries = kept
            return dropped

    def forget_source(self, source: str) -> int:
        """Drop *all* state of one source: queued entries, dedup history,
        txn counter, cursors, send times.  Returns how many queued entries
        were dropped.

        Used when a source leaves the federation.  Unlike
        :meth:`discard_source` (which keeps sequencing state so the same
        source's later announcements still deduplicate), this forgets the
        source completely — if it ever re-attaches it starts a fresh
        sequencing timeline, exactly like a source never seen before.
        """
        with self._lock:
            kept = [e for e in self._entries if e.source != source]
            dropped = len(self._entries) - len(kept)
            self._entries = kept
            self._seen_seqs.pop(source, None)
            self._txn_counters.pop(source, None)
            self._reflected_cursors.pop(source, None)
            self._last_flushed_send.pop(source, None)
            return dropped

    def pending_for_source(self, source: str) -> List[SetDelta]:
        """Queued (unflushed) deltas of one source, in arrival order."""
        with self._lock:
            return [e.delta for e in self._entries if e.source == source]

    def last_send_time(self, source: str) -> Optional[float]:
        """Send time of the most recent queued announcement from a source."""
        with self._lock:
            times = [
                e.send_time
                for e in self._entries
                if e.source == source and e.send_time is not None
            ]
        return times[-1] if times else None

    def last_flushed_send_time(self, source: str) -> Optional[float]:
        """Send time of the newest update of ``source`` ever flushed into an
        update transaction — i.e. how recent the materialized data's
        knowledge of that source is.  Feeds staleness tags."""
        value = self._last_flushed_send.get(source)
        return value if value != float("-inf") else None

    def peek(self) -> List[QueuedUpdate]:
        """A copy of the current entries (observers only)."""
        with self._lock:
            return list(self._entries)
