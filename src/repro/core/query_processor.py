"""The Query Processor (Section 4, Section 6.3).

The QP is the mediator's query interface.  "Upon receiving a query against
the view, the QP determines first whether the query can be answered solely
based on the materialized portion of the view.  In case virtual data is
needed ... the QP requests the VAP to construct temporary relations
containing the relevant data."

Queries are algebra expressions over the VDP's non-leaf relations (usually
the export relations).  The QP computes, per referenced relation, the
attribute set the query touches (the same lineage walk that powers
``derived_from``); relations whose touched attributes are all materialized
are read straight from the local store, the rest go through the VAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.derived_from import TempRequest, child_requirements
from repro.core.local_store import LocalStore
from repro.core.vap import VirtualAttributeProcessor
from repro.core.vdp import AnnotatedVDP
from repro.errors import MediatorError
from repro.obs.metrics import reset_dataclass_counters
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import (
    TRUE,
    Evaluator,
    Expression,
    Predicate,
    Project,
    Relation,
    Scan,
    Select,
    TruePredicate,
)

__all__ = ["QPStats", "QueryProcessor"]


@dataclass
class QPStats:
    """Counters exposed to benchmarks."""

    queries: int = 0
    materialized_only: int = 0
    with_virtual: int = 0

    def reset(self) -> None:
        """Zero every counter (fields-derived; new counters reset for free)."""
        reset_dataclass_counters(self)


class QueryProcessor:
    """Answers queries against the integrated view."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        store: LocalStore,
        vap: VirtualAttributeProcessor,
        tracer: Tracer = NULL_TRACER,
    ):
        self.tracer = tracer
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.store = store
        self.vap = vap
        self.stats = QPStats()

    # ------------------------------------------------------------------
    def query(self, expr: Expression, name: str = "answer") -> Relation:
        """Answer an algebra query over the mediator's non-leaf relations."""
        tracer = self.tracer
        with tracer.span("query", answer=name) as span:
            refs = sorted(expr.relation_names())
            self._check_refs(refs)
            self.stats.queries += 1

            requests = self._requests_for(expr, refs)
            uncovered = [r for r in requests.values() if not self._covered(r)]
            if tracer.enabled:
                tracer.event(
                    "query_classify",
                    refs=refs,
                    uncovered=sorted(r.relation for r in uncovered),
                )
            if uncovered:
                self.stats.with_virtual += 1
                # Only the uncovered requests go to the VAP: covered relations
                # are read straight from the store below, and handing them over
                # anyway would pollute the VAP's temp cache hit/miss accounting
                # (plan() would just re-derive their coveredness and drop them).
                temps = self.vap.materialize(uncovered)
            else:
                self.stats.materialized_only += 1
                temps = {}

            catalog: Dict[str, Relation] = {}
            for ref in refs:
                if ref in temps:
                    catalog[ref] = temps[ref]
                elif self.store.has_repo(ref):
                    catalog[ref] = self.store.repo(ref)
                else:
                    raise MediatorError(f"no data available for relation {ref!r}")
            schemas = {alias: rel.schema.rename_relation(alias) for alias, rel in catalog.items()}
            evaluator = Evaluator(catalog, schemas=schemas, counters=self.store.counters)
            with tracer.span("query_evaluate"):
                answer = evaluator.evaluate(expr, name)
            span.set(rows=answer.cardinality(), virtual=bool(uncovered))
            return answer

    def query_relation(
        self,
        relation: str,
        attrs: Optional[Sequence[str]] = None,
        predicate: Predicate = TRUE,
        name: str = "answer",
    ) -> Relation:
        """The paper's query form ``π_A σ_f R`` against one view relation."""
        node = self.vdp.node(relation)
        attrs = tuple(attrs) if attrs is not None else node.schema.attribute_names
        expr: Expression = Scan(relation)
        if not isinstance(predicate, TruePredicate):
            expr = Select(expr, predicate)
        return self.query(Project(expr, attrs), name)

    # ------------------------------------------------------------------
    def _check_refs(self, refs: Iterable[str]) -> None:
        for ref in refs:
            node = self.vdp.node(ref)  # raises for unknown names
            if node.is_leaf:
                raise MediatorError(
                    f"queries run against mediator relations, not source leaf {ref!r}"
                )

    def _requests_for(self, expr: Expression, refs: Sequence[str]) -> Dict[str, TempRequest]:
        """Per-relation data requirements of the query.

        For the common single-relation chain ``π_A σ_f (R)`` the request is
        formed directly with ``f`` pushed into it (so a poll fetches only
        the selected rows); general expressions use the lineage walk.
        """
        chain = self._as_chain(expr)
        if chain is not None:
            relation, attrs, predicate = chain
            return {relation: TempRequest(relation, attrs, predicate)}
        schemas = self.vdp.schemas()
        output = frozenset(expr.infer_schema(schemas, "q").attribute_names)
        return child_requirements(expr, output, TRUE, schemas)

    @staticmethod
    def _as_chain(expr: Expression) -> Optional[Tuple[str, FrozenSet[str], Predicate]]:
        attrs: Optional[FrozenSet[str]] = None
        predicate: Predicate = TRUE
        node = expr
        while True:
            if isinstance(node, Project):
                if attrs is None:
                    attrs = frozenset(node.attrs)
                node = node.child
            elif isinstance(node, Select):
                predicate = predicate & node.predicate if not isinstance(predicate, TruePredicate) else node.predicate
                node = node.child
            elif isinstance(node, Scan):
                if attrs is None:
                    return None  # full scan: fall through to the generic path
                return node.name, attrs | predicate.attributes(), predicate
            else:
                return None

    def _covered(self, request: TempRequest) -> bool:
        if not self.store.has_repo(request.relation):
            return False
        ann = self.annotated.annotation(request.relation)
        return ann.covers(request.attrs | request.predicate.attributes())
