"""The Virtual Attribute Processor (Section 6.3).

The VAP materializes *temporary relations* holding the current value of
(projections of) virtual or hybrid relations, on behalf of the query
processor (answering queries that touch virtual attributes) and of the IUP
(supplying virtual relations that rules must read).

Phase 1 — *planning* (:meth:`VirtualAttributeProcessor.plan`): starting
from the input set ``{(R_i, A_i, f_i)}``, repeatedly expand the earliest
(parents-first) unprocessed request via ``derived_from``; child requests
already answerable from materialized storage stop the recursion; requests
for the same relation are merged (attribute union, selection disjunction —
the paper's step (2b)).  For a hybrid join node whose materialized
attributes include a child's key, the planner may instead choose the
*key-based construction* of Example 2.3, which reconstructs the virtual
attributes by natural-joining the node's own stored projection with a
key+virtual-attribute projection of that child — often avoiding polls of
other children entirely.

Phase 2 — *construction* (:meth:`VirtualAttributeProcessor.construct`):
temporaries are built bottom-up.  Leaf-parent temporaries poll their source
database; all polls against one source are packaged into a single source
transaction (one snapshot), so at most one state of each source contributes
to a view state.  Poll answers from announcing (hybrid-contributor) sources
are rewound by the Eager Compensation Algorithm so they match the state the
materialized data already reflects.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.compensation import compensate
from repro.core.derived_from import TempRequest, derived_from, narrow_definition
from repro.core.links import SourceLink
from repro.core.local_store import LocalStore
from repro.core.update_queue import UpdateQueue
from repro.core.vap_cache import VAPTempCache
from repro.core.vdp import AnnotatedVDP, NodeKind
from repro.deltas import AnyDelta, SetDelta
from repro.errors import MediatorError, SourceUnavailableError
from repro.obs.metrics import reset_dataclass_counters
from repro.obs.provenance import origin_labels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import (
    TRUE,
    Evaluator,
    Expression,
    Join,
    Project,
    Relation,
    Scan,
    Select,
    TruePredicate,
    conjoin,
    conjuncts,
)
from repro.sources.contributors import ContributorKind

__all__ = ["PlannedTemp", "VAPStats", "VirtualAttributeProcessor"]


@dataclass(frozen=True)
class PlannedTemp:
    """One temporary relation the VAP has decided to construct."""

    request: TempRequest
    strategy: str  # "poll" | "children" | "key-based"
    key_attrs: Tuple[str, ...] = ()
    virtual_children: Tuple[str, ...] = ()

    @property
    def relation(self) -> str:
        """The VDP node this temporary stands in for."""
        return self.request.relation


@dataclass
class VAPStats:
    """Counters exposed to benchmarks."""

    polls: int = 0
    polled_sources: int = 0
    polled_rows: int = 0
    temps_built: int = 0
    key_based_used: int = 0
    compensations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    subsumption_hits: int = 0
    parallel_poll_batches: int = 0
    poll_wall_time: float = 0.0  # seconds spent waiting on source polls

    def reset(self) -> None:
        """Zero every counter (fields-derived; new counters reset for free)."""
        reset_dataclass_counters(self)


class VirtualAttributeProcessor:
    """Plans and constructs temporary relations for virtual data."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        store: LocalStore,
        links: Mapping[str, SourceLink],
        queue: UpdateQueue,
        contributor_kinds: Mapping[str, ContributorKind],
        eca_enabled: bool = True,
        key_based_enabled: bool = True,
        cache_enabled: bool = True,
        parallel_polls: bool = True,
        max_poll_workers: int = 8,
        tracer: Tracer = NULL_TRACER,
    ):
        self.tracer = tracer
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.store = store
        self.links = dict(links)
        self.queue = queue
        self.contributor_kinds = dict(contributor_kinds)
        self.eca_enabled = eca_enabled
        self.key_based_enabled = key_based_enabled
        self.cache_enabled = cache_enabled
        self.parallel_polls = parallel_polls
        self.max_poll_workers = max_poll_workers
        self.stats = VAPStats()
        self.cache = VAPTempCache(self.vdp)
        self._cache_bypass = False
        self._cacheable_memo: Dict[str, bool] = {}
        self._topo_index = {name: i for i, name in enumerate(self.vdp.topological_order())}

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def materialize(
        self,
        requests: Iterable[TempRequest],
        in_flight: Optional[Mapping[str, List[SetDelta]]] = None,
    ) -> Dict[str, Relation]:
        """Plan and construct temporaries for the given requests.

        Returns a mapping from VDP node name to the temporary relation
        standing in for it.  ``in_flight`` carries, per source, the deltas
        flushed for the update transaction in progress (the IUP context);
        they join the queued deltas in the compensation set.
        """
        with self.tracer.span("vap_materialize") as span:
            served: Dict[str, Relation] = {}
            planned = self.plan(requests, served)
            temps = self.construct(planned, in_flight or {}, initial=served)
            span.set(temps=sorted(temps))
            return temps

    # ------------------------------------------------------------------
    # Temp cache management
    # ------------------------------------------------------------------
    def _cacheable(self, relation: str) -> bool:
        """Whether temporaries for ``relation`` may be served from / stored
        in the cache.  Requires eager compensation (it pins every
        constructed temp to the materialized state, making "invalidate on
        transaction apply" exact) and that every source under the node
        announces its updates — a non-announcing virtual contributor can
        change without the mediator ever hearing, so its polls stay live.
        """
        if not self.cache_enabled or not self.eca_enabled or self._cache_bypass:
            return False
        memo = self._cacheable_memo.get(relation)
        if memo is None:
            kinds = (
                self.contributor_kinds.get(s)
                for s in self.vdp.sources_below(relation)
            )
            memo = all(k is not None and k.announces for k in kinds)
            self._cacheable_memo[relation] = memo
        return memo

    def invalidate_cache(self, leaf_deltas: Mapping[str, AnyDelta]) -> int:
        """Drop cache entries whose lineage the applied deltas touch (called
        by the IUP right after the kernel advances the materialized state).
        Returns the number of entries dropped.

        With tracing on, each drop is emitted as a ``cache_invalidate``
        event naming the leaves whose filtered deltas killed the entry and
        — when provenance tracking is on — the origin set of the source
        transactions responsible (the union of the triggering leaves'
        committed origins)."""
        victims = self.cache.invalidate_detailed(leaf_deltas)
        self.stats.cache_invalidations += len(victims)
        tracer = self.tracer
        if tracer.enabled and victims:
            prov = tracer.provenance
            for victim in victims:
                origins = frozenset().union(
                    *(prov.origins_of(leaf) for leaf in victim.triggering_leaves)
                ) if victim.triggering_leaves else frozenset()
                tracer.event(
                    "cache_invalidate",
                    relation=victim.relation,
                    attrs=sorted(victim.request.attrs),
                    leaves=sorted(victim.triggering_leaves),
                    origins=origin_labels(origins),
                )
        return len(victims)

    def clear_cache(self) -> None:
        """Drop every cached temporary (view re-initialization)."""
        self.cache.clear()

    @contextmanager
    def cache_bypassed(self) -> Iterator[None]:
        """Run with the temp cache inert — no lookups, no fills.  The
        correctness harness uses this for cold-cache recomputation."""
        previous = self._cache_bypass
        self._cache_bypass = True
        try:
            yield
        finally:
            self._cache_bypass = previous

    # ------------------------------------------------------------------
    # Phase 1: planning
    # ------------------------------------------------------------------
    def plan(
        self,
        requests: Iterable[TempRequest],
        served: Optional[Dict[str, Relation]] = None,
    ) -> List[PlannedTemp]:
        """The first VAP phase: decide every temporary to construct.

        The result is ordered parents-first (reverse it for construction).
        When ``served`` is given, each request is first offered to the temp
        cache at expansion time (i.e. *after* same-relation merging); a hit
        lands the value in ``served`` and prunes the node's entire subtree
        from the plan — no child requests, no polls.
        """
        tracer = self.tracer
        with tracer.span("vap_plan") as span:
            unprocessed: Dict[str, TempRequest] = {}
            for request in requests:
                if self._covered_by_storage(request):
                    continue  # answerable straight from the local store
                self._merge_request(unprocessed, request)

            processed: List[PlannedTemp] = []
            seen: Dict[str, int] = {}
            while unprocessed:
                # Earliest in parents-first order == highest topological index.
                name = max(unprocessed, key=lambda n: self._topo_index[n])
                request = unprocessed.pop(name)
                if served is not None and self._cacheable(name):
                    hit = self.cache.lookup(request)
                    if hit is not None:
                        value, subsumed = hit
                        served[name] = value
                        self.stats.cache_hits += 1
                        if subsumed:
                            self.stats.subsumption_hits += 1
                        if tracer.enabled:
                            tracer.event(
                                "cache_hit", relation=name, subsumption=subsumed
                            )
                        continue  # subtree pruned: children never requested
                    self.stats.cache_misses += 1
                    if tracer.enabled:
                        tracer.event("cache_miss", relation=name)
                elif (
                    tracer.enabled
                    and served is not None
                    and self._cache_bypass
                    and self.cache_enabled
                ):
                    tracer.event("cache_bypass", relation=name)
                plan = self._plan_one(request, unprocessed)
                if name in seen:
                    raise MediatorError(f"VAP planning revisited node {name!r}")
                seen[name] = len(processed)
                processed.append(plan)
            span.set(
                planned=[f"{p.relation}:{p.strategy}" for p in processed],
                served=sorted(served) if served else [],
            )
            return processed

    def _merge_request(self, pending: Dict[str, TempRequest], request: TempRequest) -> None:
        existing = pending.get(request.relation)
        pending[request.relation] = existing.merge(request) if existing else request

    def _covered_by_storage(self, request: TempRequest) -> bool:
        name = request.relation
        if not self.store.has_repo(name):
            return False
        ann = self.annotated.annotation(name)
        return ann.covers(request.attrs | request.predicate.attributes())

    def _plan_one(self, request: TempRequest, unprocessed: Dict[str, TempRequest]) -> PlannedTemp:
        name = request.relation
        node = self.vdp.node(name)
        children = self.vdp.children(name)
        if any(self.vdp.node(c).is_leaf for c in children):
            # Leaf-parent: constructed by polling the source (restriction (a)
            # guarantees a single leaf child and a pure select/project chain).
            return PlannedTemp(request, "poll")

        child_requests = derived_from(self.vdp, name, request.attrs, request.predicate)
        key_plan = self._try_key_based(request, child_requests) if self.key_based_enabled else None
        if key_plan is not None:
            plan, needed = key_plan
        else:
            plan = PlannedTemp(request, "children")
            needed = child_requests
        for child_request in needed:
            if not self._covered_by_storage(child_request):
                self._merge_request(unprocessed, child_request)
        return plan

    def _try_key_based(
        self, request: TempRequest, child_requests: List[TempRequest]
    ) -> Optional[Tuple[PlannedTemp, List[TempRequest]]]:
        """Attempt the Example 2.3 key-based construction.

        Applicable when the node is a hybrid bag node whose stored
        projection contains, for every child that must supply virtual
        attributes, a key of that child that functionally determines them.
        Chosen when it polls/fetches strictly fewer children than the
        children-based construction.
        """
        name = request.relation
        node = self.vdp.node(name)
        if node.kind is not NodeKind.BAG or not self.store.has_repo(name):
            return None
        # The construction relies on π_{K∪A_v}(node) ⊆ π_{K∪A_v}(child) —
        # true for SPJ definitions (every output row embeds a row of each
        # child) but FALSE for unions, where a row may come from the other
        # branch entirely.
        from repro.relalg import Union as _Union

        if isinstance(node.definition, _Union):
            return None
        ann = self.annotated.annotation(name)
        if not ann.hybrid:
            return None
        materialized = frozenset(ann.materialized_attrs)
        virtual_needed = frozenset(request.attrs) - materialized
        if not virtual_needed:
            return None
        # Children that would require a fetch under the children-based plan.
        uncovered = [cr for cr in child_requests if not self._covered_by_storage(cr)]
        if not uncovered:
            return None

        key_attrs: List[str] = []
        fetch_requests: List[TempRequest] = []
        virtual_children: List[str] = []
        remaining = set(virtual_needed)
        for child_request in child_requests:
            child = child_request.relation
            child_attrs = frozenset(self.vdp.node(child).schema.attribute_names)
            supplied = remaining & child_attrs
            if not supplied:
                continue
            child_fds = self.vdp.fds(child)
            child_key = self._find_key(child, supplied, materialized & child_attrs)
            if child_key is None:
                return None  # some virtual attribute has no key-based path
            key_attrs.extend(a for a in child_key if a not in key_attrs)
            fetch_attrs = frozenset(child_key) | supplied
            pushable = [
                c for c in conjuncts(request.predicate) if c.attributes() <= fetch_attrs
            ]
            fetch = TempRequest(child, fetch_attrs, conjoin(*pushable) if pushable else TRUE)
            fetch_requests.append(fetch)
            virtual_children.append(child)
            remaining -= supplied
        if remaining:
            return None

        needed_fetches = [fr for fr in fetch_requests if not self._covered_by_storage(fr)]
        if len(needed_fetches) >= len(uncovered):
            return None  # no saving over the children-based plan
        plan = PlannedTemp(
            request,
            "key-based",
            key_attrs=tuple(key_attrs),
            virtual_children=tuple(virtual_children),
        )
        self.stats.key_based_used += 1
        if self.tracer.enabled:
            self.tracer.event(
                "key_based",
                relation=name,
                key=list(key_attrs),
                children=list(virtual_children),
            )
        return plan, fetch_requests

    def _find_key(
        self, child: str, supplied: FrozenSet[str], candidate_pool: FrozenSet[str]
    ) -> Optional[Tuple[str, ...]]:
        """A minimal subset of the node's materialized attributes (restricted
        to ``child``'s attributes) that functionally determines ``supplied``
        in the child — typically the child's declared key."""
        fds = self.vdp.fds(child)
        declared = self.vdp.node(child).schema.key
        if declared and set(declared) <= candidate_pool and supplied <= fds.closure(declared):
            return tuple(declared)
        # Fall back to any single materialized attribute that determines all.
        for attr in sorted(candidate_pool):
            if supplied <= fds.closure([attr]):
                return (attr,)
        if candidate_pool and supplied <= fds.closure(candidate_pool):
            return tuple(sorted(candidate_pool))
        return None

    # ------------------------------------------------------------------
    # Phase 2: construction
    # ------------------------------------------------------------------
    def construct(
        self,
        planned: Sequence[PlannedTemp],
        in_flight: Mapping[str, List[SetDelta]],
        initial: Optional[Mapping[str, Relation]] = None,
    ) -> Dict[str, Relation]:
        """The second VAP phase: build all temporaries bottom-up.

        ``initial`` seeds the temp pool with cache-served values (their
        subtrees were pruned from ``planned``).  Every freshly constructed
        temporary for a cacheable relation is offered back to the cache.
        """
        tracer = self.tracer
        with tracer.span("vap_construct") as span:
            temps: Dict[str, Relation] = dict(initial) if initial else {}
            polls = [p for p in planned if p.strategy == "poll"]
            internals = [p for p in reversed(planned) if p.strategy != "poll"]

            self._construct_polls(polls, temps, in_flight)
            for plan in polls:
                if self._cacheable(plan.relation):
                    self.cache.store(plan.request, temps[plan.relation])
                    if tracer.enabled:
                        tracer.event("cache_store", relation=plan.relation)
            for plan in internals:
                temps[plan.relation] = self._construct_internal(plan, temps)
                self.stats.temps_built += 1
                if tracer.enabled:
                    tracer.event(
                        "temp_built",
                        relation=plan.relation,
                        strategy=plan.strategy,
                        rows=temps[plan.relation].cardinality(),
                    )
                if self._cacheable(plan.relation):
                    self.cache.store(plan.request, temps[plan.relation])
                    if tracer.enabled:
                        tracer.event("cache_store", relation=plan.relation)
            span.set(built=len(planned))
            return temps

    def _construct_polls(
        self,
        polls: Sequence[PlannedTemp],
        temps: Dict[str, Relation],
        in_flight: Mapping[str, List[SetDelta]],
    ) -> None:
        # Package all polls of one source into a single transaction.
        by_source: Dict[str, List[PlannedTemp]] = {}
        for plan in polls:
            leaf = self.vdp.children(plan.relation)[0]
            source = self.vdp.source_of_leaf(leaf)
            by_source.setdefault(source, []).append(plan)
        if not by_source:
            # Fully served from cache / materialized storage: no source is
            # contacted, so none needs to be reachable.
            return

        ordered = sorted(by_source.items())
        links: Dict[str, SourceLink] = {}
        for source, _ in ordered:
            link = self.links.get(source)
            if link is None:
                raise MediatorError(f"no source link for {source!r}")
            if not link.is_available():
                # Fail fast with a typed error instead of hanging on a
                # crashed source; callers degrade (tagged materialized
                # answers, deferred update transactions) or surface it.
                # Only sources this poll round actually needs are checked.
                raise SourceUnavailableError(source, until=link.outage_until())
            links[source] = link

        queries_by_source = {
            source: {plan.relation: self._temp_expression(plan) for plan in plans}
            for source, plans in ordered
        }
        tracer = self.tracer
        with tracer.span("poll_batch") as batch_span:
            started = time.perf_counter()
            answers_by_source = self._run_polls(links, queries_by_source)
            self.stats.poll_wall_time += time.perf_counter() - started
            batch_span.set(sources=[source for source, _ in ordered])

        for source, plans in ordered:
            answers = answers_by_source[source]
            self.stats.polls += len(plans)
            self.stats.polled_sources += 1
            for plan in plans:
                answer = answers[plan.relation]
                answer_rows = answer.cardinality()
                self.stats.polled_rows += answer_rows
                if tracer.enabled:
                    # Pre-compensation cardinality, emitted exactly where
                    # VAPStats.polled_rows accrues — the profiler's
                    # per-source row attribution reconciles against the
                    # counter 1:1 (temp_built rows are post-compensation).
                    tracer.event(
                        "poll_answer",
                        source=source,
                        relation=plan.relation,
                        rows=answer_rows,
                    )
                temps[plan.relation] = self._maybe_compensate(
                    plan, answer, source, in_flight
                )
                self.stats.temps_built += 1
                if tracer.enabled:
                    tracer.event(
                        "temp_built",
                        relation=plan.relation,
                        strategy="poll",
                        rows=temps[plan.relation].cardinality(),
                    )

    def _run_polls(
        self,
        links: Mapping[str, SourceLink],
        queries_by_source: Mapping[str, Dict[str, Expression]],
    ) -> Dict[str, Dict[str, Relation]]:
        """One ``poll_many`` per source — concurrent when every link opts in.

        Each source still answers its whole query batch against one
        snapshot (the per-source transaction guarantee lives inside
        ``poll_many``); threads only overlap *across* sources, turning
        wall-clock poll latency into max-over-sources.  Answers are
        gathered in sorted-source order regardless of completion order, so
        downstream merges — and which source's failure surfaces when
        several fail — stay deterministic.
        """
        tracer = self.tracer
        use_threads = (
            self.parallel_polls
            and len(links) > 1
            and all(
                getattr(link, "supports_parallel_poll", False)
                for link in links.values()
            )
        )
        if not use_threads:
            answers: Dict[str, Dict[str, Relation]] = {}
            for source, queries in sorted(queries_by_source.items()):
                with tracer.span("poll", source=source, temps=sorted(queries)):
                    answers[source] = links[source].poll_many(queries)
            return answers
        self.stats.parallel_poll_batches += 1
        workers = min(len(links), self.max_poll_workers)

        def timed_poll(source: str, queries: Dict[str, Expression]):
            # Worker threads never touch the span stack — they just time
            # their own poll; the main thread backfills completed spans.
            started = tracer.clock() if tracer.enabled else 0.0
            result = links[source].poll_many(queries)
            ended = tracer.clock() if tracer.enabled else 0.0
            return result, started, ended

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="vap-poll"
        ) as pool:
            futures = {
                source: pool.submit(timed_poll, source, queries)
                for source, queries in sorted(queries_by_source.items())
            }
            gathered = {source: futures[source].result() for source in sorted(futures)}
        if tracer.enabled:
            for source in sorted(gathered):
                _, started, ended = gathered[source]
                tracer.add_completed_span(
                    "poll",
                    started,
                    ended,
                    source=source,
                    temps=sorted(queries_by_source[source]),
                    parallel=True,
                )
        return {source: result for source, (result, _, _) in gathered.items()}

    def _temp_expression(self, plan: PlannedTemp) -> Expression:
        node = self.vdp.node(plan.relation)
        needed = frozenset(plan.request.attrs) | plan.request.predicate.attributes()
        expr: Expression = narrow_definition(node.definition, needed, self.vdp.schemas())
        if not isinstance(plan.request.predicate, TruePredicate):
            expr = Select(expr, plan.request.predicate)
        return Project(expr, plan.request.sorted_attrs())

    def _maybe_compensate(
        self,
        plan: PlannedTemp,
        answer: Relation,
        source: str,
        in_flight: Mapping[str, List[SetDelta]],
    ) -> Relation:
        kind = self.contributor_kinds.get(source)
        if kind is None or not kind.announces or not self.eca_enabled:
            return answer
        leaf = self.vdp.children(plan.relation)[0]
        uncompensated = list(in_flight.get(source, [])) + self.queue.pending_for_source(source)
        if not uncompensated:
            return answer
        self.stats.compensations += 1
        if self.tracer.enabled:
            self.tracer.event(
                "compensation",
                relation=plan.relation,
                source=source,
                deltas=len(uncompensated),
            )
        return compensate(
            answer,
            plan.relation,
            self._temp_expression(plan),
            leaf,
            self.vdp.node(leaf).schema,
            uncompensated,
        )

    def _construct_internal(
        self, plan: PlannedTemp, temps: Mapping[str, Relation]
    ) -> Relation:
        name = plan.relation
        node = self.vdp.node(name)
        if plan.strategy == "children":
            catalog = {}
            for child in self.vdp.children(name):
                catalog[child] = self._resolve(child, temps)
            expr = self._temp_expression(plan)
            return self._evaluate(expr, catalog, name)

        # Key-based: natural-join the node's stored projection with the
        # key+virtual projections of the supplying children (Example 2.3).
        repo_alias = f"__repo__{name}"
        ann = self.annotated.annotation(name)
        catalog: Dict[str, Relation] = {repo_alias: self.store.repo(name)}
        expr = Scan(repo_alias)
        for child in plan.virtual_children:
            child_value = self._resolve(child, temps)
            child_attrs = frozenset(child_value.schema.attribute_names)
            keep = sorted(
                (set(plan.key_attrs) & child_attrs)
                | ((set(plan.request.attrs) - set(ann.materialized_attrs)) & child_attrs)
            )
            alias = f"__kb__{child}"
            catalog[alias] = child_value
            expr = Join(expr, Project(Scan(alias), tuple(keep), dedup=True), None)
        if not isinstance(plan.request.predicate, TruePredicate):
            expr = Select(expr, plan.request.predicate)
        expr = Project(expr, plan.request.sorted_attrs())
        return self._evaluate(expr, catalog, name)

    def _resolve(self, child: str, temps: Mapping[str, Relation]) -> Relation:
        if child in temps:
            return temps[child]
        if self.store.has_repo(child):
            return self.store.repo(child)
        raise MediatorError(
            f"VAP needs {child!r} but no temporary or repository is available"
        )

    def _evaluate(self, expr: Expression, catalog: Mapping[str, Relation], name: str) -> Relation:
        schemas = {alias: rel.schema.rename_relation(alias) for alias, rel in catalog.items()}
        evaluator = Evaluator(catalog, schemas=schemas, counters=self.store.counters)
        return evaluator.evaluate(expr, name)
