"""View Decomposition Plans (Section 5).

A VDP is a labelled DAG.  Leaves correspond to relations in source
databases; non-leaf nodes correspond to relations maintained (materialized,
virtual, or hybrid) by the mediator; an edge ``(a, b)`` means ``relation(a)``
is derived directly from ``relation(b)``.  Incremental updates propagate
along edges from the leaves upward.

Node-definition restrictions (Section 5.1, item 4):

* (a) the immediate parents of leaf nodes — *leaf-parent* nodes — may apply
  only projection and selection (we also allow attribute renaming, which the
  paper elides "in the interest of clarity") to their single leaf child;
* (b) any other *bag node* may use an arbitrary combination of selects,
  projects and joins over its children;
* (c) a node may be a union or a difference of select/project(/rename)
  chains over its children.  Nodes involving difference are *set nodes*
  (stored as sets); all other non-leaf nodes are *bag nodes* (stored as
  bags).

:class:`AnnotatedVDP` pairs a VDP with an m/v annotation per non-leaf node
and derives the Section 4 contributor classification for each source.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.annotations import Annotation
from repro.errors import AnnotationError, VDPError
from repro.relalg import (
    Difference,
    Expression,
    FDSet,
    Join,
    Project,
    Rename,
    RelationSchema,
    Scan,
    Select,
    Union,
    fds_from_schema,
    infer_fds,
)
from repro.sources.contributors import ContributorKind

__all__ = ["NodeKind", "VDPNode", "VDP", "AnnotatedVDP"]


class NodeKind(Enum):
    """The storage/maintenance class of a VDP node."""

    LEAF = "leaf"  # a relation in a source database
    BAG = "bag"    # SPJ or union node; stored as a bag
    SET = "set"    # node whose definition involves difference; stored as a set


@dataclass(frozen=True)
class VDPNode:
    """One node of a VDP."""

    name: str
    schema: RelationSchema
    kind: NodeKind
    definition: Optional[Expression] = None  # None iff leaf
    source: Optional[str] = None  # source database name, set iff leaf

    def __post_init__(self) -> None:
        if self.kind is NodeKind.LEAF:
            if self.definition is not None or self.source is None:
                raise VDPError(f"leaf node {self.name!r} must have a source and no definition")
        else:
            if self.definition is None or self.source is not None:
                raise VDPError(f"non-leaf node {self.name!r} must have a definition and no source")

    @property
    def is_leaf(self) -> bool:
        """True for source-relation leaves."""
        return self.kind is NodeKind.LEAF


def _is_operand_chain(expr: Expression) -> bool:
    """True when ``expr`` is a select/project/rename chain over one Scan."""
    while isinstance(expr, (Select, Project, Rename)):
        if isinstance(expr, Project) and expr.dedup:
            return False
        expr = expr.children()[0]
    return isinstance(expr, Scan)


def _is_spj(expr: Expression) -> bool:
    """True when ``expr`` uses only select/project/join/rename over Scans."""
    if isinstance(expr, Scan):
        return True
    if isinstance(expr, (Select, Rename)):
        return _is_spj(expr.children()[0])
    if isinstance(expr, Project):
        return not expr.dedup and _is_spj(expr.child)
    if isinstance(expr, Join):
        return _is_spj(expr.left) and _is_spj(expr.right)
    return False


def classify_definition(expr: Expression) -> NodeKind:
    """Classify a node definition per the Section 5.1 restrictions.

    Raises :class:`VDPError` for shapes outside the allowed grammar (e.g. a
    union nested inside a join, or a dedup projection).
    """
    if isinstance(expr, Difference):
        if _is_operand_chain(expr.left) and _is_operand_chain(expr.right):
            return NodeKind.SET
        raise VDPError(
            "difference node operands must be select/project/rename chains over a single child"
        )
    if isinstance(expr, Union):
        if _is_operand_chain(expr.left) and _is_operand_chain(expr.right):
            return NodeKind.BAG
        raise VDPError(
            "union node operands must be select/project/rename chains over a single child"
        )
    if _is_spj(expr):
        return NodeKind.BAG
    raise VDPError(f"node definition is not in the allowed VDP grammar: {expr}")


class VDP:
    """A validated View Decomposition Plan."""

    def __init__(self, nodes: Sequence[VDPNode], exports: Iterable[str]):
        self.nodes: Dict[str, VDPNode] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise VDPError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.exports: Tuple[str, ...] = tuple(exports)
        self._children: Dict[str, Tuple[str, ...]] = {}
        self._parents: Dict[str, List[str]] = {name: [] for name in self.nodes}
        self._validate()
        self._topo: Tuple[str, ...] = self._topological_sort()
        self._fds: Dict[str, FDSet] = self._compute_fds()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for node in self.nodes.values():
            if node.is_leaf:
                self._children[node.name] = ()
                continue
            refs = sorted(node.definition.relation_names())
            for ref in refs:
                if ref not in self.nodes:
                    raise VDPError(f"node {node.name!r} references unknown relation {ref!r}")
                self._parents[ref].append(node.name)
            self._children[node.name] = tuple(refs)
            # Shape restriction + kind consistency.
            kind = classify_definition(node.definition)
            if kind is not node.kind:
                raise VDPError(
                    f"node {node.name!r} declared {node.kind.value} but definition is {kind.value}"
                )
            # Leaf-parent restriction: a node touching any leaf must be a
            # select/project/rename chain over exactly that one leaf.
            leaf_children = [c for c in refs if self.nodes[c].is_leaf]
            if leaf_children:
                if len(refs) != 1 or not _is_operand_chain(node.definition):
                    raise VDPError(
                        f"node {node.name!r} mixes leaf and non-leaf children or applies "
                        "more than select/project/rename to a leaf (Section 5.1 restriction (a))"
                    )
            # Schema consistency.
            inferred = node.definition.infer_schema(self.schemas(), node.name)
            if inferred.attribute_names != node.schema.attribute_names:
                raise VDPError(
                    f"node {node.name!r} schema {node.schema.attribute_names} does not match "
                    f"definition output {inferred.attribute_names}"
                )
        for export in self.exports:
            if export not in self.nodes:
                raise VDPError(f"export {export!r} is not a node")
            if self.nodes[export].is_leaf:
                raise VDPError(f"export {export!r} cannot be a leaf")
        # Every maximal (parentless) non-leaf node must be exported (Section 5.1(5)).
        for name, node in self.nodes.items():
            if not node.is_leaf and not self._parents[name] and name not in self.exports:
                raise VDPError(f"maximal node {name!r} must be in the export set")

    def _topological_sort(self) -> Tuple[str, ...]:
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

        def visit(name: str) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise VDPError(f"cycle detected through node {name!r}")
            state[name] = 1
            for child in self._children[name]:
                visit(child)
            state[name] = 2
            order.append(name)

        for name in sorted(self.nodes):
            visit(name)
        return tuple(order)

    def _compute_fds(self) -> Dict[str, FDSet]:
        fds: Dict[str, FDSet] = {}
        for name in self._topo:
            node = self.nodes[name]
            if node.is_leaf:
                fds[name] = fds_from_schema(node.schema)
            else:
                fds[name] = infer_fds(node.definition, fds)
        return fds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node(self, name: str) -> VDPNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise VDPError(f"no node named {name!r}") from exc

    def schemas(self) -> Dict[str, RelationSchema]:
        """Catalog of every node's schema, keyed by node name."""
        return {name: node.schema for name, node in self.nodes.items()}

    def children(self, name: str) -> Tuple[str, ...]:
        """Direct children (the relations the node's definition reads)."""
        return self._children[self.node(name).name]

    def parents(self, name: str) -> Tuple[str, ...]:
        """Direct parents (the nodes deriving from this one)."""
        return tuple(self._parents[self.node(name).name])

    def leaves(self) -> Tuple[str, ...]:
        """All leaf (source-relation) node names, sorted."""
        return tuple(sorted(n for n, node in self.nodes.items() if node.is_leaf))

    def non_leaves(self) -> Tuple[str, ...]:
        """All mediator-maintained node names, in topological order."""
        return tuple(n for n in self._topo if not self.nodes[n].is_leaf)

    def leaf_parents(self) -> Tuple[str, ...]:
        """Nodes whose (single) child is a leaf."""
        return tuple(
            n
            for n in self.non_leaves()
            if any(self.nodes[c].is_leaf for c in self._children[n])
        )

    def topological_order(self) -> Tuple[str, ...]:
        """All node names, children before parents (deterministic)."""
        return self._topo

    def fds(self, name: str) -> FDSet:
        """Functional dependencies inferred for a node's relation."""
        return self._fds[self.node(name).name]

    def leaf_descendants(self, name: str) -> FrozenSet[str]:
        """All leaf nodes reachable below ``name`` (``name`` itself if a leaf)."""
        node = self.node(name)
        if node.is_leaf:
            return frozenset((name,))
        out: Set[str] = set()
        for child in self._children[name]:
            out |= self.leaf_descendants(child)
        return frozenset(out)

    def sources_below(self, name: str) -> FrozenSet[str]:
        """Source database names feeding ``name``."""
        return frozenset(self.nodes[leaf].source for leaf in self.leaf_descendants(name))

    def source_of_leaf(self, leaf: str) -> str:
        """The source database owning a leaf node."""
        node = self.node(leaf)
        if not node.is_leaf:
            raise VDPError(f"{leaf!r} is not a leaf node")
        return node.source

    def leaves_of_source(self, source: str) -> Tuple[str, ...]:
        """All leaf nodes owned by one source database."""
        return tuple(
            n for n in self.leaves() if self.nodes[n].source == source
        )

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All nodes strictly above ``name``."""
        out: Set[str] = set()
        frontier = list(self._parents[self.node(name).name])
        while frontier:
            parent = frontier.pop()
            if parent not in out:
                out.add(parent)
                frontier.extend(self._parents[parent])
        return frozenset(out)

    def __repr__(self) -> str:
        return f"<VDP nodes={len(self.nodes)} exports={list(self.exports)}>"

    def describe(self) -> str:
        """A human-readable multi-line rendering (used by examples)."""
        lines = []
        for name in reversed(self._topo):
            node = self.nodes[name]
            if node.is_leaf:
                lines.append(f"  [leaf] {name}{list(node.schema.attribute_names)} @ {node.source}")
            else:
                marker = "export " if name in self.exports else ""
                lines.append(
                    f"  [{node.kind.value}] {marker}{name}{list(node.schema.attribute_names)}"
                    f" := {node.definition}"
                )
        return "\n".join(lines)


class AnnotatedVDP:
    """A VDP plus an m/v annotation for every non-leaf node (Section 5.1)."""

    def __init__(self, vdp: VDP, annotations: Mapping[str, Annotation]):
        self.vdp = vdp
        self.annotations: Dict[str, Annotation] = dict(annotations)
        self._validate()

    def _validate(self) -> None:
        for name in self.vdp.non_leaves():
            node = self.vdp.node(name)
            ann = self.annotations.get(name)
            if ann is None:
                raise AnnotationError(f"missing annotation for node {name!r}")
            if ann.attributes != node.schema.attribute_names:
                raise AnnotationError(
                    f"annotation for {name!r} covers {ann.attributes}, "
                    f"schema has {node.schema.attribute_names}"
                )
            # Set nodes are stored as plain sets of full rows; partially
            # materializing one would need per-attribute set storage the
            # paper never uses, so we require all-m or all-v.
            if node.kind is NodeKind.SET and ann.hybrid:
                raise AnnotationError(
                    f"set node {name!r} must be fully materialized or fully virtual"
                )
        extra = set(self.annotations) - set(self.vdp.non_leaves())
        if extra:
            raise AnnotationError(f"annotations for unknown nodes: {sorted(extra)}")

    # ------------------------------------------------------------------
    def annotation(self, name: str) -> Annotation:
        """The annotation of one non-leaf node."""
        try:
            return self.annotations[name]
        except KeyError as exc:
            raise AnnotationError(f"no annotation for node {name!r}") from exc

    def is_fully_materialized(self, name: str) -> bool:
        """True when every attribute of the node is materialized."""
        return self.annotation(name).fully_materialized

    def is_fully_virtual(self, name: str) -> bool:
        """True when every attribute of the node is virtual."""
        return self.annotation(name).fully_virtual

    def materialized_attrs(self, name: str) -> Tuple[str, ...]:
        """The materialized attributes of a node."""
        return self.annotation(name).materialized_attrs

    def virtual_attrs(self, name: str) -> Tuple[str, ...]:
        """The virtual attributes of a node."""
        return self.annotation(name).virtual_attrs

    def has_materialized_data(self, name: str) -> bool:
        """True when the node stores anything at all."""
        return bool(self.annotation(name).materialized_attrs)

    def nodes_with_storage(self) -> Tuple[str, ...]:
        """Non-leaf nodes that store at least one attribute, topologically."""
        return tuple(
            n for n in self.vdp.non_leaves() if self.has_materialized_data(n)
        )

    # ------------------------------------------------------------------
    # Contributor classification (Section 4)
    # ------------------------------------------------------------------
    def contributor_kinds(self) -> Dict[str, ContributorKind]:
        """Classify every source database.

        A source contributes to the *materialized portion* when some node
        with materialized attributes depends on it, and to the *virtual
        portion* when some node with virtual attributes depends on it.  A
        source in both camps is a hybrid-contributor.
        """
        materialized_side: Set[str] = set()
        virtual_side: Set[str] = set()
        for name in self.vdp.non_leaves():
            ann = self.annotation(name)
            below = self.vdp.sources_below(name)
            if ann.materialized_attrs:
                materialized_side |= below
            if ann.virtual_attrs:
                virtual_side |= below
        kinds: Dict[str, ContributorKind] = {}
        all_sources = {self.vdp.nodes[l].source for l in self.vdp.leaves()}
        for source in sorted(all_sources):
            in_m = source in materialized_side
            in_v = source in virtual_side
            if in_m and in_v:
                kinds[source] = ContributorKind.HYBRID
            elif in_m:
                kinds[source] = ContributorKind.MATERIALIZED
            elif in_v:
                kinds[source] = ContributorKind.VIRTUAL
        return kinds

    def describe(self) -> str:
        """Human-readable rendering of nodes with their annotations."""
        lines = []
        for name in reversed(self.vdp.topological_order()):
            node = self.vdp.node(name)
            if node.is_leaf:
                lines.append(f"  [leaf] {name} @ {node.source}")
            else:
                lines.append(f"  [{node.kind.value}] {name}{self.annotation(name)}")
        return "\n".join(lines)
