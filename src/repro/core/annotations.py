"""Attribute annotations: materialized (``m``) vs virtual (``v``).

Section 5.1: "an *annotation* for R is a function from its attributes into
``{m, v}``"; an annotation for a VDP assigns one to every non-leaf node.
The notation of the paper — ``[r1^m, r3^v, s1^m, s2^v]`` — is accepted by
:meth:`Annotation.parse` and produced by ``str()``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import AnnotationError

__all__ = ["Annotation", "MATERIALIZED", "VIRTUAL"]

MATERIALIZED = "m"
VIRTUAL = "v"

_ANNOTATION_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*\^\s*([mv])\s*$")


@dataclass(frozen=True)
class Annotation:
    """An m/v assignment for the attributes of one relation."""

    marks: Tuple[Tuple[str, str], ...]  # (attribute, 'm'|'v') in attribute order

    def __post_init__(self) -> None:
        seen = set()
        for name, mark in self.marks:
            if mark not in (MATERIALIZED, VIRTUAL):
                raise AnnotationError(f"annotation mark must be 'm' or 'v', got {mark!r}")
            if name in seen:
                raise AnnotationError(f"duplicate attribute {name!r} in annotation")
            seen.add(name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, mapping: Mapping[str, str]) -> "Annotation":
        """From a ``{attribute: 'm'|'v'}`` mapping."""
        return cls(tuple(mapping.items()))

    @classmethod
    def all_materialized(cls, attributes: Iterable[str]) -> "Annotation":
        """Every attribute materialized."""
        return cls(tuple((a, MATERIALIZED) for a in attributes))

    @classmethod
    def all_virtual(cls, attributes: Iterable[str]) -> "Annotation":
        """Every attribute virtual."""
        return cls(tuple((a, VIRTUAL) for a in attributes))

    @classmethod
    def parse(cls, text: str) -> "Annotation":
        """Parse the paper's notation, e.g. ``[r1^m, r3^v, s1^m]``."""
        body = text.strip()
        if body.startswith("[") and body.endswith("]"):
            body = body[1:-1]
        marks = []
        for part in body.split(","):
            match = _ANNOTATION_RE.match(part)
            if not match:
                raise AnnotationError(f"cannot parse annotation element {part.strip()!r}")
            marks.append((match.group(1), match.group(2)))
        return cls(tuple(marks))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        """All annotated attribute names, in order."""
        return tuple(name for name, _ in self.marks)

    def mark(self, attribute: str) -> str:
        """The mark ('m' or 'v') of one attribute."""
        for name, mark in self.marks:
            if name == attribute:
                return mark
        raise AnnotationError(f"attribute {attribute!r} not in annotation")

    def is_materialized(self, attribute: str) -> bool:
        """True when ``attribute`` is annotated ``m``."""
        return self.mark(attribute) == MATERIALIZED

    @property
    def materialized_attrs(self) -> Tuple[str, ...]:
        """Attributes annotated ``m``, in order."""
        return tuple(n for n, mk in self.marks if mk == MATERIALIZED)

    @property
    def virtual_attrs(self) -> Tuple[str, ...]:
        """Attributes annotated ``v``, in order."""
        return tuple(n for n, mk in self.marks if mk == VIRTUAL)

    @property
    def fully_materialized(self) -> bool:
        """True when every attribute is ``m``."""
        return not self.virtual_attrs

    @property
    def fully_virtual(self) -> bool:
        """True when every attribute is ``v``."""
        return not self.materialized_attrs

    @property
    def hybrid(self) -> bool:
        """True when the relation mixes materialized and virtual attributes
        — the paper's *partially materialized* case (c)."""
        return bool(self.materialized_attrs) and bool(self.virtual_attrs)

    def covers(self, attributes: Iterable[str]) -> bool:
        """True when every given attribute is materialized."""
        mat = set(self.materialized_attrs)
        return all(a in mat for a in attributes)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}^{mark}" for name, mark in self.marks)
        return f"[{inner}]"
