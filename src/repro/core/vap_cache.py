"""The delta-aware VAP temporary-relation cache.

The paper's hybrid approach (§2, §6.3) amortizes source access by keeping
*partially* materialized views; without a query-path cache, however, every
query that touches a virtual attribute re-plans and re-polls from scratch.
This module retains constructed temporaries keyed by their
``(relation, attrs, predicate)`` request and serves later requests by
**subsumption**: a cached ``π_B σ_g R`` answers a narrower ``π_A σ_f R``
whenever ``A ⊆ B`` and ``f ⇒ g`` (the dual of the paper's step-(2b) merge,
which *widens* requests — here a wide cached temp stands in for the merged
request it covers).

Soundness rests on the Eager Compensation invariant: every constructed
temporary reflects the node's value at the *materialized* state
``ref'(t_i)`` (poll answers are rewound past queued and in-flight deltas),
and that state only advances when an update transaction applies.  So:

* entries are **cacheable** only for lineages whose sources all announce
  (a virtual-contributor's commits never reach the mediator, so its polls
  must stay live) and only while eager compensation is enabled;
* entries are **invalidated precisely** when a transaction applies: an
  entry dies only if some applied leaf delta, pushed through the
  leaf-parent filters (:class:`~repro.deltas.LeafParentFilter`, §6.2) on
  the path into the entry's lineage, survives filtering — updates outside
  a leaf-parent's selection, and entries over untouched subtrees, keep
  their entries alive;
* serving by *attribute* narrowing additionally requires the node
  definition to be free of deduplicating projections (narrowing a
  ``dproject``'s attribute list changes multiplicities, so those nodes
  only serve exact-width hits; predicate narrowing is always safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.derived_from import TempRequest
from repro.core.vdp import VDP
from repro.deltas import AnyDelta
from repro.deltas.filtering import LeafParentFilter
from repro.errors import DeltaError
from repro.relalg import (
    Difference,
    Evaluator,
    Expression,
    Join,
    Project,
    Relation,
    Rename,
    Scan,
    Select,
    TruePredicate,
    Union,
    implies,
)

__all__ = ["CacheEntry", "InvalidatedEntry", "VAPTempCache"]


@dataclass
class CacheEntry:
    """One retained temporary: the request it answers and a private copy
    of its value (callers receive copies; the entry is never aliased)."""

    request: TempRequest
    value: Relation
    lineage: FrozenSet[str]  # leaf nodes this temp's value derives from

    @property
    def relation(self) -> str:
        return self.request.relation


@dataclass(frozen=True)
class InvalidatedEntry:
    """One dropped cache entry and the leaves whose deltas killed it —
    the raw material for ``cache_invalidate`` trace events."""

    request: TempRequest
    triggering_leaves: FrozenSet[str]

    @property
    def relation(self) -> str:
        return self.request.relation


def _narrow_safe(expr: Expression) -> bool:
    """True when narrowing the projection width of a value of ``expr``
    preserves multiplicities — i.e. the definition contains no
    deduplicating projection (bag π composes; ``dproject`` does not)."""
    if isinstance(expr, Project):
        return (not expr.dedup) and _narrow_safe(expr.child)
    if isinstance(expr, (Select, Rename)):
        return _narrow_safe(expr.child)
    if isinstance(expr, (Join, Union, Difference)):
        return _narrow_safe(expr.left) and _narrow_safe(expr.right)
    return True  # Scan


class VAPTempCache:
    """Subsumption-answering, precisely-invalidated store of VAP temps."""

    def __init__(self, vdp: VDP, max_entries_per_relation: int = 8):
        self.vdp = vdp
        self.max_entries_per_relation = max_entries_per_relation
        self._entries: Dict[str, List[CacheEntry]] = {}
        self._narrow_safe_memo: Dict[str, bool] = {}
        self._filters_memo: Dict[str, Optional[LeafParentFilter]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Total live entries across all relations."""
        return sum(len(v) for v in self._entries.values())

    def entries_for(self, relation: str) -> Tuple[CacheEntry, ...]:
        """The live entries for one relation (observers only)."""
        return tuple(self._entries.get(relation, ()))

    def clear(self) -> None:
        """Drop every entry (view re-initialization)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Lookup (subsumption)
    # ------------------------------------------------------------------
    def lookup(self, request: TempRequest) -> Optional[Tuple[Relation, bool]]:
        """A relation satisfying ``request``, or ``None``.

        Returns ``(value, was_subsumption)`` — ``was_subsumption`` is False
        for an exact request match.  The returned relation is a fresh copy
        (or a fresh evaluation); callers may mutate it freely.
        """
        for entry in self._entries.get(request.relation, ()):  # newest last
            served = self._serve(entry, request)
            if served is not None:
                return served
        return None

    def _serve(
        self, entry: CacheEntry, request: TempRequest
    ) -> Optional[Tuple[Relation, bool]]:
        held = entry.request
        if request.attrs == held.attrs and request.predicate == held.predicate:
            return entry.value.copy(), False
        if not request.attrs <= held.attrs:
            return None
        if not implies(request.predicate, held.predicate):
            return None
        if request.attrs != held.attrs and not self._node_narrow_safe(request.relation):
            return None
        # π_A σ_f over the cached π_B σ_g value ≡ the cold construction:
        # A ∪ attrs(f) ⊆ B and f ⇒ g, and narrowing is multiplicity-safe.
        alias = f"__vapcache__{request.relation}"
        expr: Expression = Scan(alias)
        if not isinstance(request.predicate, TruePredicate):
            expr = Select(expr, request.predicate)
        expr = Project(expr, request.sorted_attrs())
        catalog = {alias: entry.value}
        schemas = {alias: entry.value.schema.rename_relation(alias)}
        value = Evaluator(catalog, schemas=schemas).evaluate(expr, request.relation)
        return value, True

    def _node_narrow_safe(self, relation: str) -> bool:
        memo = self._narrow_safe_memo.get(relation)
        if memo is None:
            node = self.vdp.node(relation)
            memo = node.definition is not None and _narrow_safe(node.definition)
            self._narrow_safe_memo[relation] = memo
        return memo

    # ------------------------------------------------------------------
    # Fill
    # ------------------------------------------------------------------
    def store(self, request: TempRequest, value: Relation) -> None:
        """Retain a freshly constructed temporary (a private copy of it)."""
        entries = self._entries.setdefault(request.relation, [])
        # A new entry obsoletes every held request it subsumes.
        entries[:] = [
            e
            for e in entries
            if not (
                e.request.attrs <= request.attrs
                and implies(e.request.predicate, request.predicate)
            )
        ]
        entries.append(
            CacheEntry(
                request=request,
                value=value.copy(),
                lineage=self.vdp.leaf_descendants(request.relation),
            )
        )
        while len(entries) > self.max_entries_per_relation:
            entries.pop(0)

    # ------------------------------------------------------------------
    # Precise invalidation
    # ------------------------------------------------------------------
    def invalidate(self, leaf_deltas: Mapping[str, AnyDelta]) -> int:
        """Drop entries whose lineage is touched by applied leaf deltas.

        ``leaf_deltas`` maps leaf-node names to the deltas an update
        transaction just applied.  An entry survives unless some delta,
        filtered through a leaf-parent on the path into the entry's
        lineage, is non-empty — the §6.2 delta-filtering machinery reused
        as an invalidation sieve.  Returns the number of entries dropped.
        """
        return len(self.invalidate_detailed(leaf_deltas))

    def invalidate_detailed(
        self, leaf_deltas: Mapping[str, AnyDelta]
    ) -> List[InvalidatedEntry]:
        """Like :meth:`invalidate`, but reports each dropped entry together
        with the set of leaves whose filtered deltas triggered the drop."""
        if not leaf_deltas:
            return []
        dropped: List[InvalidatedEntry] = []
        for relation in list(self._entries):
            keep: List[CacheEntry] = []
            for entry in self._entries[relation]:
                triggers = self._entry_triggers(entry, leaf_deltas)
                if triggers:
                    dropped.append(
                        InvalidatedEntry(
                            request=entry.request,
                            triggering_leaves=frozenset(triggers),
                        )
                    )
                else:
                    keep.append(entry)
            if keep:
                self._entries[relation] = keep
            else:
                del self._entries[relation]
        return dropped

    def _entry_triggers(
        self, entry: CacheEntry, leaf_deltas: Mapping[str, AnyDelta]
    ) -> List[str]:
        """The lineage leaves whose applied deltas survive the leaf-parent
        filters into this entry's subtree (empty == entry survives)."""
        triggers: List[str] = []
        for leaf in entry.lineage:
            delta = leaf_deltas.get(leaf)
            if delta is None:
                continue
            for parent in self.vdp.parents(leaf):
                if parent != entry.relation and entry.relation not in self.vdp.ancestors(parent):
                    continue  # a leaf-parent outside this entry's subtree
                filt = self._leaf_parent_filter(parent)
                if filt is None:
                    triggers.append(leaf)  # non-chain: be conservative
                    break
                if not filt.filter(delta).is_empty():
                    triggers.append(leaf)
                    break
        return triggers

    def _leaf_parent_filter(self, leaf_parent: str) -> Optional[LeafParentFilter]:
        if leaf_parent not in self._filters_memo:
            try:
                self._filters_memo[leaf_parent] = LeafParentFilter.from_chain(
                    leaf_parent, self.vdp.node(leaf_parent).definition
                )
            except DeltaError:
                self._filters_memo[leaf_parent] = None
        return self._filters_memo[leaf_parent]
