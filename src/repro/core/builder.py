"""Building VDPs from named view definitions.

The Squirrel generator ([ZHK95]) turns high-level view specifications into
deployed mediators; this module is the structural half of that pipeline.
Given

* the schemas of the source relations and which source owns each one, and
* an (unordered) mapping of view names to algebra definitions — text in the
  :mod:`repro.relalg.parser` mini-language or expression trees,

:func:`build_vdp` produces a validated :class:`~repro.core.vdp.VDP`:
definitions are ordered by dependency, node kinds are classified, and any
select/project/rename chain applied *directly* to a source relation inside
a larger definition is hoisted into its own leaf-parent node (Section 5.1
restriction (a) — only leaf-parents may touch leaves, and only with
select/project).  Hoisted nodes are named ``<relation>_p`` (the paper's
``R'``), with ``_p2``, ``_p3``… when one relation is used under different
chains.

:func:`annotate` attaches annotations, defaulting every unmentioned node to
fully materialized.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union as TypingUnion

from repro.core.annotations import Annotation
from repro.core.vdp import VDP, AnnotatedVDP, NodeKind, VDPNode, classify_definition
from repro.errors import VDPError
from repro.relalg import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    RelationSchema,
    Scan,
    Select,
    Union,
    parse_expression,
)

__all__ = ["build_vdp", "extend_vdp", "annotate"]

ViewDef = TypingUnion[str, Expression]


def build_vdp(
    source_schemas: Mapping[str, RelationSchema],
    source_of: Mapping[str, str],
    views: Mapping[str, ViewDef],
    exports: Sequence[str],
) -> VDP:
    """Assemble and validate a VDP from named view definitions."""
    parsed: Dict[str, Expression] = {}
    for name, definition in views.items():
        if name in source_schemas:
            raise VDPError(f"view {name!r} clashes with a source relation name")
        parsed[name] = parse_expression(definition) if isinstance(definition, str) else definition

    ordered = _dependency_order(parsed, source_schemas)
    hoisted: Dict[str, Expression] = {}
    hoist_counter: Dict[str, int] = {}

    nodes: List[VDPNode] = []
    schemas: Dict[str, RelationSchema] = dict(source_schemas)
    used_leaves: set = set()

    def add_view_node(name: str, definition: Expression) -> None:
        kind = classify_definition(definition)
        schema = definition.infer_schema(schemas, name).rename_relation(name)
        schemas[name] = schema
        nodes.append(VDPNode(name, schema, kind, definition=definition))

    for name in ordered:
        definition = parsed[name]
        refs = definition.relation_names()
        direct_sources = refs & set(source_schemas)
        is_chain_over_source = (
            len(refs) == 1 and direct_sources and _is_chain(definition)
        )
        if direct_sources and not is_chain_over_source:
            definition = _hoist_source_chains(
                definition, source_schemas, hoisted, hoist_counter
            )
        used_leaves |= definition.relation_names() & set(source_schemas)
        parsed[name] = definition

    # Materialize hoisted leaf-parents first (they are below everything).
    for lp_name, lp_def in hoisted.items():
        used_leaves |= lp_def.relation_names()
        add_view_node(lp_name, lp_def)
    for name in ordered:
        add_view_node(name, parsed[name])

    for leaf in sorted(used_leaves):
        source = source_of.get(leaf)
        if source is None:
            raise VDPError(f"no source database declared for relation {leaf!r}")
        nodes.append(VDPNode(leaf, source_schemas[leaf], NodeKind.LEAF, source=source))

    return VDP(nodes, exports)


def extend_vdp(
    vdp: VDP,
    source_schemas: Mapping[str, RelationSchema],
    source_of: Mapping[str, str],
    views: Mapping[str, ViewDef],
    exports: Sequence[str] = (),
) -> VDP:
    """Grow an existing VDP with new source relations and views.

    The dynamic-membership half of the generator pipeline: a joining
    source contributes relations (``source_schemas`` / ``source_of``) and
    view definitions that may reference both the new relations and any
    *existing* node of ``vdp``.  Chains over the new source relations are
    hoisted into leaf-parents exactly as :func:`build_vdp` does; existing
    nodes are carried over untouched (same objects), so the extension
    never perturbs unrelated subtrees.  The result is re-validated wholly
    — in particular the "maximal node must be exported" rule applies, so
    a new top view must appear in ``exports``.
    """
    existing = dict(vdp.nodes)
    for name in source_schemas:
        if name in existing:
            raise VDPError(f"new source relation {name!r} clashes with an existing node")
    parsed: Dict[str, Expression] = {}
    for name, definition in views.items():
        if name in existing or name in source_schemas:
            raise VDPError(f"new view {name!r} clashes with an existing name")
        parsed[name] = parse_expression(definition) if isinstance(definition, str) else definition

    # Existing nodes act as opaque base relations for dependency ordering
    # and schema inference; only chains over *new* source relations hoist.
    base_schemas: Dict[str, RelationSchema] = {
        name: node.schema for name, node in existing.items()
    }
    base_schemas.update(source_schemas)
    ordered = _dependency_order(parsed, base_schemas)
    hoisted: Dict[str, Expression] = {}
    hoist_counter: Dict[str, int] = {}

    schemas: Dict[str, RelationSchema] = dict(base_schemas)
    used_leaves: set = set()
    new_nodes: List[VDPNode] = []

    def add_view_node(name: str, definition: Expression) -> None:
        kind = classify_definition(definition)
        schema = definition.infer_schema(schemas, name).rename_relation(name)
        schemas[name] = schema
        new_nodes.append(VDPNode(name, schema, kind, definition=definition))

    for name in ordered:
        definition = parsed[name]
        refs = definition.relation_names()
        direct_sources = refs & set(source_schemas)
        is_chain_over_source = (
            len(refs) == 1 and direct_sources and _is_chain(definition)
        )
        if direct_sources and not is_chain_over_source:
            definition = _hoist_source_chains(
                definition, source_schemas, hoisted, hoist_counter
            )
        used_leaves |= definition.relation_names() & set(source_schemas)
        parsed[name] = definition

    for lp_name, lp_def in hoisted.items():
        if lp_name in existing:
            raise VDPError(f"hoisted node name {lp_name!r} collides; rename your views")
        used_leaves |= lp_def.relation_names()
        add_view_node(lp_name, lp_def)
    for name in ordered:
        add_view_node(name, parsed[name])

    for leaf in sorted(used_leaves):
        source = source_of.get(leaf)
        if source is None:
            raise VDPError(f"no source database declared for relation {leaf!r}")
        new_nodes.append(VDPNode(leaf, source_schemas[leaf], NodeKind.LEAF, source=source))

    all_exports = list(vdp.exports) + [e for e in exports if e not in vdp.exports]
    return VDP(list(vdp.nodes.values()) + new_nodes, all_exports)


def _dependency_order(
    parsed: Mapping[str, Expression], source_schemas: Mapping[str, RelationSchema]
) -> List[str]:
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            raise VDPError(f"cyclic view definitions through {name!r}")
        state[name] = 1
        for ref in sorted(parsed[name].relation_names()):
            if ref in parsed:
                visit(ref)
            elif ref not in source_schemas:
                raise VDPError(f"view {name!r} references unknown relation {ref!r}")
        state[name] = 2
        order.append(name)

    for name in sorted(parsed):
        visit(name)
    return order


def _is_chain(expr: Expression) -> bool:
    while isinstance(expr, (Select, Project, Rename)):
        if isinstance(expr, Project) and expr.dedup:
            return False
        expr = expr.children()[0]
    return isinstance(expr, Scan)


def _hoist_source_chains(
    expr: Expression,
    source_schemas: Mapping[str, RelationSchema],
    hoisted: Dict[str, Expression],
    counter: Dict[str, int],
) -> Expression:
    """Replace maximal chains over source scans with leaf-parent references."""

    def hoist(chain: Expression, relation: str) -> Expression:
        # Reuse an identical existing hoist for the same relation.
        for existing_name, existing_def in hoisted.items():
            if existing_def == chain:
                return Scan(existing_name)
        counter[relation] = counter.get(relation, 0) + 1
        suffix = "_p" if counter[relation] == 1 else f"_p{counter[relation]}"
        name = f"{relation}{suffix}"
        if name in hoisted or name in source_schemas:
            raise VDPError(f"hoisted node name {name!r} collides; rename your views")
        hoisted[name] = chain
        return Scan(name)

    def rewrite(node: Expression, at_top: bool = False) -> Expression:
        refs = node.relation_names()
        touches_source = bool(refs & set(source_schemas))
        if not touches_source:
            return node
        if _is_chain(node):
            relation = next(iter(refs))
            if relation in source_schemas:
                return hoist(node, relation)
            return node
        if isinstance(node, Select):
            return Select(rewrite(node.child), node.predicate)
        if isinstance(node, Project):
            return Project(rewrite(node.child), node.attrs, node.dedup)
        if isinstance(node, Rename):
            return Rename(rewrite(node.child), node.mapping_dict)
        if isinstance(node, Join):
            return Join(rewrite(node.left), rewrite(node.right), node.condition)
        if isinstance(node, Union):
            return Union(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Difference):
            return Difference(rewrite(node.left), rewrite(node.right))
        raise VDPError(f"unsupported node while hoisting: {type(node).__name__}")

    return rewrite(expr, at_top=True)


def annotate(
    vdp: VDP,
    overrides: Optional[Mapping[str, TypingUnion[str, Annotation]]] = None,
    default: str = "m",
) -> AnnotatedVDP:
    """Attach annotations to a VDP.

    ``overrides`` maps node names to annotations — either
    :class:`Annotation` objects or the paper's text form (``"[a^m, b^v]"``).
    Unmentioned nodes default to fully materialized (``default='m'``) or
    fully virtual (``default='v'``).
    """
    if default not in ("m", "v"):
        raise VDPError(f"default annotation must be 'm' or 'v', got {default!r}")
    resolved: Dict[str, Annotation] = {}
    overrides = dict(overrides or {})
    for name in vdp.non_leaves():
        override = overrides.pop(name, None)
        if override is None:
            attrs = vdp.node(name).schema.attribute_names
            resolved[name] = (
                Annotation.all_materialized(attrs)
                if default == "m"
                else Annotation.all_virtual(attrs)
            )
        elif isinstance(override, Annotation):
            resolved[name] = override
        else:
            resolved[name] = Annotation.parse(override)
    if overrides:
        from repro.errors import AnnotationError

        raise AnnotationError(f"annotations for unknown nodes: {sorted(overrides)}")
    return AnnotatedVDP(vdp, resolved)
