"""Source links: how the mediator reaches source databases.

A :class:`SourceLink` answers queries against one source and guarantees the
ordering property the Eager Compensation Algorithm needs: *every
announcement the source sent before answering a poll is delivered to the
mediator's update queue before the answer is used*.  With in-order channels
(Section 4's message assumption) this holds automatically; link
implementations enforce it explicitly:

* :class:`DirectLink` — in-process calls.  Before answering, any pending
  (committed but unannounced) net update of an announcing source is taken
  and handed to the mediator's queue ("flush-before-answer").
* The simulation driver (:mod:`repro.runtime`) wraps a link around a
  delayed channel and *expedites* in-flight announcements before answering,
  which is the same FIFO guarantee under simulated latency.

Links also package all of one poll round's queries to a source into a
single source transaction (one snapshot), which is how the VAP ensures "no
more than one state of the same source can contribute to the view state".
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.deltas import SetDelta
from repro.relalg import Evaluator, Expression, Relation
from repro.sources.base import SourceDatabase

__all__ = ["SourceLink", "DirectLink"]

AnnouncementSink = Callable[[str, SetDelta], None]


class SourceLink:
    """Abstract link from the mediator to one source database."""

    def __init__(self, source_name: str):
        self.source_name = source_name
        self.poll_count = 0
        self.polled_rows = 0

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        """Answer several queries against one snapshot of the source.

        Implementations must first deliver every announcement the source
        has already produced (the FIFO/flush-before-answer guarantee).
        Raises :class:`~repro.errors.SourceUnavailableError` when the
        source cannot currently be reached (see :meth:`is_available`).
        """
        raise NotImplementedError

    def is_available(self) -> bool:
        """True when the source can be polled right now.

        In-process links are always available; channel-backed links
        consult their fault plan's outage windows, so callers can degrade
        gracefully (serve tagged materialized data, defer update
        transactions) instead of failing mid-poll.
        """
        return True

    def outage_until(self) -> Optional[float]:
        """End time of the current outage window, when one is active."""
        return None

    def now(self) -> Optional[float]:
        """The link's notion of current time (simulated clock), if any."""
        return None


class DirectLink(SourceLink):
    """In-process link to a :class:`SourceDatabase`."""

    def __init__(
        self,
        source: SourceDatabase,
        announcement_sink: Optional[AnnouncementSink] = None,
        announces: bool = True,
    ):
        """``announcement_sink`` receives flushed announcements (usually the
        mediator's queue); ``announces=False`` marks a pure
        virtual-contributor, whose pending updates are irrelevant and are
        discarded rather than delivered."""
        super().__init__(source.name)
        self.source = source
        self.announcement_sink = announcement_sink
        self.announces = announces

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        self._flush_before_answer()
        snapshot = self.source.state()
        self.source.query_count += len(queries)
        self.poll_count += 1
        answers: Dict[str, Relation] = {}
        evaluator = Evaluator(snapshot)
        for name, expr in queries.items():
            answer = evaluator.evaluate(expr, name)
            self.polled_rows += answer.cardinality()
            answers[name] = answer
        return answers

    def _flush_before_answer(self) -> None:
        announcement = self.source.take_announcement()
        if announcement is None:
            return
        if self.announces and self.announcement_sink is not None:
            self.announcement_sink(self.source_name, announcement)
        # Non-announcing (virtual-contributor) sources simply drop the
        # accumulated net update: nothing materialized depends on it.
