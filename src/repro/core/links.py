"""Source links: how the mediator reaches source databases.

A :class:`SourceLink` answers queries against one source and guarantees the
ordering property the Eager Compensation Algorithm needs: *every
announcement the source sent before answering a poll is delivered to the
mediator's update queue before the answer is used*.  With in-order channels
(Section 4's message assumption) this holds automatically; link
implementations enforce it explicitly:

* :class:`DirectLink` — in-process calls.  Before answering, any pending
  (committed but unannounced) net update of an announcing source is taken
  and handed to the mediator's queue ("flush-before-answer").
* The simulation driver (:mod:`repro.runtime`) wraps a link around a
  delayed channel and *expedites* in-flight announcements before answering,
  which is the same FIFO guarantee under simulated latency.

Links also package all of one poll round's queries to a source into a
single source transaction (one snapshot), which is how the VAP ensures "no
more than one state of the same source can contribute to the view state".
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.deltas import SetDelta
from repro.relalg import Evaluator, Expression, Relation
from repro.sources.base import SourceDatabase

__all__ = ["SourceLink", "DirectLink", "DelayedLink"]

#: ``sink(source_name, delta, cursor=...)`` — cursor is the source-log
#: position the delta brings the reader up to (durability metadata).
AnnouncementSink = Callable[..., None]


class SourceLink:
    """Abstract link from the mediator to one source database."""

    #: Whether ``poll_many`` may be called from a worker thread while other
    #: links are being polled.  Links whose transport shares non-thread-safe
    #: state with the caller (e.g. the simulated-channel links, which drive
    #: a single-threaded event clock) must leave this False; the VAP then
    #: falls back to the serial poll loop.
    supports_parallel_poll = False

    def __init__(self, source_name: str):
        self.source_name = source_name
        self.poll_count = 0
        self.polled_rows = 0

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        """Answer several queries against one snapshot of the source.

        Implementations must first deliver every announcement the source
        has already produced (the FIFO/flush-before-answer guarantee).
        Raises :class:`~repro.errors.SourceUnavailableError` when the
        source cannot currently be reached (see :meth:`is_available`).
        """
        raise NotImplementedError

    def is_available(self) -> bool:
        """True when the source can be polled right now.

        In-process links are always available; channel-backed links
        consult their fault plan's outage windows, so callers can degrade
        gracefully (serve tagged materialized data, defer update
        transactions) instead of failing mid-poll.
        """
        return True

    def outage_until(self) -> Optional[float]:
        """End time of the current outage window, when one is active."""
        return None

    def now(self) -> Optional[float]:
        """The link's notion of current time (simulated clock), if any."""
        return None


class DirectLink(SourceLink):
    """In-process link to a :class:`SourceDatabase`."""

    # Safe: the flush+snapshot pair is atomic under the source's lock, and
    # the announcement sink (the mediator's update queue) locks internally.
    supports_parallel_poll = True

    def __init__(
        self,
        source: SourceDatabase,
        announcement_sink: Optional[AnnouncementSink] = None,
        announces: bool = True,
    ):
        """``announcement_sink`` receives flushed announcements (usually the
        mediator's queue); ``announces=False`` marks a pure
        virtual-contributor, whose pending updates are irrelevant and are
        discarded rather than delivered."""
        super().__init__(source.name)
        self.source = source
        self.announcement_sink = announcement_sink
        self.announces = announces

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        # Sources that can execute queries internally (SQLite) answer the
        # whole poll round inside one database transaction: announcement,
        # cursor, and answers are taken atomically and no Python snapshot
        # of the full source is materialized.  The source counts its own
        # queries (and its pushdown/fallback split), so only the link-side
        # counters are maintained here.
        if getattr(self.source, "supports_pushdown", False):
            announcement, cursor, answers = self.source.poll_and_query(queries)
            if (
                announcement is not None
                and self.announces
                and self.announcement_sink is not None
            ):
                self.announcement_sink(self.source_name, announcement, cursor=cursor)
            self.poll_count += 1
            for answer in answers.values():
                self.polled_rows += answer.cardinality()
            return answers
        # Flush-before-answer and the snapshot form one source transaction:
        # no commit can land between them, so the snapshot reflects exactly
        # the announcements delivered so far.  The cursor rides along so
        # the durability layer can record how far into the source's log the
        # delivered announcement reaches.
        announcement, cursor, snapshot = self.source.poll_transaction_versioned()
        if announcement is not None and self.announces and self.announcement_sink is not None:
            self.announcement_sink(self.source_name, announcement, cursor=cursor)
        # Non-announcing (virtual-contributor) sources simply drop the
        # accumulated net update: nothing materialized depends on it.
        self.source.query_count += len(queries)
        self.poll_count += 1
        answers: Dict[str, Relation] = {}
        evaluator = Evaluator(snapshot)
        for name, expr in queries.items():
            answer = evaluator.evaluate(expr, name)
            self.polled_rows += answer.cardinality()
            answers[name] = answer
        return answers


class DelayedLink(DirectLink):
    """A :class:`DirectLink` with a fixed per-poll wall-clock delay.

    Benchmarks use it to make source round-trip latency visible: with N
    delayed sources, serial polling costs ~N·delay of wall time while the
    VAP's concurrent fan-out costs ~delay.  Keep it out of the simulator —
    fault-plan latency lives in the channel layer; this one really sleeps.
    """

    def __init__(self, *args, delay: float = 0.05, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay = delay

    def poll_many(self, queries: Mapping[str, Expression]) -> Dict[str, Relation]:
        import time

        time.sleep(self.delay)
        return super().poll_many(queries)
