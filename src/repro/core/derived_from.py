"""The ``derived_from`` function and attribute-lineage analysis (Section 6.3).

Given a request ``(R, A, f)`` — "we need ``π_A σ_f R``" — ``derived_from``
determines, for each child relation ``S_i`` of ``R``'s node, the minimal
projection/selection ``(S_i, B_i, g_i)`` of that child from which the
request can be reconstructed.  The paper spells out four cases (project-
select, join, union, difference); this module implements them via a single
recursive lineage walk over the node-definition expression, which also
covers the paper's "arbitrary combination of selects, projects and joins"
bag nodes and the renaming the paper elides.

Rules applied during the walk:

* attributes referenced by definition-internal selection and join
  conditions are *needed* (the paper's ``D_i`` sets);
* a conjunct of ``f`` is pushed down to a child only when all its
  attributes come from that child (sound; the residual is evaluated after
  reconstruction, which is why ``f``'s attributes are added to ``A`` up
  front);
* for a difference node both operands also need every output attribute
  ``C`` (the paper's case (4)): set membership of a full output row is what
  the subtraction tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.vdp import VDP, NodeKind
from repro.errors import VDPError
from repro.relalg import (
    Difference,
    Expression,
    Join,
    Predicate,
    Project,
    Rename,
    RelationSchema,
    Scan,
    Select,
    TRUE,
    Union,
    conjoin,
    conjuncts,
    disjoin,
)

__all__ = ["TempRequest", "derived_from", "child_requirements", "narrow_definition"]


@dataclass(frozen=True)
class TempRequest:
    """A request for (a projection/selection of) one relation's data.

    Mirrors the paper's ``(R, A, f)`` triples: ``relation`` is a VDP node
    name, ``attrs`` the needed attributes, ``predicate`` the selection that
    may be applied when fetching.
    """

    relation: str
    attrs: FrozenSet[str]
    predicate: Predicate = TRUE

    def merge(self, other: "TempRequest") -> "TempRequest":
        """Merge two requests for the same relation (paper step (2b)):
        union the attribute sets and disjoin the selections."""
        if other.relation != self.relation:
            raise VDPError(f"cannot merge requests for {self.relation!r} and {other.relation!r}")
        return TempRequest(
            self.relation,
            self.attrs | other.attrs,
            disjoin(self.predicate, other.predicate),
        )

    def sorted_attrs(self) -> Tuple[str, ...]:
        """The attributes as a deterministic tuple (for projections)."""
        return tuple(sorted(self.attrs))


def _output_attrs(expr: Expression, schemas: Mapping[str, RelationSchema]) -> FrozenSet[str]:
    return frozenset(expr.infer_schema(schemas, "lineage").attribute_names)


def _walk(
    expr: Expression,
    needed: FrozenSet[str],
    pushdown: List[Predicate],
    schemas: Mapping[str, RelationSchema],
    out: Dict[str, TempRequest],
) -> None:
    """Accumulate per-child requirements into ``out``."""
    if isinstance(expr, Scan):
        attrs = frozenset(schemas[expr.name].attribute_names)
        req_attrs = needed & attrs
        placed = [c for c in pushdown if c.attributes() <= attrs]
        request = TempRequest(expr.name, req_attrs, conjoin(*placed) if placed else TRUE)
        if expr.name in out:
            out[expr.name] = out[expr.name].merge(request)
        else:
            out[expr.name] = request
        return
    if isinstance(expr, Select):
        _walk(expr.child, needed | expr.predicate.attributes(), pushdown, schemas, out)
        return
    if isinstance(expr, Project):
        # Everything needed above must survive the projection; attributes of
        # definition-internal conditions were added below this point.
        _walk(expr.child, needed, pushdown, schemas, out)
        return
    if isinstance(expr, Rename):
        inverse = {new: old for old, new in expr.mapping_dict.items()}
        # The child must supply every renamed attribute, not just the
        # inverse image of ``needed``: ``narrow_definition`` re-applies the
        # rename with its full mapping (dropping entries would re-expose old
        # names and corrupt natural-join sharing), so a temp missing a
        # mapped attribute would fail schema inference at evaluation time.
        renamed_needed = frozenset(inverse.get(a, a) for a in needed) | frozenset(
            expr.mapping_dict
        )
        renamed_pushdown = [c.rename(inverse) for c in pushdown]
        _walk(expr.child, renamed_needed, renamed_pushdown, schemas, out)
        return
    if isinstance(expr, Join):
        left_attrs = _output_attrs(expr.left, schemas)
        right_attrs = _output_attrs(expr.right, schemas)
        if expr.condition is not None:
            needed = needed | expr.condition.attributes()
        else:
            needed = needed | (left_attrs & right_attrs)  # natural-join attributes
        left_push = [c for c in pushdown if c.attributes() <= left_attrs]
        right_push = [c for c in pushdown if c.attributes() <= right_attrs]
        _walk(expr.left, needed & left_attrs, left_push, schemas, out)
        _walk(expr.right, needed & right_attrs, right_push, schemas, out)
        return
    if isinstance(expr, (Union, Difference)):
        # Both operands are union-compatible with the output; a difference
        # additionally needs every output attribute on both sides (case (4)).
        extra = _output_attrs(expr, schemas) if isinstance(expr, Difference) else frozenset()
        for side in (expr.left, expr.right):
            _walk(side, needed | extra, list(pushdown), schemas, out)
        return
    raise VDPError(f"unsupported expression node in lineage walk: {type(expr).__name__}")


def child_requirements(
    definition: Expression,
    needed_attrs: FrozenSet[str],
    selection: Predicate,
    schemas: Mapping[str, RelationSchema],
) -> Dict[str, TempRequest]:
    """Per-child data requirements to reconstruct ``π_needed σ_selection(def)``.

    The returned mapping gives, for every child relation mentioned by the
    definition, the minimal ``TempRequest`` covering the reconstruction.
    """
    needed = frozenset(needed_attrs) | selection.attributes()
    out: Dict[str, TempRequest] = {}
    _walk(definition, needed, conjuncts(selection), schemas, out)
    return out


def narrow_definition(
    expr: Expression,
    needed: FrozenSet[str],
    schemas: Mapping[str, RelationSchema],
) -> Expression:
    """Rewrite a node definition to produce only the ``needed`` attributes.

    Used when constructing reduced-width temporary relations: the children
    supply exactly the attributes ``derived_from`` requested, so the
    definition's internal projection lists must be trimmed to match.
    Attributes required by definition-internal selection and join conditions
    are kept automatically; difference operands are never narrowed (set
    membership is over full output rows).
    """
    if isinstance(expr, Scan):
        return expr
    if isinstance(expr, Select):
        return Select(
            narrow_definition(expr.child, needed | expr.predicate.attributes(), schemas),
            expr.predicate,
        )
    if isinstance(expr, Project):
        keep = tuple(a for a in expr.attrs if a in needed)
        if not keep:
            keep = expr.attrs[:1]  # a projection must keep at least one attribute
        return Project(
            narrow_definition(expr.child, frozenset(keep), schemas), keep, expr.dedup
        )
    if isinstance(expr, Rename):
        inverse = {new: old for old, new in expr.mapping_dict.items()}
        child_needed = frozenset(inverse.get(a, a) for a in needed)
        child = narrow_definition(expr.child, child_needed, schemas)
        child_attrs = frozenset(child.infer_schema(schemas, "narrow").attribute_names)
        mapping = {old: new for old, new in expr.mapping_dict.items() if old in child_attrs}
        return Rename(child, mapping) if mapping else child
    if isinstance(expr, Join):
        left_attrs = _output_attrs(expr.left, schemas)
        right_attrs = _output_attrs(expr.right, schemas)
        if expr.condition is not None:
            needed = needed | expr.condition.attributes()
        else:
            needed = needed | (left_attrs & right_attrs)
        return Join(
            narrow_definition(expr.left, needed & left_attrs, schemas),
            narrow_definition(expr.right, needed & right_attrs, schemas),
            expr.condition,
        )
    if isinstance(expr, Union):
        return Union(
            narrow_definition(expr.left, needed, schemas),
            narrow_definition(expr.right, needed, schemas),
        )
    if isinstance(expr, Difference):
        return expr  # operands must keep full output width
    raise VDPError(f"unsupported node while narrowing: {type(expr).__name__}")


def derived_from(
    vdp: VDP,
    relation: str,
    attrs: FrozenSet[str],
    selection: Predicate = TRUE,
) -> List[TempRequest]:
    """The paper's ``derived_from(R, A, f)`` over a VDP node.

    Returns one :class:`TempRequest` per child of ``R``'s node, covering the
    four cases of Section 6.3 (and their generalizations to deeper SPJ
    definitions and renaming).
    """
    node = vdp.node(relation)
    if node.is_leaf:
        raise VDPError(f"derived_from is defined on non-leaf nodes, got leaf {relation!r}")
    unknown = frozenset(attrs) - frozenset(node.schema.attribute_names)
    if unknown:
        raise VDPError(f"node {relation!r} has no attributes {sorted(unknown)}")
    requirements = child_requirements(node.definition, frozenset(attrs), selection, vdp.schemas())
    return [requirements[name] for name in sorted(requirements)]
