"""The Squirrel integration mediator (Section 4, Figure 3).

A mediator consists of five components wired together here:

* the **local store** — the annotated VDP, the materialized portions of the
  view, auxiliary materialized data, and the rulebase;
* the **query processor (QP)** — the interface for querying the view;
* the **virtual attributes processor (VAP)** — constructs temporary
  relations for virtual data, polling sources as needed;
* the **update queue** — holds incremental updates announced by sources;
* the **incremental update processor (IUP)** — propagates queued updates
  into the materialized data under rulebase control.

The three information flows of Section 4 map onto three methods:
announcements arrive through :meth:`SquirrelMediator.enqueue_update` (flow
1, processed by :meth:`run_update_transaction`), the VAP's polls travel
through the source links (flow 2), and queries enter through
:meth:`SquirrelMediator.query` (flow 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple, Union as TypingUnion

from repro.core.annotations import Annotation
from repro.core.builder import extend_vdp
from repro.core.derived_from import TempRequest
from repro.core.iup import IncrementalUpdateProcessor, UpdateTransactionResult
from repro.core.links import DirectLink, SourceLink
from repro.core.local_store import LocalStore
from repro.core.query_processor import QueryProcessor
from repro.core.rulebase import RuleBase
from repro.core.sharding import plan_shards
from repro.core.update_queue import UpdateQueue
from repro.core.vap import VirtualAttributeProcessor
from repro.core.vap_cache import VAPTempCache
from repro.core.vdp import VDP, AnnotatedVDP
from repro.deltas import SetDelta
from repro.errors import AnnotationError, MediatorError, SourceUnavailableError
from repro.faults.staleness import StalenessTag, TaggedAnswer
from repro.obs.metrics import MetricsRegistry, dataclass_counter_items
from repro.obs.profile import CostProfile, CostProfiler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import (
    TRUE,
    Evaluator,
    Expression,
    Predicate,
    Project,
    Relation,
    Scan,
    parse_expression,
)
from repro.sources.base import SourceDatabase
from repro.sources.contributors import ContributorKind

__all__ = [
    "AttachResult",
    "DetachResult",
    "MediatorStats",
    "ReplicationStats",
    "STATS_METRICS",
    "SquirrelMediator",
]

QueryInput = TypingUnion[str, Expression]


@dataclass
class ReplicationStats:
    """Counters for the WAL-shipping replication layer (``repro.replication``).

    Registered as ``replication.*`` on **every** mediator so the
    :data:`STATS_METRICS` derivation is total; a mediator with no
    :class:`~repro.replication.WalShipper` attached simply reports zeros.
    ``replica_lag`` is a gauge — the worst current replica ignorance
    window (Theorem 7.2 terms), not a monotone counter.
    """

    records_shipped: int = 0
    replica_lag: float = 0.0
    replica_resyncs: int = 0
    failovers: int = 0


@dataclass
class MediatorStats:
    """A one-stop snapshot of every component's counters.

    The snapshot is *derived* from the mediator's metrics registry
    (:attr:`SquirrelMediator.metrics`) via :data:`STATS_METRICS` — adding a
    field here means adding one mapping row, not another hand-copied
    assignment in :meth:`SquirrelMediator.stats`."""

    queries: int
    materialized_only_queries: int
    virtual_queries: int
    update_transactions: int
    rules_fired: int
    polls: int
    polled_rows: int
    compensations: int
    key_based_constructions: int
    cache_hits: int
    cache_misses: int
    cache_invalidations: int
    subsumption_hits: int
    parallel_poll_batches: int
    poll_wall_time: float
    stored_rows: int
    stored_cells: int
    rows_scanned: int
    rows_hashed: int
    index_probes: int
    index_rebuilds: int
    propagation_passes: int
    deltas_compacted: int
    deltas_smashed: int
    rows_materialized: int
    cells_scanned: int
    shard_tasks: int
    shard_batches: int
    exchange_reads: int
    pushdown_queries: int
    fallback_queries: int
    stored_bytes: int
    records_shipped: int
    replica_lag: float
    replica_resyncs: int
    failovers: int

    def diff(self, other: "MediatorStats") -> "MediatorStats":
        """Per-field ``self - other`` — counter deltas across a workload
        window (take a snapshot before, one after, diff them)."""
        before = dict(dataclass_counter_items(other))
        return MediatorStats(
            **{name: value - before[name] for name, value in dataclass_counter_items(self)}
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain field→value mapping, in declaration order."""
        return dict(dataclass_counter_items(self))


#: MediatorStats field -> metrics-registry reading it is derived from.
STATS_METRICS: Dict[str, str] = {
    "queries": "qp.queries",
    "materialized_only_queries": "qp.materialized_only",
    "virtual_queries": "qp.with_virtual",
    "update_transactions": "iup.transactions",
    "rules_fired": "iup.rules_fired",
    "polls": "vap.polls",
    "polled_rows": "vap.polled_rows",
    "compensations": "vap.compensations",
    "key_based_constructions": "vap.key_based_used",
    "cache_hits": "vap.cache_hits",
    "cache_misses": "vap.cache_misses",
    "cache_invalidations": "vap.cache_invalidations",
    "subsumption_hits": "vap.subsumption_hits",
    "parallel_poll_batches": "vap.parallel_poll_batches",
    "poll_wall_time": "vap.poll_wall_time",
    "stored_rows": "store.stored_rows",
    "stored_cells": "store.stored_cells",
    "rows_scanned": "eval.rows_scanned",
    "rows_hashed": "eval.rows_hashed",
    "index_probes": "eval.index_probes",
    "index_rebuilds": "eval.index_rebuilds",
    "propagation_passes": "iup.propagation_passes",
    "deltas_compacted": "queue.deltas_compacted",
    "deltas_smashed": "store.deltas_smashed",
    "rows_materialized": "eval.rows_materialized",
    "cells_scanned": "eval.cells_scanned",
    "shard_tasks": "iup.shard_tasks",
    "shard_batches": "iup.shard_batches",
    "exchange_reads": "iup.exchange_reads",
    "pushdown_queries": "sources.pushdown_queries",
    "fallback_queries": "sources.fallback_queries",
    "stored_bytes": "store.stored_bytes",
    "records_shipped": "replication.records_shipped",
    "replica_lag": "replication.replica_lag",
    "replica_resyncs": "replication.replica_resyncs",
    "failovers": "replication.failovers",
}


@dataclass(frozen=True)
class AttachResult:
    """What one dynamic :meth:`SquirrelMediator.attach_source` did."""

    source: str
    new_nodes: Tuple[str, ...]      # every node the extension added, topologically
    backfill_nodes: Tuple[str, ...]  # the storing subset that was populated
    backfill_rows: int               # total multiplicity backfilled
    cursor: int                      # the source-log position the backfill reflects


@dataclass(frozen=True)
class DetachResult:
    """What one dynamic :meth:`SquirrelMediator.detach_source` did."""

    source: str
    removed_nodes: Tuple[str, ...]   # leaves + every ancestor that left with them
    retired_repos: Tuple[str, ...]   # removed nodes whose storage was dropped
    dropped_messages: int            # queued announcements discarded with the source


class SquirrelMediator:
    """A deployed Squirrel integration mediator."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        sources: Mapping[str, SourceDatabase],
        links: Optional[Mapping[str, SourceLink]] = None,
        eca_enabled: bool = True,
        key_based_enabled: bool = True,
        indexing_enabled: bool = True,
        vap_cache_enabled: bool = True,
        parallel_polls: bool = True,
        shards: int = 1,
        parallel_propagation: Optional[bool] = None,
        layout: str = "row",
        smash_enabled: bool = True,
        tracer: Tracer = NULL_TRACER,
        profiling_enabled: bool = False,
    ):
        """Wire a mediator over the given sources.

        ``links`` overrides the default in-process :class:`DirectLink` per
        source — the simulation runtime passes channel-aware links here.
        ``eca_enabled`` / ``key_based_enabled`` / ``indexing_enabled`` /
        ``vap_cache_enabled`` / ``parallel_polls`` exist for the ablation
        benchmarks; production use leaves them on
        (``indexing_enabled=False`` drops the persistent join indexes, so
        the evaluator falls back to per-firing ephemeral hash joins;
        ``vap_cache_enabled=False`` re-polls sources on every virtual
        query; ``parallel_polls=False`` forces the serial poll loop).
        ``shards`` hash-partitions node repositories (and their persistent
        indexes) into that many shards under a planner-chosen key (see
        :mod:`repro.core.sharding`); ``parallel_propagation`` runs the IUP
        kernel's linear rule firings as a (rule × shard) task pool — it
        defaults to on exactly when ``shards > 1``, and can be forced off
        for the layout-only ablation.  Results are identical either way.
        ``layout`` selects the repository storage representation:
        ``"row"`` (hash containers of ``Row`` dicts, the default) or
        ``"columnar"`` (struct-of-arrays
        :class:`~repro.relalg.ColumnarRelation` with slot-based indexes
        and the evaluator's vectorized chain paths; the set rules'
        support-probe indexes are declared under this layout only).
        ``smash_enabled=False`` disables transaction-level net-effect
        compaction — the kernel runs one propagation pass per queued
        message instead of one pass over the smashed batch (the smash
        ablation; final states are identical either way).
        ``tracer`` (default: the shared disabled :data:`NULL_TRACER`) is
        threaded through every component; pass an enabled
        :class:`~repro.obs.tracer.Tracer` to record spans/events, and
        construct it with ``provenance=True`` for delta provenance.
        ``profiling_enabled`` attaches a
        :class:`~repro.obs.profile.CostProfiler` to the tracer (creating
        a retain-free enabled tracer if the default disabled one was
        passed, so profiling alone never accumulates a trace); read the
        folded profile via :meth:`profile`.
        """
        if profiling_enabled:
            if not tracer.enabled:
                tracer = Tracer(enabled=True, retain=False)
            self.profiler: Optional[CostProfiler] = CostProfiler().attach(tracer)
        else:
            self.profiler = None
        self.tracer = tracer
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.sources = dict(sources)
        self.contributor_kinds: Dict[str, ContributorKind] = annotated.contributor_kinds()
        self._check_sources()

        if shards < 1:
            raise MediatorError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.parallel_propagation = (
            shards > 1 if parallel_propagation is None else parallel_propagation
        )
        self.layout = layout
        self.smash_enabled = smash_enabled
        self.queue = UpdateQueue()
        self.store = LocalStore(annotated, indexing_enabled=indexing_enabled, layout=layout)
        self.rulebase = RuleBase(self.vdp)
        self.store.declare_index_requirements(self.rulebase.index_requirements())
        if self.store.layout == "columnar":
            # Support-probe indexes for the set rules' fast path.  Declared
            # only here (not through index_requirements) so the shard
            # planner's key inference — and the row layout's firing
            # behaviour — are untouched.
            self.store.declare_index_requirements(self.rulebase.probe_index_requirements())
        self.shard_plan = (
            plan_shards(self.vdp, self.rulebase, shards) if shards > 1 else None
        )
        self.store.set_shard_plan(self.shard_plan)
        self.links: Dict[str, SourceLink] = dict(links) if links else {}
        for name, source in self.sources.items():
            if name not in self.links:
                kind = self.contributor_kinds.get(name)
                self.links[name] = DirectLink(
                    source,
                    announcement_sink=self.enqueue_update,
                    announces=bool(kind and kind.announces),
                )
        self.vap = VirtualAttributeProcessor(
            annotated,
            self.store,
            self.links,
            self.queue,
            self.contributor_kinds,
            eca_enabled=eca_enabled,
            key_based_enabled=key_based_enabled,
            cache_enabled=vap_cache_enabled,
            parallel_polls=parallel_polls,
            tracer=tracer,
        )
        self.iup = IncrementalUpdateProcessor(
            annotated,
            self.store,
            self.rulebase,
            self.vap,
            self.queue,
            tracer=tracer,
            shard_plan=self.shard_plan,
            parallel_propagation=self.parallel_propagation,
            smash_enabled=smash_enabled,
        )
        self.qp = QueryProcessor(annotated, self.store, self.vap, tracer=tracer)
        self.metrics = MetricsRegistry()
        self.metrics.register_stats("qp", self.qp.stats)
        self.metrics.register_stats("iup", self.iup.stats)
        self.metrics.register_stats("vap", self.vap.stats)
        self.metrics.register_stats("eval", self.store.counters)
        self.metrics.register_stats("queue", self.queue.stats)
        self.metrics.register_stats("store", self.store.stats)
        # Zero until a repro.replication.WalShipper attaches to this
        # mediator's durability manager and starts updating them.
        self.replication = ReplicationStats()
        self.metrics.register_stats("replication", self.replication)
        self.metrics.register_callable("store.stored_rows", self.store.total_stored_rows)
        self.metrics.register_callable("store.stored_cells", self.store.total_stored_cells)
        self.metrics.register_callable("store.stored_bytes", self.store.total_stored_bytes)
        self.metrics.register_callable(
            "sources.pushdown_queries",
            lambda: sum(
                getattr(s, "pushdown_queries", 0) for s in self.sources.values()
            ),
        )
        self.metrics.register_callable(
            "sources.fallback_queries",
            lambda: sum(
                getattr(s, "fallback_queries", 0) for s in self.sources.values()
            ),
        )
        self._initialized = False
        # Sources whose materialized contributions are being rebuilt after a
        # recovery found their logs truncated (selective re-initialization
        # in flight).  Answers served meanwhile disclose them as stale.
        self._resyncing: Set[str] = set()

    def _check_sources(self) -> None:
        for leaf in self.vdp.leaves():
            source_name = self.vdp.source_of_leaf(leaf)
            source = self.sources.get(source_name)
            if source is None:
                raise MediatorError(f"no source database named {source_name!r} supplied")
            if leaf not in source.schemas:
                raise MediatorError(
                    f"source {source_name!r} has no relation {leaf!r} (leaf names must "
                    "match source relation names)"
                )
            leaf_schema = self.vdp.node(leaf).schema
            if source.schemas[leaf].attribute_names != leaf_schema.attribute_names:
                raise MediatorError(
                    f"leaf {leaf!r} schema mismatch between VDP and source {source_name!r}"
                )

    # ------------------------------------------------------------------
    # View initialization
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Load every materialized node bottom-up from the current sources.

        This is ``t_view_init``: the initial population is computed from one
        snapshot of each source (sources are read one at a time — the view
        then reflects a state *vector*, as the consistency definition
        allows).
        """
        with self.tracer.span("view_init") as span:
            leaf_values: Dict[str, Relation] = {}
            for source_name in sorted({self.vdp.source_of_leaf(l) for l in self.vdp.leaves()}):
                source = self.sources[source_name]
                # One atomic source transaction: the pending announcement is
                # discarded (the snapshot already reflects it) and the
                # returned cursor is exactly the log position the snapshot
                # corresponds to — the durability layer's replay origin.
                snapshot, cursor = source.initial_snapshot()
                for leaf in self.vdp.leaves_of_source(source_name):
                    leaf_values[leaf] = snapshot[leaf]
                self.queue.note_reflected_cursor(source_name, cursor)
            self.store.initialize(leaf_values)
            # Any cached temporaries reflect the pre-initialization state.
            self.vap.clear_cache()
            self.tracer.provenance.clear()
            self._initialized = True
            span.set(leaves=sorted(leaf_values))

    @property
    def initialized(self) -> bool:
        """True once :meth:`initialize` has run."""
        return self._initialized

    def install_source_prefilters(self) -> int:
        """Enable the Section 6.2 source-side optimization.

        Builds one :class:`~repro.deltas.LeafParentFilter` per leaf-parent
        node from its definition chain and installs the set at each
        announcing source, so atoms irrelevant to every leaf-parent are
        dropped *before* transmission.  Returns the number of filters
        installed.  (Correct by construction: an atom is kept whenever any
        leaf-parent's selection accepts it or its relation is unfiltered.)
        """
        from repro.deltas import LeafParentFilter

        per_source: Dict[str, list] = {}
        for lp in self.vdp.leaf_parents():
            definition = self.vdp.node(lp).definition
            filt = LeafParentFilter.from_chain(lp, definition)
            source_name = self.vdp.source_of_leaf(self.vdp.children(lp)[0])
            per_source.setdefault(source_name, []).append(filt)
        installed = 0
        for source_name, filters in per_source.items():
            kind = self.contributor_kinds.get(source_name)
            if kind is None or not kind.announces:
                continue
            self.sources[source_name].set_prefilters(filters)
            installed += len(filters)
        return installed

    # ------------------------------------------------------------------
    # Dynamic federation membership (Section 8 — "Dynamicity")
    # ------------------------------------------------------------------
    def attach_source(
        self,
        source: SourceDatabase,
        views: Mapping[str, TypingUnion[str, Expression]],
        annotations: Optional[Mapping[str, TypingUnion[str, Annotation]]] = None,
        exports: Optional[Sequence[str]] = None,
        link: Optional[SourceLink] = None,
    ) -> AttachResult:
        """Grow the federation with a new source at runtime.

        ``views`` defines the nodes the source contributes (they may
        reference existing VDP nodes — joins against the current federation
        are the normal case); ``annotations`` annotates the new nodes
        (``"m"``/``"materialized"``, ``"v"``/``"virtual"``, the paper's
        bracket form, or :class:`Annotation` objects — unmentioned new
        nodes, hoisted leaf-parents included, default to fully
        materialized); ``exports`` defaults to every new view name.

        The attach does **not** quiesce unrelated subtrees.  New storing
        nodes are backfilled through the ordinary VAP path: polls are
        pinned to the state the materialized data already reflects by the
        Eager Compensation Algorithm, so announcements sitting in the queue
        are excluded from the backfill and propagate through the new rules
        on the next update transaction — exactly once either way.  During
        the backfill the new source is flagged mid-resync, so tagged
        answers disclose it honestly.  With a durability manager attached,
        the attach commits a full checkpoint (the structural change
        invalidates incremental chains).

        The attach is atomic: if the backfill fails (a partner link down
        mid-poll raises ``SourceUnavailableError``, the common case), the
        source registration, link, queue cursor, and structural swap are
        all rolled back before the exception propagates, so the mediator
        is exactly as if the attach was never attempted and the call can
        simply be retried.
        """
        self._require_init()
        name = source.name
        if name in self.sources:
            raise MediatorError(f"source {name!r} is already attached")
        source_schemas = dict(source.schemas)
        source_of = {rel: name for rel in source.schemas}
        export_list = sorted(views) if exports is None else list(exports)
        new_vdp = extend_vdp(self.vdp, source_schemas, source_of, views, export_list)
        old_names = set(self.vdp.nodes)
        new_names = tuple(n for n in new_vdp.topological_order() if n not in old_names)
        new_annotated = AnnotatedVDP(
            new_vdp, self._resolve_new_annotations(new_vdp, new_names, annotations)
        )
        new_kinds = new_annotated.contributor_kinds()

        # Existing sources the extension flips to announcing: their pending
        # accumulators cover transactions the backfill polls are about to
        # reflect — drain (and discard) them now so they are never
        # delivered post-flip and double-applied.
        for other in sorted(self.sources):
            kind = new_kinds.get(other)
            old_kind = self.contributor_kinds.get(other)
            if kind and kind.announces and not (old_kind and old_kind.announces):
                _, other_cursor = self.sources[other].take_announcement_versioned()
                self.queue.note_reflected_cursor(other, other_cursor)

        # One atomic (drain, cursor) on the joining source: the backfill
        # polls that follow observe exactly transactions 1..cursor, and any
        # later commit reaches the queue as an ordinary announcement.
        prev_annotated = self.annotated
        _, cursor = source.initial_snapshot()
        self.sources[name] = source
        joining_kind = new_kinds.get(name)
        if link is None:
            link = DirectLink(
                source,
                announcement_sink=self.enqueue_update,
                announces=bool(joining_kind and joining_kind.announces),
            )
        self.links[name] = link
        self.queue.note_reflected_cursor(name, cursor)
        self._install_structure(new_annotated)

        storing = tuple(
            n
            for n in new_names
            if not new_vdp.node(n).is_leaf
            and new_annotated.annotation(n).materialized_attrs
        )
        backfill_rows = 0
        self.begin_resync(name)
        try:
            with self.tracer.span(
                "backfill", source=name, nodes=sorted(storing)
            ) as span:
                if storing:
                    requests = [
                        TempRequest(
                            n, frozenset(new_vdp.node(n).schema.attribute_names)
                        )
                        for n in storing
                    ]
                    values = self.vap.materialize(requests, {})
                    for n in storing:
                        value = values[n]
                        # Temps carry attributes in request (sorted) order;
                        # repositories must use the node's declared order.
                        want = new_vdp.node(n).schema.attribute_names
                        if value.schema.attribute_names != want:
                            value = Evaluator({n: value}).evaluate(
                                Project(Scan(n), list(want)), n
                            )
                        self.store.reinitialize_node(n, value)
                        backfill_rows += value.cardinality()
                span.set(rows=backfill_rows)
        except BaseException:
            # Atomicity: undo everything installed above so the failed
            # attach leaves no trace — partially backfilled repositories,
            # the registration, the link, the queue cursor, and the
            # extended structure all revert, and the caller may retry.
            for n in storing:
                self.store.retire_node(n)
            self.sources.pop(name, None)
            self.links.pop(name, None)
            self.queue.forget_source(name)
            self._install_structure(prev_annotated)
            raise
        finally:
            self.end_resync(name)
        # Temps cached while the new repositories were still absent would
        # bypass them afterwards; start the cache clean over the new VDP.
        self.vap.clear_cache()
        if self.tracer.enabled:
            self.tracer.event(
                "source_attach",
                source=name,
                nodes=sorted(new_names),
                backfill_nodes=sorted(storing),
                backfill_rows=backfill_rows,
            )
        if self.iup.durability is not None:
            self.iup.durability.checkpoint(full=True)
        return AttachResult(name, new_names, storing, backfill_rows, cursor)

    def detach_source(self, name: str) -> DetachResult:
        """Shrink the federation: remove a source and its dependent subtree.

        Every leaf of the source leaves the VDP together with all its
        ancestors (any node whose value depends on the departed data).
        Remaining nodes are untouched — their repositories, ΔR state and
        queued announcements survive; exports shrink to the surviving
        names, with any newly-maximal surviving node auto-exported to keep
        the VDP valid.  All queue state of the departed source (queued
        entries included — a deferred transaction's requeued messages among
        them) is forgotten, so a later re-attach starts a fresh timeline.
        """
        self._require_init()
        if name not in self.sources:
            raise MediatorError(f"cannot detach unknown source {name!r}")
        removed: Set[str] = set()
        for leaf in self.vdp.leaves_of_source(name):
            removed.add(leaf)
            removed |= set(self.vdp.ancestors(leaf))
        remaining_nodes = [
            node for node_name, node in self.vdp.nodes.items() if node_name not in removed
        ]
        remaining = {n.name for n in remaining_nodes}
        exports = [e for e in self.vdp.exports if e in remaining]
        # A surviving non-leaf whose every parent departed is newly maximal
        # and must be exported for the VDP to stay valid.
        for node in remaining_nodes:
            if node.is_leaf or node.name in exports:
                continue
            if not any(p in remaining for p in self.vdp.parents(node.name)):
                exports.append(node.name)
        new_vdp = VDP(remaining_nodes, exports)
        new_annotated = AnnotatedVDP(
            new_vdp,
            {
                n: ann
                for n, ann in self.annotated.annotations.items()
                if n in remaining
            },
        )
        retired = tuple(sorted(n for n in removed if self.store.has_repo(n)))
        for n in removed:
            self.store.retire_node(n)
        dropped = self.queue.forget_source(name)
        self.sources.pop(name)
        self.links.pop(name, None)
        self._resyncing.discard(name)
        self._install_structure(new_annotated)
        self.vap.clear_cache()
        if self.tracer.enabled:
            self.tracer.event(
                "source_detach",
                source=name,
                removed_nodes=sorted(removed),
                dropped_messages=dropped,
            )
        if self.iup.durability is not None:
            self.iup.durability.checkpoint(full=True)
        return DetachResult(name, tuple(sorted(removed)), retired, dropped)

    def _resolve_new_annotations(
        self,
        new_vdp: VDP,
        new_names: Sequence[str],
        overrides: Optional[Mapping[str, TypingUnion[str, Annotation]]],
    ) -> Dict[str, Annotation]:
        resolved = dict(self.annotated.annotations)
        pending = dict(overrides or {})
        for node_name in new_names:
            node = new_vdp.node(node_name)
            if node.is_leaf:
                continue
            override = pending.pop(node_name, None)
            attrs = node.schema.attribute_names
            if override is None or override in ("m", "materialized"):
                resolved[node_name] = Annotation.all_materialized(attrs)
            elif isinstance(override, Annotation):
                resolved[node_name] = override
            elif override in ("v", "virtual"):
                resolved[node_name] = Annotation.all_virtual(attrs)
            else:
                resolved[node_name] = Annotation.parse(override)
        if pending:
            raise AnnotationError(
                f"annotations for unknown new nodes: {sorted(pending)}"
            )
        return resolved

    def _install_structure(self, annotated: AnnotatedVDP) -> None:
        """Swap every component onto a new annotated VDP, in place.

        The store's repositories, the update queue, the links, all counters
        and the durability hook survive — only the structural views of the
        world (VDP, annotations, rulebase, contributor kinds, VAP cache and
        planning memos) are replaced.  Callers must have ``self.sources``
        already matching the new VDP's leaves.
        """
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.contributor_kinds = annotated.contributor_kinds()
        self._check_sources()
        self.store.annotated = annotated
        self.store.vdp = annotated.vdp
        self.rulebase = RuleBase(self.vdp)
        self.store.declare_index_requirements(self.rulebase.index_requirements())
        if self.store.layout == "columnar":
            self.store.declare_index_requirements(self.rulebase.probe_index_requirements())
        # The shard plan is a function of the rulebase: re-infer it so new
        # nodes get keys and new edges get local/exchange classifications
        # (existing repositories repartition only when their layout moved).
        self.shard_plan = (
            plan_shards(self.vdp, self.rulebase, self.shards)
            if self.shards > 1
            else None
        )
        self.store.set_shard_plan(self.shard_plan)
        vap = self.vap
        vap.annotated = annotated
        vap.vdp = annotated.vdp
        vap.links = dict(self.links)
        vap.contributor_kinds = dict(self.contributor_kinds)
        vap.cache = VAPTempCache(self.vdp)
        vap._cacheable_memo = {}
        vap._topo_index = {
            node: i for i, node in enumerate(self.vdp.topological_order())
        }
        self.iup.annotated = annotated
        self.iup.vdp = annotated.vdp
        self.iup.rulebase = self.rulebase
        self.iup.shard_plan = self.shard_plan
        self.qp.annotated = annotated
        self.qp.vdp = annotated.vdp
        # Contributor kinds may have flipped for surviving sources (a new
        # materialized consumer, or the last one leaving).
        for source_name, source_link in self.links.items():
            if hasattr(source_link, "announces"):
                kind = self.contributor_kinds.get(source_name)
                source_link.announces = bool(kind and kind.announces)

    # ------------------------------------------------------------------
    # Flow 1: incremental updates
    # ------------------------------------------------------------------
    def enqueue_update(
        self,
        source_name: str,
        delta: SetDelta,
        send_time: Optional[float] = None,
        arrival_time: Optional[float] = None,
        seq: Optional[int] = None,
        cursor: Optional[int] = None,
    ) -> None:
        """Receive one announcement message from a source.

        ``seq`` (per-source sequence number, supplied by reliability-aware
        drivers) lets the queue smash duplicates idempotently and hold
        overtaking arrivals in sequence order — see
        :meth:`UpdateQueue.enqueue`.  ``cursor`` (the source-log position
        the message brings a reader up to) feeds the durability layer's
        write-ahead log when present.
        """
        if source_name not in self.sources:
            raise MediatorError(f"announcement from unknown source {source_name!r}")
        self.queue.enqueue(source_name, delta, send_time, arrival_time, seq=seq, cursor=cursor)

    def collect_announcements(self) -> int:
        """Pull pending net updates from every announcing source (the
        in-process stand-in for sources actively pushing); returns the
        number of messages enqueued."""
        self._require_init()
        collected = 0
        for name, kind in sorted(self.contributor_kinds.items()):
            if not kind.announces:
                continue
            announcement, cursor = self.sources[name].take_announcement_versioned()
            if announcement is not None:
                self.enqueue_update(name, announcement, cursor=cursor)
                collected += 1
        return collected

    def run_update_transaction(self) -> UpdateTransactionResult:
        """One IUP execution over whatever the queue currently holds."""
        self._require_init()
        return self.iup.run_transaction()

    def refresh(self) -> UpdateTransactionResult:
        """Convenience: collect announcements, then run an update transaction."""
        self.collect_announcements()
        return self.run_update_transaction()

    # ------------------------------------------------------------------
    # Flow 3: queries
    # ------------------------------------------------------------------
    def query(self, query: QueryInput, name: str = "answer") -> Relation:
        """Answer a query (text or expression) over the integrated view."""
        self._require_init()
        expr = parse_expression(query) if isinstance(query, str) else query
        return self.qp.query(expr, name)

    def query_relation(
        self,
        relation: str,
        attrs: Optional[Sequence[str]] = None,
        predicate: Predicate = TRUE,
    ) -> Relation:
        """The paper's ``π_A σ_f R`` query form against one view relation."""
        self._require_init()
        return self.qp.query_relation(relation, attrs, predicate)

    # ------------------------------------------------------------------
    # Graceful degradation under source outages
    # ------------------------------------------------------------------
    def source_availability(self) -> Dict[str, bool]:
        """Current reachability of every source, per its link."""
        return {name: link.is_available() for name, link in self.links.items()}

    def unavailable_sources(self) -> Tuple[str, ...]:
        """Sources whose links report an active outage, sorted."""
        return tuple(sorted(n for n, up in self.source_availability().items() if not up))

    def begin_resync(self, source_name: str) -> None:
        """Mark a source's materialized contributions as mid-rebuild.

        Recovery calls this when a source's log was truncated past the
        saved cursor: until :meth:`end_resync`, staleness tags disclose the
        source with unbounded staleness so degraded answers stay honest.
        """
        if source_name not in self.sources:
            raise MediatorError(f"cannot resync unknown source {source_name!r}")
        self._resyncing.add(source_name)

    def end_resync(self, source_name: str) -> None:
        """Clear the mid-rebuild marker set by :meth:`begin_resync`."""
        self._resyncing.discard(source_name)

    def resyncing_sources(self) -> Tuple[str, ...]:
        """Sources currently flagged as mid-rebuild, sorted."""
        return tuple(sorted(self._resyncing))

    def staleness_tag(self, now: Optional[float] = None) -> StalenessTag:
        """The staleness disclosure for answers served right now.

        For each unavailable source the tag carries ``now`` minus the send
        time of the newest update from it that the materialized data
        reflects (``inf`` when nothing from it was ever reflected and no
        timing is known) — the per-source staleness measure of
        :mod:`repro.correctness.freshness`, computed live instead of from
        a trace.  ``now`` defaults to the links' simulated clock when one
        is exposed, else 0.0 (in-process deployments are never degraded).
        """
        if now is None:
            clocks = [t for t in (link.now() for link in self.links.values()) if t is not None]
            now = max(clocks, default=0.0)
        staleness: Dict[str, float] = {}
        for name in self.unavailable_sources():
            reflected = self.queue.last_flushed_send_time(name)
            if reflected is None:
                link = self.links[name]
                outage_end = link.outage_until()
                # Nothing from this source reflected since init; the best
                # honest bound is "since the view was initialized", which
                # the simulated clock started at t=0.  Unknown otherwise.
                reflected = 0.0 if outage_end is not None else None
            staleness[name] = float("inf") if reflected is None else max(0.0, now - reflected)
        # A source mid-resync may be perfectly reachable, yet its
        # materialized contributions are a rebuild-in-progress: disclose it
        # with unbounded staleness until the resync transaction lands.
        for name in self._resyncing:
            staleness[name] = float("inf")
        return StalenessTag(time=now, staleness=staleness)

    def query_relation_tagged(
        self,
        relation: str,
        attrs: Optional[Sequence[str]] = None,
        predicate: Predicate = TRUE,
        now: Optional[float] = None,
    ) -> TaggedAnswer:
        """Like :meth:`query_relation`, but the answer carries a staleness tag.

        Materialized-only answers keep flowing during an outage — tagged
        with how stale the unavailable sources' contributions may be.  A
        query that *needs* to poll an unavailable source raises
        :class:`~repro.errors.SourceUnavailableError` (typed, immediate)
        rather than hanging on a dead link.
        """
        self._require_init()
        tag = self.staleness_tag(now)
        value = self.qp.query_relation(relation, attrs, predicate)
        if self.tracer.enabled and tag.staleness:
            self.tracer.event(
                "stale_answer",
                relation=relation,
                sources=sorted(tag.staleness),
                staleness={
                    source: (age if age != float("inf") else None)
                    for source, age in sorted(tag.staleness.items())
                },
            )
        return TaggedAnswer(value=value, tag=tag)

    def export_state(self, relation: str) -> Relation:
        """The full current value of one export relation (virtual attributes
        are fetched as needed) — used by examples and correctness checkers."""
        if relation not in self.vdp.exports:
            raise MediatorError(f"{relation!r} is not an export relation")
        return self.query_relation(relation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> MediatorStats:
        """Aggregate counters across all components, derived from the
        metrics registry through the :data:`STATS_METRICS` mapping."""
        snapshot = self.metrics.snapshot()
        return MediatorStats(
            **{field: snapshot[metric] for field, metric in STATS_METRICS.items()}
        )

    def profile(self) -> CostProfile:
        """The live cost profile folded from the trace stream (requires
        ``profiling_enabled=True`` at construction).  The profile's
        counters reconcile exactly with :meth:`stats` — see
        :meth:`~repro.obs.profile.CostProfile.reconcile`."""
        if self.profiler is None:
            raise MediatorError(
                "profiling is off; construct with profiling_enabled=True"
            )
        return self.profiler.profile()

    def reset_stats(self) -> None:
        """Zero every component counter (benchmark hygiene).  Fields-derived
        through the registry: new counters on any registered stats object
        reset for free.  An attached profiler resets too, so its window
        stays the counter window and :meth:`profile` keeps reconciling."""
        self.metrics.reset()
        if self.profiler is not None:
            self.profiler.reset()

    def _require_init(self) -> None:
        if not self._initialized:
            raise MediatorError("mediator not initialized; call initialize() first")

    def __repr__(self) -> str:
        kinds = {k: v.value for k, v in self.contributor_kinds.items()}
        return f"<SquirrelMediator exports={list(self.vdp.exports)} sources={kinds}>"
