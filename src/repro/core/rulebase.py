"""The VDP-rulebase: one update-propagation rule per edge (Section 6.4).

A *VDP-rulebase* is a pair ``(V, edge_rule)`` where ``edge_rule`` maps each
edge of the VDP to a rule (Section 5.2 gives the SPJ and difference
instances).  Following the paper, ``edge_rule`` is extended to nodes:
``edge_rule(v)`` is the set of rules on in-edges *to* ``v``'s parents —
"all rules that propagate updates out of ``v``".

Rules are independent of annotations: the same rulebase serves any
annotation of the VDP (the paper notes this explicitly).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple, Union as TypingUnion

from repro.core.rules import BagNodeRule, SetNodeRule, build_rule
from repro.core.vdp import VDP
from repro.errors import VDPError

__all__ = ["RuleBase", "EdgeRule"]

EdgeRule = TypingUnion[BagNodeRule, SetNodeRule]


class RuleBase:
    """All edge rules of a VDP, indexed by edge and by child node.

    Construction passes the VDP's node schemas into :func:`build_rule`, so
    every rule compiles eagerly — rewritten expressions, renamed schemas and
    join plans are resolved here, once, rather than per ``fire()``.
    """

    def __init__(self, vdp: VDP):
        self.vdp = vdp
        schemas = vdp.schemas()
        self._by_edge: Dict[Tuple[str, str], EdgeRule] = {}
        self._out_rules: Dict[str, List[EdgeRule]] = {name: [] for name in vdp.nodes}
        for parent_name in vdp.non_leaves():
            parent = vdp.node(parent_name)
            for child_name in vdp.children(parent_name):
                child = vdp.node(child_name)
                rule = build_rule(
                    parent_name, parent.definition, child_name, child.schema, schemas
                )
                self._by_edge[(parent_name, child_name)] = rule
                self._out_rules[child_name].append(rule)
        self._index_requirements: Dict[str, Set[Tuple[str, ...]]] = {}
        for rule in self._by_edge.values():
            for base, keysets in rule.index_requirements().items():
                self._index_requirements.setdefault(base, set()).update(keysets)

    def index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Join-key index declarations collected from the compiled rules.

        Maps node name → set of attribute-key tuples some rule's join plan
        can probe.  The local store builds these indexes on materialized
        repositories (and the IUP on temporaries) so that firing a rule
        probes a persistent index instead of re-hashing the sibling.
        """
        return {base: set(keys) for base, keys in self._index_requirements.items()}

    def probe_index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Support-probe index declarations from the set-node rules.

        Collected separately from :meth:`index_requirements` because the
        shard planner keys off join-probe requirements; the mediator
        declares these only for the columnar layout (the opt-in gate for
        the set rules' probe fast path).
        """
        out: Dict[str, Set[Tuple[str, ...]]] = {}
        for rule in self._by_edge.values():
            for base, keysets in rule.probe_index_requirements().items():
                out.setdefault(base, set()).update(keysets)
        return out

    def edge_rule(self, parent: str, child: str) -> EdgeRule:
        """The rule attached to edge ``(parent, child)``."""
        try:
            return self._by_edge[(parent, child)]
        except KeyError as exc:
            raise VDPError(f"no edge ({parent!r}, {child!r}) in the VDP") from exc

    def rules_out_of(self, node: str) -> List[EdgeRule]:
        """The paper's ``edge_rule(v)``: rules propagating updates out of ``v``."""
        if node not in self._out_rules:
            raise VDPError(f"no node named {node!r}")
        return list(self._out_rules[node])

    def edges(self) -> List[Tuple[str, str]]:
        """All (parent, child) edges with rules."""
        return sorted(self._by_edge)

    def __len__(self) -> int:
        return len(self._by_edge)
