"""The mediator's local store (Section 4, Section 6.4).

Two repositories are associated with each non-leaf node ``v`` with
``relation(v) = R``:

* ``R`` — the "current" population.  For a *fully materialized* bag node
  this is the node's bag; for a *hybrid* node it is the bag of the node's
  rows projected onto the materialized attributes; for a set node it is the
  set of full rows; for a *fully virtual* node nothing is stored.
* ``ΔR`` — the smash of incremental changes accumulated for ``R`` during a
  single IUP execution.  Deltas are always **full width** (they carry
  virtual attributes too, obtained from temporaries when necessary), so a
  parent rule can consume them regardless of its own annotation.

The store also performs view initialization: each node is populated
bottom-up by evaluating its definition over the already-populated children
(leaf children read from their sources).

Repositories additionally carry **persistent join indexes** on the key
tuples the compiled rulebase declares it will probe
(:meth:`LocalStore.declare_index_requirements`).  They are built once when
the repository is populated and maintained incrementally by the relation's
``insert``/``delete`` as deltas are applied — propagation therefore probes
an up-to-date index instead of re-hashing the sibling relation on every
rule firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.annotations import Annotation
from repro.core.vdp import AnnotatedVDP, NodeKind
from repro.deltas import AnyDelta, BagDelta, SetDelta, bag_to_set, select_project, set_to_bag
from repro.errors import MediatorError
from repro.relalg import (
    TRUE,
    BagRelation,
    ColumnarRelation,
    EvalCounters,
    Evaluator,
    PartitionedRelation,
    Relation,
    RelationSchema,
)

__all__ = ["LocalStore", "StoreStats"]

#: Storage layouts a store can keep its repositories in.
LAYOUTS = ("row", "columnar")


@dataclass
class StoreStats:
    """Net-effect compaction counters for the store's ΔR repositories.

    ``deltas_smashed`` counts atoms/entries cancelled by smashing incoming
    contributions into accumulated per-node deltas plus atoms dropped as
    redundant during set-delta normalization — the kernel-level
    generalization of the update queue's ``deltas_compacted``.
    """

    deltas_smashed: int = 0

    def reset(self) -> None:
        from repro.obs.metrics import reset_dataclass_counters

        reset_dataclass_counters(self)


class LocalStore:
    """Materialized repositories and per-transaction delta repositories."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        indexing_enabled: bool = True,
        layout: str = "row",
    ):
        if layout not in LAYOUTS:
            raise MediatorError(f"unknown storage layout {layout!r}; expected one of {LAYOUTS}")
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.counters = EvalCounters()
        self.indexing_enabled = indexing_enabled
        self.layout = layout
        self.stats = StoreStats()
        self._repos: Dict[str, Relation] = {}
        self._deltas: Dict[str, AnyDelta] = {}
        self._index_requirements: Dict[str, Set[Tuple[str, ...]]] = {}
        self._shard_plan = None  # Optional[repro.core.sharding.ShardPlan]
        self._initialized = False

    # ------------------------------------------------------------------
    # Sharded repositories
    # ------------------------------------------------------------------
    def set_shard_plan(self, plan) -> None:
        """Adopt a :class:`~repro.core.sharding.ShardPlan` for repositories.

        Called at mediator wiring (before :meth:`initialize`) and again on
        every structural swap (attach/detach rebuild the rulebase, so shard
        keys may change): already-populated repositories whose desired
        layout differs are repartitioned in place — rows rerouted, declared
        indexes rebuilt per shard.
        """
        self._shard_plan = plan
        if self._initialized:
            for name in sorted(self._repos):
                current = self._repos[name]
                desired = self._desired_layout(name, current.schema.attribute_names)
                actual = (
                    (current.shard_key, current.num_shards)
                    if isinstance(current, PartitionedRelation)
                    else None
                )
                if desired != actual:
                    self._repos[name] = self._finalize_stored(name, current)
            self._build_declared_indexes()

    def _desired_layout(self, name: str, stored_attrs) -> Optional[Tuple[Tuple[str, ...], int]]:
        if self._shard_plan is None:
            return None
        return self._shard_plan.storage_layout(name, tuple(stored_attrs))

    def _finalize_stored(self, name: str, stored: Relation) -> Relation:
        """Lay a freshly built stored value out per the shard plan + layout."""
        shard_layout = self._desired_layout(name, stored.schema.attribute_names)
        if shard_layout is None:
            if isinstance(stored, PartitionedRelation):
                stored = stored.unpartitioned()
            if self.layout == "columnar" and not isinstance(stored, ColumnarRelation):
                stored = ColumnarRelation.from_relation(stored)
            return stored
        key, num_shards = shard_layout
        if (
            isinstance(stored, PartitionedRelation)
            and stored.shard_key == key
            and stored.num_shards == num_shards
            and stored.layout == self.layout
        ):
            return stored
        return PartitionedRelation.partition(stored, key, num_shards, layout=self.layout)

    def install_repo(self, name: str, relation: Relation) -> None:
        """Install an externally built repository (checkpoint restore),
        repartitioning it to this store's shard plan so restored state and
        freshly initialized state share one layout."""
        self._repos[name] = self._finalize_stored(name, relation)

    # ------------------------------------------------------------------
    # Persistent join indexes
    # ------------------------------------------------------------------
    def declare_index_requirements(
        self, requirements: Mapping[str, Set[Tuple[str, ...]]]
    ) -> None:
        """Register the join-key indexes the compiled rulebase will probe.

        Called once at mediator wiring, before :meth:`initialize`.  Indexes
        are built when repositories are populated and thereafter maintained
        incrementally by ``insert``/``delete`` — never rebuilt.  Keys not
        fully covered by a node's *stored* schema (hybrid projections) are
        skipped; those reads go through temporaries, which the IUP indexes
        per transaction.
        """
        if not self.indexing_enabled:
            return
        for base, keysets in requirements.items():
            self._index_requirements.setdefault(base, set()).update(keysets)
        if self._initialized:
            self._build_declared_indexes()

    def index_requirements_for(self, name: str) -> Set[Tuple[str, ...]]:
        """Declared key tuples for one node (empty when indexing is off)."""
        return set(self._index_requirements.get(name, ()))

    def _build_declared_indexes(self) -> None:
        for name, keysets in self._index_requirements.items():
            repo = self._repos.get(name)
            if repo is None:
                continue
            stored_attrs = set(repo.schema.attribute_names)
            for keys in sorted(keysets):
                if set(keys) <= stored_attrs:
                    repo.ensure_index(keys, self.counters)

    # ------------------------------------------------------------------
    # Storage schemas
    # ------------------------------------------------------------------
    def stored_schema(self, name: str) -> RelationSchema:
        """The schema of the stored portion of node ``name``."""
        node = self.vdp.node(name)
        ann = self.annotated.annotation(name)
        if ann.fully_materialized:
            return node.schema
        return node.schema.project(ann.materialized_attrs, name)

    def has_repo(self, name: str) -> bool:
        """True when the node stores anything."""
        return name in self._repos

    def repo(self, name: str) -> Relation:
        """The live repository of a node (raises for fully virtual nodes)."""
        try:
            return self._repos[name]
        except KeyError as exc:
            raise MediatorError(f"node {name!r} has no materialized repository") from exc

    def repos(self) -> Dict[str, Relation]:
        """All repositories, keyed by node name (live references)."""
        return dict(self._repos)

    # ------------------------------------------------------------------
    # Initialization (view-init time)
    # ------------------------------------------------------------------
    def initialize(self, leaf_values: Mapping[str, Relation]) -> None:
        """Populate every storing node bottom-up from leaf snapshots.

        ``leaf_values`` maps each leaf node name to its source relation's
        current value.  Fully virtual nodes are evaluated transiently (their
        value may be needed by storing ancestors) but not retained.
        """
        transient: Dict[str, Relation] = {}
        for name in self.vdp.topological_order():
            node = self.vdp.node(name)
            if node.is_leaf:
                try:
                    transient[name] = leaf_values[name]
                except KeyError as exc:
                    raise MediatorError(f"missing initial value for leaf {name!r}") from exc
                continue
            evaluator = Evaluator(transient, counters=self.counters)
            full_value = evaluator.evaluate(node.definition, name)
            transient[name] = full_value
            ann = self.annotated.annotation(name)
            if ann.materialized_attrs:
                self._repos[name] = self._stored_projection(name, full_value, ann)
        self._deltas = {}
        self._initialized = True
        self._build_declared_indexes()

    def reinitialize_node(self, name: str, full_value: Relation) -> None:
        """Replace one storing node's repository with a fresh full value.

        Selective re-initialization (recovery after a source-log gap)
        recomputes the affected subtree from scratch and swaps each node's
        stored projection wholesale: declared indexes are rebuilt on the
        new repository and any accumulated ΔR is discarded (it described
        changes to the replaced population).
        """
        ann = self.annotated.annotation(name)
        if not ann.materialized_attrs:
            raise MediatorError(f"node {name!r} stores nothing; cannot reinitialize")
        self._repos[name] = self._stored_projection(name, full_value, ann)
        self._deltas.pop(name, None)
        stored_attrs = set(self._repos[name].schema.attribute_names)
        for keys in sorted(self._index_requirements.get(name, ())):
            if set(keys) <= stored_attrs:
                self._repos[name].ensure_index(keys, self.counters)

    def _stored_projection(self, name: str, full_value: Relation, ann: Annotation) -> Relation:
        node = self.vdp.node(name)
        if ann.fully_materialized:
            return self._finalize_stored(name, full_value.copy())
        # Hybrid: store the bag projection onto the materialized attributes.
        if node.kind is NodeKind.SET:
            raise MediatorError(f"set node {name!r} cannot be hybrid")
        stored = BagRelation(self.stored_schema(name))
        for r, n in full_value.items():
            stored.insert(r.project(ann.materialized_attrs), n)
        return self._finalize_stored(name, stored)

    # ------------------------------------------------------------------
    # Delta repositories (ΔR)
    # ------------------------------------------------------------------
    def delta(self, name: str) -> AnyDelta:
        """The accumulated full-width delta for a node (empty if none)."""
        node = self.vdp.node(name)
        existing = self._deltas.get(name)
        if existing is not None:
            return existing
        fresh: AnyDelta = SetDelta() if node.kind is NodeKind.SET else BagDelta()
        self._deltas[name] = fresh
        return fresh

    def accumulate(self, name: str, delta: AnyDelta) -> None:
        """Smash an incoming contribution into the node's ΔR repository.

        Smashing is the kernel's net-effect compaction: atoms the incoming
        contribution cancels against the accumulated ΔR vanish here and are
        never applied or propagated.  The cancellation count is surfaced as
        ``store.deltas_smashed``.
        """
        node = self.vdp.node(name)
        current = self.delta(name)
        if node.kind is NodeKind.SET:
            if isinstance(delta, BagDelta):
                delta = bag_to_set(delta)
            smashed = current.smash(delta)
            gross = current.atom_count() + delta.atom_count()
            net = smashed.atom_count()
        else:
            if isinstance(delta, SetDelta):
                delta = set_to_bag(delta)
            smashed = current.smash(delta)
            gross = current.entry_count() + delta.entry_count()
            net = smashed.entry_count()
        self.stats.deltas_smashed += gross - net
        self._deltas[name] = smashed

    def has_pending_delta(self, name: str) -> bool:
        """True when the node has a non-empty accumulated delta."""
        d = self._deltas.get(name)
        return d is not None and not d.is_empty()

    def clear_delta(self, name: str) -> None:
        """Reset a node's ΔR repository (after processing)."""
        self._deltas.pop(name, None)

    def pending_nodes(self) -> Tuple[str, ...]:
        """Nodes with non-empty ΔR, in topological order."""
        return tuple(
            n for n in self.vdp.non_leaves() if self.has_pending_delta(n)
        )

    # ------------------------------------------------------------------
    # Applying deltas to repositories
    # ------------------------------------------------------------------
    def normalize_set_delta(self, name: str, delta: SetDelta) -> SetDelta:
        """Drop atoms redundant for the node's current repository.

        Rule firings against a set node can accumulate atoms that cancel
        against the current state (e.g. a row entering the left operand and
        simultaneously entering the right one); normalizing here makes the
        applied — and upward-propagated — delta the exact net change.
        """
        repo = self.repo(name)
        out = SetDelta()
        for r, sign in delta.atoms_for(name):
            present = repo.contains(r)
            if sign > 0 and not present:
                out.insert(name, r)
            elif sign < 0 and present:
                out.delete(name, r)
        self.stats.deltas_smashed += delta.atom_count() - out.atom_count()
        return out

    def apply_delta(self, name: str, delta: AnyDelta) -> None:
        """Apply a full-width delta to the node's stored projection."""
        if name not in self._repos:
            return  # fully virtual: nothing stored
        node = self.vdp.node(name)
        ann = self.annotated.annotation(name)
        repo = self._repos[name]
        if node.kind is NodeKind.SET:
            if isinstance(delta, BagDelta):
                delta = bag_to_set(delta)
            delta.apply_to(repo, name)
            return
        if isinstance(delta, SetDelta):
            delta = set_to_bag(delta)
        if ann.fully_materialized:
            delta.apply_to(repo, name)
        else:
            projected = select_project(
                delta, name, predicate=TRUE, attrs=ann.materialized_attrs
            )
            projected.apply_to(repo, name)

    def retire_node(self, name: str) -> None:
        """Forget one node's storage entirely (repository, ΔR, indexes).

        Dynamic detach removes a subtree from the VDP; the store must drop
        the retired nodes' repositories so space is reclaimed and stale
        populations can never be read back.  Safe to call for nodes that
        never stored anything.
        """
        self._repos.pop(name, None)
        self._deltas.pop(name, None)
        self._index_requirements.pop(name, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_stored_rows(self) -> int:
        """Total multiplicity stored across all repositories (space proxy)."""
        return sum(repo.cardinality() for repo in self._repos.values())

    def total_stored_cells(self) -> int:
        """Stored rows × arity summed over repositories (finer space proxy)."""
        return sum(
            repo.cardinality() * repo.schema.arity for repo in self._repos.values()
        )

    def total_stored_bytes(self) -> int:
        """Estimated bytes across all repositories (see ``estimated_bytes``)."""
        return sum(repo.estimated_bytes() for repo in self._repos.values())

    def storage_metrics(self) -> List[Dict[str, object]]:
        """Per-node storage footprint rows for the stats CLI.

        One entry per storing node, sorted by name: stored multiplicity,
        distinct rows, and the layout-comparable byte estimate.
        """
        return [
            {
                "node": name,
                "rows_stored": repo.cardinality(),
                "distinct_rows": repo.distinct_size(),
                "estimated_bytes": repo.estimated_bytes(),
            }
            for name, repo in sorted(self._repos.items())
        ]

    @property
    def initialized(self) -> bool:
        """True once :meth:`initialize` has run."""
        return self._initialized
