"""The Incremental Update Processor (Section 6.4).

An update transaction has three phases:

(a) **Preparation** — a dry-run of the kernel over the flushed delta to
    determine which rules will fire and which virtual/hybrid relations those
    rules must read; each such read becomes a :class:`TempRequest`.
(b) **VAP call** — materialize the requested temporaries.  The VAP
    populates them to the state ``ref'(t_{i-1})`` by compensating poll
    answers against both the flushed delta and anything still queued.
(c) **Kernel** — the IUP Kernel Algorithm proper: traverse the VDP
    children-first; *process* each node with a pending delta by firing all
    rules out of it (accumulating contributions into its parents' ΔR
    repositories) and only then applying its own delta to its repository —
    the ordering discipline that captures every ``ΔR ⋈ ΔS`` cross-term
    exactly once (Example 6.1).

Temporary relations stand in for virtual/hybrid relations during the
kernel; when a node with a temporary is processed, its delta is applied to
the temporary too, so sibling reads observe the same
new-if-processed/old-if-not states as materialized repositories do.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.derived_from import TempRequest, child_requirements
from repro.core.local_store import LocalStore
from repro.core.rulebase import RuleBase
from repro.core.sharding import ShardPlan
from repro.core.update_queue import QueuedUpdate, UpdateQueue
from repro.core.vap import VirtualAttributeProcessor
from repro.core.vdp import AnnotatedVDP, NodeKind
from repro.deltas import AnyDelta, BagDelta, SetDelta, select_project, set_to_bag
from repro.errors import MediatorError, SourceUnavailableError
from repro.obs.metrics import reset_dataclass_counters
from repro.obs.provenance import TxnOrigin, origin_labels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg import TRUE, EvalCounters, Relation

__all__ = ["IUPStats", "UpdateTransactionResult", "IncrementalUpdateProcessor"]


def _task_work(counters: EvalCounters) -> int:
    """Deterministic work units of one shard task (no wall-clock anywhere).

    The sum of the evaluator's row-granular counters: what the task
    scanned, hashed, probed, and produced.  Summed over a batch it equals
    the serial firing's work (the shard split partitions the delta); the
    max over a batch is the batch's critical path under perfect
    parallelism — the ratio is the committed speedup model.
    """
    return (
        counters.rows_scanned
        + counters.rows_hashed
        + counters.hash_probes
        + counters.index_probes
        + counters.rows_produced
    )


@dataclass
class IUPStats:
    """Counters exposed to benchmarks."""

    transactions: int = 0
    empty_transactions: int = 0
    deferred_transactions: int = 0
    rules_fired: int = 0
    nodes_processed: int = 0
    temp_requests: int = 0
    delta_atoms_applied: int = 0
    propagation_passes: int = 0
    batched_messages: int = 0
    #: Sharded-kernel counters (all zero when parallel propagation is off).
    shard_tasks: int = 0
    shard_batches: int = 0
    exchange_reads: int = 0
    #: Total work units fired this window (equals the serial firing cost).
    shard_serial_work: int = 0
    #: Sum over batches of the max per-task work — the modelled critical
    #: path; ``shard_serial_work / shard_critical_work`` is the speedup.
    shard_critical_work: int = 0

    def reset(self) -> None:
        """Zero every counter (fields-derived; new counters reset for free)."""
        reset_dataclass_counters(self)


@dataclass
class UpdateTransactionResult:
    """What one update transaction did (for observers and benchmarks)."""

    flushed_messages: int
    flushed_atoms: int
    processed_nodes: Tuple[str, ...]
    rules_fired: int
    temps_requested: Tuple[str, ...]
    sources_polled: int
    deferred: bool = False
    unavailable_source: Optional[str] = None

    @property
    def was_empty(self) -> bool:
        """True when the queue was empty and nothing happened."""
        return self.flushed_messages == 0


class IncrementalUpdateProcessor:
    """Propagates queued source updates into the materialized data."""

    def __init__(
        self,
        annotated: AnnotatedVDP,
        store: LocalStore,
        rulebase: RuleBase,
        vap: VirtualAttributeProcessor,
        queue: UpdateQueue,
        tracer: Tracer = NULL_TRACER,
        shard_plan: Optional[ShardPlan] = None,
        parallel_propagation: bool = False,
        max_shard_workers: int = 8,
        smash_enabled: bool = True,
    ):
        self.annotated = annotated
        self.vdp = annotated.vdp
        self.store = store
        self.rulebase = rulebase
        self.vap = vap
        self.queue = queue
        self.tracer = tracer
        #: The partitioning the kernel splits deltas by (None: serial kernel).
        self.shard_plan = shard_plan
        self.parallel_propagation = parallel_propagation
        self.max_shard_workers = max_shard_workers
        #: Net-effect compaction (default on): the flushed batch is smashed
        #: into one per-leaf delta set and costs one kernel pass.  Off (the
        #: smash ablation), the kernel runs once per flushed message in
        #: arrival order — each pass is a correct incremental step, so the
        #: final state is identical; only the work differs.
        self.smash_enabled = smash_enabled
        self.stats = IUPStats()
        #: A :class:`~repro.durability.DurabilityManager`, when attached.
        #: Notified at commit time — after the kernel has applied every
        #: delta and the entries were marked reflected, so the logged record
        #: describes only state the store durably reflects (a deferred
        #: transaction never reaches the hook and never logs).
        self.durability = None
        #: The current transaction's repository writes, in apply order —
        #: exactly the arguments of every :meth:`_apply_to_node` since the
        #: transaction began.  Handed to the durability commit hook so WAL
        #: shipping can replicate stored state physically (replicas replay
        #: these instead of re-running propagation, which may poll).
        self._txn_applies: List[Tuple[str, AnyDelta]] = []

    # ------------------------------------------------------------------
    # The general IUP algorithm
    # ------------------------------------------------------------------
    def run_transaction(self) -> UpdateTransactionResult:
        """Flush the queue and propagate everything in it (one transaction)."""
        self.stats.transactions += 1
        tracer = self.tracer
        with tracer.span("update_txn") as txn_span:
            with tracer.span("queue_flush") as flush_span:
                combined, entries = self.queue.flush()
                flush_span.set(messages=len(entries))
            if combined is None:
                self.stats.empty_transactions += 1
                txn_span.set(empty=True)
                return UpdateTransactionResult(0, 0, (), 0, (), 0)

            leaf_deltas = self._leaf_deltas(combined)
            if self.smash_enabled:
                passes = [leaf_deltas]
            else:
                # Smash ablation: one kernel pass per flushed message, in
                # arrival order.  Sequential incremental passes over the
                # same temporaries reach exactly the netted single pass's
                # final state — the cancelled churn is just propagated
                # instead of vanishing at the queue/ΔR smash.
                passes = [
                    p for p in (self._leaf_deltas(e.delta) for e in entries) if p
                ]
                if not passes:
                    passes = [leaf_deltas]
            prov = tracer.provenance
            if prov.enabled:
                prov.begin_transaction(self._leaf_subs(entries))
            if tracer.enabled:
                for leaf in sorted(leaf_deltas):
                    tracer.event(
                        "leaf_delta",
                        leaf=leaf,
                        entries=leaf_deltas[leaf].entry_count(),
                        origins=origin_labels(prov.live_origins(leaf)),
                    )

            # Phase (a): determine needed temporary relations.  With
            # provenance on, leaves whose net delta cancelled to empty but
            # whose per-origin sub-deltas did not are still traversed (for
            # attribution-only firings), so their rules' reads are prepared
            # too.
            extra_affected: Set[str] = set(prov.live_nodes()) if prov.enabled else set()
            for pass_deltas in passes:
                # Leaves whose net delta cancelled to empty still get
                # per-message passes with smash off; prepare their reads too.
                extra_affected |= set(pass_deltas)
            with tracer.span("iup_prepare") as prep_span:
                requests = self._prepare(leaf_deltas, extra_affected)
                prep_span.set(temps=sorted(requests))
            self.stats.temp_requests += len(requests)

            # Phase (b): populate them through the VAP (state ref'(t_{i-1})).
            # A source going down between flush and poll aborts the
            # transaction *before* any store mutation (the kernel has not
            # run), so the flushed entries can be requeued intact and
            # retried next cycle — graceful degradation instead of a hang
            # or a half-applied delta.
            polls_before = self.vap.stats.polled_sources
            in_flight = self._in_flight_by_source(entries)
            try:
                temps = self.vap.materialize(requests.values(), in_flight) if requests else {}
            except SourceUnavailableError as exc:
                self.queue.requeue_front(entries)
                self.stats.deferred_transactions += 1
                tracer.event("txn_deferred", source=exc.source)
                txn_span.set(deferred=True)
                return UpdateTransactionResult(
                    0, 0, (), 0, tuple(sorted(requests)), 0,
                    deferred=True, unavailable_source=exc.source,
                )
            sources_polled = self.vap.stats.polled_sources - polls_before

            # Phase (c): the kernel, reading temporaries in place of
            # virtual data.  The N flushed messages were smashed into
            # per-leaf deltas above, so the whole batch costs exactly one
            # propagation pass.
            self._index_temps(temps)
            self.stats.batched_messages += len(entries)
            self._txn_applies = []
            processed: List[str] = []
            fired = 0
            with tracer.span("kernel") as kernel_span:
                for pass_deltas in passes:
                    self.stats.propagation_passes += 1
                    pass_processed, pass_fired = self._kernel(pass_deltas, temps)
                    fired += pass_fired
                    for n in pass_processed:
                        if n not in processed:
                            processed.append(n)
                kernel_span.set(nodes=list(processed), rules_fired=fired)
            prov.commit()
            self.queue.mark_reflected(entries)
            if self.durability is not None:
                self.durability.on_transaction_commit(
                    entries, processed, self._txn_applies
                )
            # The kernel just advanced the materialized state past these
            # leaf deltas, so cached VAP temporaries whose lineage they
            # touch are now stale — exactly here, and only here, do they
            # die.  (A deferred transaction mutates nothing, so its path
            # above invalidates nothing.)
            self.vap.invalidate_cache(leaf_deltas)
            txn_span.set(
                messages=len(entries),
                atoms=combined.atom_count(),
                rules_fired=fired,
                sources_polled=sources_polled,
            )

        return UpdateTransactionResult(
            flushed_messages=len(entries),
            flushed_atoms=combined.atom_count(),
            processed_nodes=tuple(processed),
            rules_fired=fired,
            temps_requested=tuple(sorted(requests)),
            sources_polled=sources_polled,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _leaf_deltas(self, combined: SetDelta) -> Dict[str, BagDelta]:
        """Split the flushed delta into per-leaf bag deltas.

        Leaf node names coincide with source relation names; atoms naming
        relations outside the VDP are ignored (the source announced more
        than this mediator integrates).
        """
        out: Dict[str, BagDelta] = {}
        for leaf in self.vdp.leaves():
            restricted = combined.restrict_to([leaf])
            if not restricted.is_empty():
                out[leaf] = set_to_bag(restricted)
        return out

    def _leaf_subs(
        self, entries: List[QueuedUpdate]
    ) -> Dict[str, List[Tuple[TxnOrigin, BagDelta]]]:
        """Per-leaf, per-origin sub-deltas of the flushed entries.

        These are the *pre-fold* deltas: their bag-sum equals the
        net-accumulated per-leaf delta (cancellation is addition of signed
        counts), which is what makes leaf-level provenance attribution
        exact.
        """
        leaves = set(self.vdp.leaves())
        out: Dict[str, List[Tuple[TxnOrigin, BagDelta]]] = {}
        for entry in entries:
            for relation in entry.delta.relations():
                if relation not in leaves:
                    continue
                restricted = entry.delta.restrict_to([relation])
                if not restricted.is_empty():
                    out.setdefault(relation, []).append(
                        (entry.origin, set_to_bag(restricted))
                    )
        return out

    def _in_flight_by_source(self, entries: List[QueuedUpdate]) -> Dict[str, List[SetDelta]]:
        grouped: Dict[str, List[SetDelta]] = {}
        for entry in entries:
            grouped.setdefault(entry.source, []).append(entry.delta)
        return grouped

    def _index_temps(self, temps: Mapping[str, Relation]) -> None:
        """Build declared join-key indexes on this transaction's temporaries.

        Temporaries are fresh relations, so this is a per-transaction build
        over |temp| rows — but the kernel then applies deltas to them
        (:meth:`_apply_to_node`) with the indexes maintained incrementally,
        and every rule firing probes instead of re-hashing.
        """
        if not self.store.indexing_enabled:
            return
        for name, temp in temps.items():
            attrs = set(temp.schema.attribute_names)
            for keys in sorted(self.store.index_requirements_for(name)):
                if set(keys) <= attrs:
                    temp.ensure_index(keys, self.store.counters)

    # ------------------------------------------------------------------
    # Phase (a): the IUP Preparation Algorithm
    # ------------------------------------------------------------------
    def _prepare(
        self,
        leaf_deltas: Mapping[str, BagDelta],
        extra_affected: Iterable[str] = (),
    ) -> Dict[str, TempRequest]:
        """Dry-run the kernel to collect temporary-relation requests.

        Conservatively treats every node reachable from an updated leaf as
        affected (a real run might see its delta cancel to empty); for every
        rule that would fire, the relations the rule reads that are not
        covered by materialized storage are requested at the width the
        rule's definition references.
        """
        affected: Set[str] = set(leaf_deltas) | set(extra_affected)
        requests: Dict[str, TempRequest] = {}
        schemas = self.vdp.schemas()
        for name in self.vdp.topological_order():
            if name not in affected:
                continue
            for rule in self.rulebase.rules_out_of(name):
                parent = rule.parent
                affected.add(parent)
                parent_node = self.vdp.node(parent)
                needs = child_requirements(
                    parent_node.definition,
                    frozenset(parent_node.schema.attribute_names),
                    TRUE,
                    schemas,
                )
                for sibling in rule.sibling_names():
                    requirement = needs.get(sibling)
                    if requirement is None:
                        continue
                    if self._covered(requirement):
                        continue
                    existing = requests.get(sibling)
                    requests[sibling] = (
                        existing.merge(requirement) if existing else requirement
                    )
        return requests

    def _covered(self, request: TempRequest) -> bool:
        if not self.store.has_repo(request.relation):
            return False
        ann = self.annotated.annotation(request.relation)
        return ann.covers(request.attrs | request.predicate.attributes())

    # ------------------------------------------------------------------
    # Phase (c): the IUP Kernel Algorithm
    # ------------------------------------------------------------------
    def _kernel(
        self,
        leaf_deltas: Mapping[str, BagDelta],
        temps: Dict[str, Relation],
    ) -> Tuple[List[str], int]:
        processed: List[str] = []
        fired = 0
        tracer = self.tracer
        prov = tracer.provenance

        # Initialization (step 1): fire all rules out of updated leaves.
        for leaf in sorted(leaf_deltas):
            fired += self._fire_rules_out_of(leaf, leaf_deltas[leaf], temps)

        # Upward traversal (step 2): process nodes children-first.
        for name in self.vdp.non_leaves():
            if not self.store.has_pending_delta(name):
                continue
            delta = self.store.delta(name)
            node = self.vdp.node(name)
            if node.kind is NodeKind.SET:
                before = delta.atom_count()
                delta = self._normalize_set_delta(name, delta, temps)
                if delta.atom_count() != before:
                    # Set-semantics normalization dropped atoms: the node's
                    # actual change is no longer the bag image of its
                    # contributions, so origin attribution through it can
                    # only be an upper bound.
                    prov.mark_approx(name)
                if delta.is_empty():
                    self.store.clear_delta(name)
                    continue
            with tracer.span("process_node", node=name):
                fired += self._fire_rules_out_of(name, delta, temps)
                self._apply_to_node(name, delta, temps)
                if tracer.enabled:
                    size = (
                        delta.atom_count()
                        if isinstance(delta, SetDelta)
                        else delta.entry_count()
                    )
                    tracer.event("node_apply", node=name, delta_size=size)
            self.store.clear_delta(name)
            processed.append(name)
            self.stats.nodes_processed += 1

        # Attribution pass (step 3): with every delta applied, blame each
        # origin by firing its exclusion deltas against post-state
        # catalogs (see _reconcile_provenance for why it must run last).
        if prov.enabled:
            self._reconcile_provenance(temps)
        return processed, fired

    def _normalize_set_delta(
        self, name: str, delta: SetDelta, temps: Mapping[str, Relation]
    ) -> SetDelta:
        """Drop redundant atoms from a set node's accumulated delta.

        Normalizes against the node's repository when it stores full rows,
        else against its (old-state) temporary, so the propagated delta is
        the exact net change in either case.
        """
        if self.store.has_repo(name) and self.annotated.is_fully_materialized(name):
            return self.store.normalize_set_delta(name, delta)
        temp = temps.get(name)
        if temp is None:
            return delta
        out = SetDelta()
        for r, sign in delta.atoms_for(name):
            present = temp.contains(r)
            if sign > 0 and not present:
                out.insert(name, r)
            elif sign < 0 and present:
                out.delete(name, r)
        self.store.stats.deltas_smashed += delta.atom_count() - out.atom_count()
        return out

    def _fire_rules_out_of(
        self, name: str, delta: AnyDelta, temps: Mapping[str, Relation]
    ) -> int:
        bag_delta = set_to_bag(delta) if isinstance(delta, SetDelta) else delta
        if self.parallel_propagation and self.shard_plan is not None:
            return self._fire_rules_parallel(name, bag_delta, temps)
        fired = 0
        tracer = self.tracer
        for rule in self.rulebase.rules_out_of(name):
            catalog = {}
            for sibling in rule.sibling_names():
                catalog[sibling] = self._resolve(sibling, temps)
            contribution = rule.fire(bag_delta, catalog, self.store.counters)
            if not contribution.is_empty():
                self.store.accumulate(rule.parent, contribution)
            fired += 1
            self.stats.rules_fired += 1
            if tracer.enabled:
                out_size = (
                    contribution.atom_count()
                    if isinstance(contribution, SetDelta)
                    else contribution.entry_count()
                )
                tracer.event(
                    "rule_fire",
                    child=name,
                    parent=rule.parent,
                    delta_size=bag_delta.entry_count(),
                    contribution_size=out_size,
                )
        return fired

    def _fire_rules_parallel(
        self, name: str, bag_delta: BagDelta, temps: Mapping[str, Relation]
    ) -> int:
        """Fire all rules out of ``name`` as a pool of (rule × shard) tasks.

        Only *linear* rules are split by the node's shard key — their
        contributions are signed-count sums, so firing sub-deltas against
        the same sibling states and smashing the parts is exactly the
        whole-delta firing.  Non-linear rules (difference nodes,
        self-joins) fire as one task over the whole delta.  Rule firings
        never mutate shared state (contributions accumulate on the main
        thread afterwards), so all tasks of one batch run concurrently on
        a bounded pool, same discipline as ``vap._run_polls``: workers
        only time themselves; results, counters, spans, and events merge
        on the main thread in deterministic (rule, shard) submission
        order, regardless of completion order.
        """
        rules = self.rulebase.rules_out_of(name)
        if not rules:
            return 0
        plan = self.shard_plan
        tracer = self.tracer

        # Task list in (rule index, shard index) order — the merge order.
        tasks: List[Tuple[int, Optional[int], BagDelta, Dict[str, Relation]]] = []
        for idx, rule in enumerate(rules):
            catalog = {s: self._resolve(s, temps) for s in rule.sibling_names()}
            if rule.is_linear and plan.num_shards > 1:
                parts = plan.split(name, bag_delta)
                live = [(si, sub) for si, sub in enumerate(parts) if sub is not None]
                if len(live) > 1:
                    for si, sub in live:
                        tasks.append((idx, si, sub, catalog))
                    continue
            tasks.append((idx, None, bag_delta, catalog))

        def run_task(task):
            idx, _si, sub, catalog = task
            counters = EvalCounters()
            # Workers never touch the tracer span stack — they just time
            # themselves; the main thread backfills completed spans.
            started = tracer.clock() if tracer.enabled else 0.0
            contribution = rules[idx].fire(sub, catalog, counters)
            ended = tracer.clock() if tracer.enabled else 0.0
            return contribution, counters, started, ended

        if len(tasks) > 1 and self.max_shard_workers > 1:
            workers = min(len(tasks), self.max_shard_workers)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="iup-shard"
            ) as pool:
                futures = [pool.submit(run_task, task) for task in tasks]
                results = [f.result() for f in futures]
        else:
            results = [run_task(task) for task in tasks]

        # Deterministic sorted merge in task (rule, shard) order.
        merged: List[Optional[AnyDelta]] = [None] * len(rules)
        batch_work: List[int] = []
        for (idx, si, _sub, _catalog), (contribution, counters, started, ended) in zip(
            tasks, results
        ):
            self.store.counters.merge(counters)
            work = _task_work(counters)
            batch_work.append(work)
            merged[idx] = (
                contribution if merged[idx] is None else merged[idx].smash(contribution)
            )
            if tracer.enabled:
                tracer.add_completed_span(
                    "shard_worker",
                    started,
                    ended,
                    node=name,
                    parent=rules[idx].parent,
                    shard=si,
                    work=work,
                )
        self.stats.shard_tasks += len(tasks)
        self.stats.shard_batches += 1
        self.stats.shard_serial_work += sum(batch_work)
        self.stats.shard_critical_work += max(batch_work)

        fired = 0
        for idx, rule in enumerate(rules):
            contribution = merged[idx]
            info = plan.edge_info(rule.parent, name)
            if info is not None and info.exchange_siblings:
                self.stats.exchange_reads += len(info.exchange_siblings)
                if tracer.enabled:
                    tracer.event(
                        "exchange",
                        child=name,
                        parent=rule.parent,
                        siblings=list(info.exchange_siblings),
                    )
            if contribution is not None and not contribution.is_empty():
                self.store.accumulate(rule.parent, contribution)
            fired += 1
            self.stats.rules_fired += 1
            if tracer.enabled:
                out_size = (
                    contribution.atom_count()
                    if isinstance(contribution, SetDelta)
                    else contribution.entry_count()
                )
                tracer.event(
                    "rule_fire",
                    child=name,
                    parent=rule.parent,
                    delta_size=bag_delta.entry_count(),
                    contribution_size=out_size,
                )
        return fired

    # ------------------------------------------------------------------
    # Delta provenance attribution (active only with provenance tracing)
    # ------------------------------------------------------------------
    def _reconcile_provenance(self, temps: Mapping[str, Relation]) -> None:
        """Blame origins bottom-up against *post-transaction* state.

        The contract (``repro.obs.provenance``) is exclusion semantics: an
        origin belongs to a node's origin set iff excluding that source
        transaction would change the node's recomputed value.  For a
        linear rule, the origin's *exclusion delta* at the parent is the
        rule fired with the child's exclusion delta against the siblings'
        post-transaction values — post-state, because under exclusion every
        *other* origin stays applied.  That is why this pass cannot run
        during the upward traversal: there rules fire against mixed
        pre/post sibling states (exact for the value computation, by
        telescoping), so a join cross term — a new-R row meeting a new-S
        row — would be blamed only on whichever side fired second and
        silently omitted from the other side's origin set.

        Exclusion deltas accumulate in the provenance tracker's per-origin
        row counts (summed across a node's incoming edges, so diamond
        paths that cancel drop the origin correctly).  Non-linear rules
        (difference, self-joins) don't decompose per origin; they carry the
        child's whole origin set across and flag the parent approximate —
        an upper bound, never an omission.  The same demotion applies when
        one origin reaches both inputs of a join (its exclusion delta is
        then not linear in either child alone).
        """
        prov = self.tracer.provenance
        leaves = set(self.vdp.leaves())
        edges_into: Dict[str, List[Tuple[str, CompiledRule]]] = {}
        for child in self.vdp.topological_order():
            for rule in self.rulebase.rules_out_of(child):
                edges_into.setdefault(rule.parent, []).append((child, rule))
        with self.tracer.span("provenance_reconcile"):
            # non_leaves() is children-first, so when a parent is visited
            # every child's origin set and exclusion sub-deltas are final.
            for parent in self.vdp.non_leaves():
                for child, rule in edges_into.get(parent, ()):
                    live = prov.live_origins(child)
                    if not live:
                        continue
                    if prov.live_approx(child) or not rule.is_linear:
                        prov.note_origins(parent, live)
                        prov.mark_approx(parent)
                        continue
                    catalog = {}
                    shared = frozenset()
                    for sibling in rule.sibling_names():
                        catalog[sibling] = self._resolve(sibling, temps)
                        shared |= live & prov.live_origins(sibling)
                    if shared:
                        prov.note_origins(parent, shared)
                        prov.mark_approx(parent)
                    for origin, sub in prov.sub_deltas(child):
                        prov.record_contribution(
                            parent, origin, rule.fire(sub, catalog)
                        )
            if self.tracer.enabled:
                for node in prov.live_nodes():
                    if node in leaves:
                        continue
                    self.tracer.event(
                        "node_provenance",
                        node=node,
                        origins=origin_labels(prov.live_origins(node)),
                        approx=prov.live_approx(node),
                    )

    def _resolve(self, name: str, temps: Mapping[str, Relation]) -> Relation:
        if name in temps:
            return temps[name]
        if self.store.has_repo(name):
            # For a hybrid node this is the projection onto its materialized
            # attributes — sufficient exactly when preparation found the
            # rule's requirement covered (otherwise a temporary exists).
            return self.store.repo(name)
        raise MediatorError(
            f"rule needs virtual node {name!r} but no temporary was prepared"
        )

    def _apply_to_node(
        self, name: str, delta: AnyDelta, temps: Dict[str, Relation]
    ) -> None:
        """Apply a processed node's delta to its repository and temporary."""
        if isinstance(delta, SetDelta):
            self.stats.delta_atoms_applied += delta.atom_count()
        else:
            self.stats.delta_atoms_applied += delta.entry_count()
        self._txn_applies.append((name, delta))
        self.store.apply_delta(name, delta)
        temp = temps.get(name)
        if temp is not None:
            bag_delta = set_to_bag(delta) if isinstance(delta, SetDelta) else delta
            projected = select_project(
                bag_delta, name, TRUE, tuple(temp.schema.attribute_names)
            )
            projected.apply_to(temp, name)
