"""Persistence and warm restart for the mediator's local store.

A production mediator should not rebuild its materialized data from scratch
after a restart — Section 2 notes the whole point of materialization is to
avoid re-reading the sources.  This module adds a snapshot/restore protocol
on top of SQLite:

* :func:`save_mediator` — persist every repository plus a *cursor* (each
  source's transaction sequence number at save time) into one SQLite file.
  The mediator must be quiescent (queue empty); call ``refresh()`` first.
* :func:`restore_mediator` — rebuild a mediator from the snapshot WITHOUT
  re-reading source relations wholesale, then *catch up*: each announcing
  source replays its transaction log past the saved cursor, the replayed
  net delta is enqueued, and one update transaction brings the view
  current.  Only the updates committed while the mediator was down are
  processed.

Rows are stored as JSON arrays aligned with the stored schema's attribute
order, with a multiplicity column (always 1 for set nodes).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, List, Mapping, Optional

from repro.core.mediator import SquirrelMediator
from repro.core.vdp import AnnotatedVDP, NodeKind
from repro.deltas import SetDelta, net_accumulate
from repro.errors import MediatorError
from repro.relalg import BagRelation, Row, SetRelation
from repro.sources.base import SourceDatabase

__all__ = ["save_mediator", "restore_mediator"]

_META_DDL = """
CREATE TABLE IF NOT EXISTS squirrel_meta (
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (kind, name)
)
"""
_ROWS_DDL = """
CREATE TABLE IF NOT EXISTS squirrel_rows (
    node TEXT NOT NULL,
    row_json TEXT NOT NULL,
    multiplicity INTEGER NOT NULL
)
"""


def save_mediator(mediator: SquirrelMediator, path: str) -> int:
    """Snapshot a quiescent mediator's local store; returns rows written.

    Raises :class:`MediatorError` if the update queue is non-empty or a
    source still has unannounced updates — flush first with ``refresh()``
    so the cursor semantics are unambiguous.
    """
    if not mediator.initialized:
        raise MediatorError("cannot save an uninitialized mediator")
    if not mediator.queue.is_empty():
        raise MediatorError("queue not empty: call refresh() before save")
    for name, kind in mediator.contributor_kinds.items():
        if kind.announces and mediator.sources[name].has_pending_announcement():
            raise MediatorError(
                f"source {name!r} has unannounced updates: call refresh() before save"
            )

    conn = sqlite3.connect(path)
    try:
        cur = conn.cursor()
        cur.execute(_META_DDL)
        cur.execute(_ROWS_DDL)
        cur.execute("DELETE FROM squirrel_meta")
        cur.execute("DELETE FROM squirrel_rows")

        for source_name, source in mediator.sources.items():
            cur.execute(
                "INSERT INTO squirrel_meta VALUES ('cursor', ?, ?)",
                (source_name, str(source.txn_count)),
            )

        written = 0
        for node_name in mediator.annotated.nodes_with_storage():
            repo = mediator.store.repo(node_name)
            names = repo.schema.attribute_names
            cur.execute(
                "INSERT INTO squirrel_meta VALUES ('node', ?, ?)",
                (node_name, json.dumps(list(names))),
            )
            for r, n in repo.items():
                cur.execute(
                    "INSERT INTO squirrel_rows VALUES (?, ?, ?)",
                    (node_name, json.dumps(list(r.values_for(names))), n),
                )
                written += 1
        conn.commit()
        return written
    finally:
        conn.close()


def _load_snapshot(path: str):
    conn = sqlite3.connect(path)
    try:
        cur = conn.cursor()
        cursors: Dict[str, int] = {}
        node_columns: Dict[str, List[str]] = {}
        for kind, name, payload in cur.execute("SELECT kind, name, payload FROM squirrel_meta"):
            if kind == "cursor":
                cursors[name] = int(payload)
            elif kind == "node":
                node_columns[name] = json.loads(payload)
        rows: Dict[str, List] = {name: [] for name in node_columns}
        for node, row_json, multiplicity in cur.execute(
            "SELECT node, row_json, multiplicity FROM squirrel_rows"
        ):
            rows[node].append((json.loads(row_json), multiplicity))
        return cursors, node_columns, rows
    finally:
        conn.close()


def restore_mediator(
    annotated: AnnotatedVDP,
    sources: Mapping[str, SourceDatabase],
    path: str,
    eca_enabled: bool = True,
    key_based_enabled: bool = True,
) -> SquirrelMediator:
    """Rebuild a mediator from a snapshot and catch up from source logs.

    Sources must be the same databases (or replicas thereof) whose
    transaction logs extend the saved cursors; updates committed after the
    snapshot are replayed as one net delta per source and propagated
    incrementally.  Sources whose log no longer reaches back to the cursor
    would need a cold ``initialize()`` instead — that case raises.
    """
    cursors, node_columns, rows = _load_snapshot(path)
    mediator = SquirrelMediator(
        annotated,
        sources,
        eca_enabled=eca_enabled,
        key_based_enabled=key_based_enabled,
    )

    expected = set(annotated.nodes_with_storage())
    if expected != set(node_columns):
        raise MediatorError(
            f"snapshot covers nodes {sorted(node_columns)}, annotation stores {sorted(expected)}"
        )

    # Populate repositories straight from the snapshot.
    for node_name, columns in node_columns.items():
        node = annotated.vdp.node(node_name)
        stored_schema = mediator.store.stored_schema(node_name)
        if list(stored_schema.attribute_names) != columns:
            raise MediatorError(
                f"snapshot of {node_name!r} has columns {columns}, "
                f"current annotation stores {list(stored_schema.attribute_names)}"
            )
        if node.kind is NodeKind.SET:
            repo = SetRelation(stored_schema)
            for values, _ in rows[node_name]:
                repo.insert(Row(dict(zip(columns, values))))
        else:
            repo = BagRelation(stored_schema)
            for values, multiplicity in rows[node_name]:
                repo.insert(Row(dict(zip(columns, values))), multiplicity)
        mediator.store._repos[node_name] = repo
    mediator.store._initialized = True
    mediator._initialized = True

    # Catch up: replay each announcing source's log past the cursor.
    for source_name, kind in sorted(mediator.contributor_kinds.items()):
        if not kind.announces:
            continue
        source = mediator.sources[source_name]
        cursor = cursors.get(source_name)
        if cursor is None:
            raise MediatorError(f"snapshot lacks a cursor for source {source_name!r}")
        missed = [delta for seq, delta in source.log() if seq > cursor]
        if len([seq for seq, _ in source.log() if seq <= cursor]) != cursor:
            raise MediatorError(
                f"source {source_name!r} log does not reach back to cursor {cursor}; "
                "cold-initialize instead"
            )
        # The missed updates are about to be applied from the log; whatever
        # sits in the pending-announcement accumulator describes the same
        # transactions and must not be delivered twice.
        source.take_announcement()
        # Fold with cancellation (not smash): insert-then-delete across
        # missed transactions must net to nothing, exactly like a source's
        # own announcement accumulator.
        net = SetDelta()
        for delta in missed:
            net = net_accumulate(net, delta)
        if not net.is_empty():
            mediator.enqueue_update(source_name, net)
    mediator.run_update_transaction()
    return mediator
