"""Persistence and warm restart for the mediator's local store.

A production mediator should not rebuild its materialized data from scratch
after a restart — Section 2 notes the whole point of materialization is to
avoid re-reading the sources.  This module adds a snapshot/restore protocol
on top of SQLite:

* :func:`save_mediator` — persist every repository plus a *cursor* per
  source (how far into the source's transaction log the materialized data
  is known to reflect) into one SQLite file.  The mediator need **not** be
  quiescent: queued-but-unreflected announcements are simply not part of
  the snapshot, and the saved cursors point at exactly the log positions
  the stored repositories correspond to — restore replays everything past
  them.
* :func:`restore_mediator` — rebuild a mediator from the snapshot WITHOUT
  re-reading source relations wholesale, then *catch up*: each announcing
  source replays its transaction log past the saved cursor, the replayed
  net delta is enqueued, and one update transaction brings the view
  current.  Only the updates committed while the mediator was down are
  processed.  A source whose log has been compacted past the saved cursor
  raises :class:`~repro.errors.SnapshotStaleError` (carrying the exact
  per-source gap) — or, with ``on_stale="reinit"``, falls back to
  *selective re-initialization* of just that source's contributions
  (:func:`reinitialize_sources`).

Rows are stored as JSON arrays aligned with the stored schema's attribute
order, with a multiplicity column (always 1 for set nodes).  The row codec
(:func:`encode_repo_rows` / :func:`decode_repo`) is shared with the
checkpoint half of :mod:`repro.durability`, so a snapshot and a checkpoint
agree byte-for-byte on what a repository looks like at rest.

Cursor semantics rely on announcements reaching the queue with their
source-log cursors attached (the :class:`~repro.core.links.DirectLink`
path).  Deltas enqueued manually without a cursor advance the materialized
state but not the recorded cursor; saving such a mediator and restoring
against the same logs would replay those transactions twice.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.mediator import SquirrelMediator
from repro.core.vdp import AnnotatedVDP, NodeKind
from repro.deltas import SetDelta, net_accumulate
from repro.errors import MediatorError, OrphanStateError, SnapshotStaleError
from repro.relalg import BagRelation, Evaluator, Relation, RelationSchema, Row, SetRelation

__all__ = [
    "save_mediator",
    "restore_mediator",
    "reinitialize_sources",
    "encode_repo_rows",
    "decode_repo",
    "source_cursor",
]

_META_DDL = """
CREATE TABLE IF NOT EXISTS squirrel_meta (
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (kind, name)
)
"""
_ROWS_DDL = """
CREATE TABLE IF NOT EXISTS squirrel_rows (
    node TEXT NOT NULL,
    row_json TEXT NOT NULL,
    multiplicity INTEGER NOT NULL
)
"""


# ----------------------------------------------------------------------
# The shared repository row codec (snapshots and checkpoints)
# ----------------------------------------------------------------------
def encode_repo_rows(repo: Relation) -> Tuple[List[str], List[Tuple[List, int]]]:
    """One repository as ``(columns, [(values, multiplicity), ...])``.

    Values are listed in the stored schema's attribute order, so the pair
    round-trips through JSON without depending on dict ordering.
    """
    names = repo.schema.attribute_names
    rows = [(list(r.values_for(names)), n) for r, n in repo.items()]
    return list(names), rows


def decode_repo(
    kind: NodeKind,
    stored_schema: RelationSchema,
    columns: Sequence[str],
    rows: Iterable[Tuple[Sequence, int]],
    node_name: str,
) -> Relation:
    """Rebuild one repository from its encoded form.

    Raises :class:`MediatorError` when the encoded column order disagrees
    with the current annotation's stored schema — silently zipping
    mismatched orders would scramble every row.
    """
    if list(stored_schema.attribute_names) != list(columns):
        raise MediatorError(
            f"snapshot of {node_name!r} has columns {list(columns)}, "
            f"current annotation stores {list(stored_schema.attribute_names)}"
        )
    if kind is NodeKind.SET:
        repo: Relation = SetRelation(stored_schema)
        for values, _ in rows:
            repo.insert(Row(dict(zip(columns, values))))
    else:
        repo = BagRelation(stored_schema)
        for values, multiplicity in rows:
            repo.insert(Row(dict(zip(columns, values))), multiplicity)
    return repo


def source_cursor(mediator: SquirrelMediator, source_name: str) -> int:
    """How far into one source's log the materialized data reflects.

    The queue tracks this exactly (seeded at initialization, advanced as
    cursor-carrying entries are reflected); a mediator that predates the
    cursor plumbing falls back to the source's live transaction count —
    correct only at quiescence, which is all such mediators supported.
    """
    reflected = mediator.queue.reflected_cursor(source_name)
    if reflected is not None:
        return reflected
    return mediator.sources[source_name].txn_count


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
def save_mediator(mediator: SquirrelMediator, path: str) -> int:
    """Snapshot a mediator's local store; returns rows written.

    The mediator may be mid-stream: a non-empty queue or unannounced
    source updates are fine.  The snapshot stores the repositories *as
    they are* plus the per-source cursors they reflect; everything past a
    cursor is recovered from the source's log at restore time.
    """
    if not mediator.initialized:
        raise MediatorError("cannot save an uninitialized mediator")

    conn = sqlite3.connect(path)
    try:
        cur = conn.cursor()
        cur.execute(_META_DDL)
        cur.execute(_ROWS_DDL)
        cur.execute("DELETE FROM squirrel_meta")
        cur.execute("DELETE FROM squirrel_rows")

        for source_name in mediator.sources:
            cur.execute(
                "INSERT INTO squirrel_meta VALUES ('cursor', ?, ?)",
                (source_name, str(source_cursor(mediator, source_name))),
            )

        written = 0
        for node_name in mediator.annotated.nodes_with_storage():
            columns, rows = encode_repo_rows(mediator.store.repo(node_name))
            cur.execute(
                "INSERT INTO squirrel_meta VALUES ('node', ?, ?)",
                (node_name, json.dumps(columns)),
            )
            for values, n in rows:
                cur.execute(
                    "INSERT INTO squirrel_rows VALUES (?, ?, ?)",
                    (node_name, json.dumps(values), n),
                )
                written += 1
        conn.commit()
        return written
    finally:
        conn.close()


def _load_snapshot(path: str):
    conn = sqlite3.connect(path)
    try:
        cur = conn.cursor()
        cursors: Dict[str, int] = {}
        node_columns: Dict[str, List[str]] = {}
        for kind, name, payload in cur.execute("SELECT kind, name, payload FROM squirrel_meta"):
            if kind == "cursor":
                cursors[name] = int(payload)
            elif kind == "node":
                node_columns[name] = json.loads(payload)
        rows: Dict[str, List] = {name: [] for name in node_columns}
        for node, row_json, multiplicity in cur.execute(
            "SELECT node, row_json, multiplicity FROM squirrel_rows"
        ):
            rows[node].append((json.loads(row_json), multiplicity))
        return cursors, node_columns, rows
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore_mediator(
    annotated: AnnotatedVDP,
    sources: Mapping[str, "SourceDatabase"],
    path: str,
    eca_enabled: bool = True,
    key_based_enabled: bool = True,
    on_stale: str = "raise",
    on_orphan: str = "drop",
    shards: int = 1,
    parallel_propagation: "Optional[bool]" = None,
    layout: str = "row",
    smash_enabled: bool = True,
) -> SquirrelMediator:
    """Rebuild a mediator from a snapshot and catch up from source logs.

    Sources must be the same databases (or replicas thereof) whose
    transaction logs extend the saved cursors; updates committed after the
    snapshot are replayed as one net delta per source and propagated
    incrementally.

    ``on_stale`` decides what happens when a source's log no longer
    reaches back to its saved cursor (the source compacted autonomously):

    * ``"raise"`` (default) — raise :class:`SnapshotStaleError` carrying
      every stale source's exact cursor gap;
    * ``"reinit"`` — restore everything else from the snapshot, then
      selectively re-initialize just the stale sources' leaf relations and
      the materialized subtree above them (:func:`reinitialize_sources`)
      from fresh snapshots.  Intact sources still catch up incrementally.

    ``on_orphan`` decides what happens when the snapshot holds *more* than
    the current federation: nodes imaged for a source that has since been
    detached (or cursors for it).  ``"drop"`` (default) discards the
    orphan state — a detach is an intentional shrink, and the surviving
    repositories restore normally; ``"raise"`` raises
    :class:`~repro.errors.OrphanStateError` naming the orphan nodes and
    cursors.  A snapshot *missing* nodes the annotation stores is always
    an error — those repositories cannot be conjured.
    """
    if on_stale not in ("raise", "reinit"):
        raise MediatorError(f"on_stale must be 'raise' or 'reinit', got {on_stale!r}")
    if on_orphan not in ("drop", "raise"):
        raise MediatorError(f"on_orphan must be 'drop' or 'raise', got {on_orphan!r}")
    cursors, node_columns, rows = _load_snapshot(path)
    mediator = SquirrelMediator(
        annotated,
        sources,
        eca_enabled=eca_enabled,
        key_based_enabled=key_based_enabled,
        shards=shards,
        parallel_propagation=parallel_propagation,
        layout=layout,
        smash_enabled=smash_enabled,
    )

    expected = set(annotated.nodes_with_storage())
    present = set(node_columns)
    missing = expected - present
    if missing:
        raise MediatorError(
            f"snapshot covers nodes {sorted(present)}, annotation stores {sorted(expected)}"
        )
    orphan_nodes = present - expected
    orphan_cursors = set(cursors) - set(mediator.sources)
    if orphan_nodes or orphan_cursors:
        if on_orphan == "raise":
            raise OrphanStateError(orphan_nodes, orphan_cursors)
        for node_name in orphan_nodes:
            node_columns.pop(node_name)
            rows.pop(node_name, None)
        for source_name in orphan_cursors:
            cursors.pop(source_name)

    # Populate repositories straight from the snapshot.
    for node_name, columns in node_columns.items():
        node = annotated.vdp.node(node_name)
        mediator.store.install_repo(
            node_name,
            decode_repo(
                node.kind,
                mediator.store.stored_schema(node_name),
                columns,
                rows[node_name],
                node_name,
            ),
        )
    mediator.store._initialized = True
    mediator.store._build_declared_indexes()
    mediator._initialized = True
    for source_name, cursor in cursors.items():
        if source_name in mediator.sources:
            mediator.queue.note_reflected_cursor(source_name, cursor)

    # Catch up: replay each announcing source's log past the cursor.
    # First sweep for staleness so the error (or fallback) covers *every*
    # gap at once instead of failing on the first.
    stale: Dict[str, Tuple[int, int]] = {}
    for source_name, kind in sorted(mediator.contributor_kinds.items()):
        if not kind.announces:
            continue
        source = mediator.sources[source_name]
        cursor = cursors.get(source_name)
        if cursor is None:
            raise MediatorError(f"snapshot lacks a cursor for source {source_name!r}")
        if not source.log_reaches(cursor):
            logged = [seq for seq, _ in source.log()]
            floor = min(logged) if logged else source.txn_count + 1
            stale[source_name] = (cursor, floor)
    if stale and on_stale == "raise":
        raise SnapshotStaleError(stale)

    for source_name, kind in sorted(mediator.contributor_kinds.items()):
        if not kind.announces or source_name in stale:
            continue
        source = mediator.sources[source_name]
        cursor = cursors[source_name]
        # The pending accumulator describes transactions the log replay is
        # about to cover; take it atomically with the cursor so nothing
        # committed in between is delivered twice or lost.
        _, now_cursor = source.take_announcement_versioned()
        missed = [delta for seq, delta in source.log() if cursor < seq <= now_cursor]
        # Fold with cancellation (not smash): insert-then-delete across
        # missed transactions must net to nothing, exactly like a source's
        # own announcement accumulator.
        net = SetDelta()
        for delta in missed:
            net = net_accumulate(net, delta)
        if not net.is_empty():
            mediator.enqueue_update(source_name, net, cursor=now_cursor)
        else:
            mediator.queue.note_reflected_cursor(source_name, now_cursor)
    mediator.run_update_transaction()

    if stale:
        for name in sorted(stale):
            mediator.begin_resync(name)
        try:
            reinitialize_sources(mediator, sorted(stale))
        finally:
            for name in sorted(stale):
                mediator.end_resync(name)
    return mediator


# ----------------------------------------------------------------------
# Selective re-initialization
# ----------------------------------------------------------------------
def reinitialize_sources(
    mediator: SquirrelMediator, source_names: Sequence[str]
) -> Tuple[str, ...]:
    """Rebuild just the given sources' contributions from fresh snapshots.

    The degraded half of recovery: when a source's log can no longer
    replay up to the materialized state's cursor, only that source's leaf
    relations and the materialized nodes *above* them need recomputing —
    every other repository is untouched.  Returns the storing nodes whose
    repositories were replaced.

    Correctness hinges on which state each leaf contributes:

    * **stale sources** contribute a fresh snapshot, taken atomically with
      its cursor (pending announcements are discarded — the snapshot
      already reflects them — and queued entries are purged for the same
      reason);
    * **intact sources** must contribute the state the *materialized data
      currently reflects*, not their live state: their queued and pending
      announcements will still be delivered and propagated incrementally
      later, so the recompute applies the inverse of those in-flight nets
      to the live snapshot.  Using the live state directly would apply
      those transactions twice.
    """
    names = set(source_names)
    unknown = names - set(mediator.sources)
    if unknown:
        raise MediatorError(f"cannot reinitialize unknown sources {sorted(unknown)}")
    vdp = mediator.vdp

    stale_leaves: Set[str] = set()
    for name in names:
        stale_leaves.update(vdp.leaves_of_source(name))
    affected: Set[str] = set(stale_leaves)
    for leaf in stale_leaves:
        affected.update(vdp.ancestors(leaf))

    # Leaf values for the recompute, per the contribution rules above.
    leaf_values: Dict[str, Relation] = {}
    for source_name in sorted({vdp.source_of_leaf(l) for l in vdp.leaves()}):
        source = mediator.sources[source_name]
        if source_name in names:
            mediator.queue.discard_source(source_name)
            snapshot, cursor = source.initial_snapshot()
            mediator.queue.note_reflected_cursor(source_name, cursor)
        else:
            snapshot = source.state()
            in_flight = SetDelta()
            for delta in mediator.queue.pending_for_source(source_name):
                in_flight = net_accumulate(in_flight, delta)
            in_flight = net_accumulate(in_flight, source.pending_announcement())
            if not in_flight.is_empty():
                rewind = in_flight.inverse()
                snapshot = {
                    rel: rewind.applied(value, rel) for rel, value in snapshot.items()
                }
        for leaf in vdp.leaves_of_source(source_name):
            leaf_values[leaf] = snapshot[leaf]

    # Bottom-up transient evaluation (exactly view initialization), but
    # only the affected nodes' repositories are replaced.
    transient: Dict[str, Relation] = {}
    replaced: List[str] = []
    storing = set(mediator.annotated.nodes_with_storage())
    for node_name in vdp.topological_order():
        node = vdp.node(node_name)
        if node.is_leaf:
            transient[node_name] = leaf_values[node_name]
            continue
        evaluator = Evaluator(transient, counters=mediator.store.counters)
        full_value = evaluator.evaluate(node.definition, node_name)
        transient[node_name] = full_value
        if node_name in affected and node_name in storing:
            mediator.store.reinitialize_node(node_name, full_value)
            replaced.append(node_name)
    # Cached temporaries may reflect the pre-reinit state of the affected
    # subtree; drop them wholesale (reinit is rare — precision is not
    # worth the bookkeeping).
    mediator.vap.clear_cache()
    if mediator.tracer.enabled:
        mediator.tracer.event(
            "source_reinit",
            sources=sorted(names),
            nodes=sorted(replaced),
        )
    return tuple(replaced)
