"""The Eager Compensation Algorithm generalization (Section 6.3).

When the mediator polls a hybrid-contributor source ``DB_k`` during an
update transaction, the answer reflects the source's *current* committed
state — which may already include updates whose announcements are (a)
sitting in the mediator's update queue, or (b) part of the delta ``Δ``
flushed for the transaction in progress.  The materialized data, however,
reflects the earlier state ``ref'(t_{i-1}).k``.

To make the poll answer line up, we apply "the inverse of [the] smash of
the updates for ``S`` that are in the update-queue up to the time when the
result of polling is received" — pushed through the same
selection/projection as the poll query itself, which is sound because apply
commutes with select and project (Section 6.2).

:func:`compensate` implements exactly that: given the polled answer for a
temporary relation defined by expression ``E`` over a leaf relation, and
the uncompensated deltas (queue + in-flight), it filters
``(smash(deltas))⁻¹`` through ``E`` and applies the result to the answer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.deltas import BagDelta, SetDelta, net_accumulate
from repro.errors import MediatorError
from repro.relalg import BagRelation, Expression, Relation, RelationSchema
from repro.core.rules import spj_delta

__all__ = ["compensate"]


def compensate(
    answer: Relation,
    temp_name: str,
    query_expr: Expression,
    leaf_name: str,
    leaf_schema: RelationSchema,
    uncompensated: Iterable[SetDelta],
) -> BagRelation:
    """Rewind a polled answer past not-yet-applied source updates.

    ``query_expr`` is the select/project(/rename) chain over ``leaf_name``
    that produced ``answer``; ``uncompensated`` are the source deltas (in
    arrival order) whose effects must be removed.  Returns the compensated
    answer as a bag.
    """
    result = BagRelation(answer.schema)
    for r, n in answer.items():
        result.insert(r, n)

    deltas = list(uncompensated)
    if not deltas:
        return result
    # Fold with cancellation (not smash): consecutive in-order messages may
    # carry +X then -X, whose net effect on the polled state is nothing.
    combined = SetDelta()
    for delta in deltas:
        combined = net_accumulate(combined, delta)
    inverse = combined.inverse().restrict_to([leaf_name])
    if inverse.is_empty():
        return result

    # Push the inverse through the same chain the poll used: because apply
    # commutes with select/project, apply(E(S), E(Δ⁻¹)) == E(apply(S, Δ⁻¹)).
    inverse_bag = BagDelta()
    for rel, row, sign in inverse.atoms():
        inverse_bag.add(rel, row, sign)
    filtered = spj_delta(
        query_expr,
        temp_name,
        leaf_name,
        inverse_bag,
        {},
        leaf_schema,
    )
    try:
        filtered.apply_to(result, temp_name)
    except Exception as exc:  # pragma: no cover - indicates an ordering bug
        raise MediatorError(
            f"compensation failed for temp {temp_name!r}: {exc}"
        ) from exc
    return result
