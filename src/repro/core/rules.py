"""Update-propagation rules, one per VDP edge (Section 5.2).

For a bag node ``T = π_p σ_f (π_{p1} σ_{f1} R_1 ⋈ … ⋈ π_{pn} σ_{fn} R_n)``
the rule for edge ``(T, R_i)`` computes (bag semantics)::

    ΔT = π_p σ_f (… ⋈ π_{pi} σ_{fi} ΔR_i ⋈ …)

with the *other* operands read from their **current repositories**.  Because
the IUP applies a node's accumulated delta to its repository only after
firing its out-edge rules, and processes nodes children-first, siblings
processed earlier are read in their new state and later ones in their old
state — which is exactly the correction of Example 6.1
(``ΔT = (R' ⋈ ΔS') ∪ (ΔR' ⋈ apply(S', ΔS'))``): no ``ΔR ⋈ ΔS`` cross-term
is missed and none is double-counted.

For a set node ``T = L − R`` the paper gives::

    on ΔR_1:  (ΔT)+ = (ΔR_1)+ − R_2        (ΔT)− = (ΔR_1)− − R_2
    on ΔR_2:  (ΔT)+ = (ΔR_2)− ∩ R_1        (ΔT)− = (ΔR_2)+ ∩ R_1

(The paper's text prints the first rule's deletion case with ``∩``; that is
a typo — a row leaving ``R_1`` leaves ``T`` only if it is *not* in ``R_2``,
i.e. set-minus.  The reproduction implements the corrected rule and the
test suite pins the counterexample.)

Bag deltas carry signed multiplicities; the linear operators (select,
project, join, union) distribute over them, so a rule evaluates the
definition once with the delta's positive part and once with its negative
part and combines the results with signs.  A child appearing *k* times in a
definition (self-join; the paper's footnote 2) contributes *k* occurrence
terms, with earlier occurrences read post-update and later ones pre-update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.deltas import BagDelta, SetDelta
from repro.errors import VDPError
from repro.relalg import (
    BagRelation,
    Difference,
    EvalCounters,
    Evaluator,
    Expression,
    Join,
    Project,
    Relation,
    Rename,
    RelationSchema,
    Scan,
    Select,
    SetRelation,
    Union,
)
from repro.relalg.tuples import Row

__all__ = [
    "spj_delta",
    "operand_support_delta",
    "BagNodeRule",
    "SetNodeRule",
    "build_rule",
]


def _count_occurrences(expr: Expression, name: str) -> int:
    if isinstance(expr, Scan):
        return 1 if expr.name == name else 0
    return sum(_count_occurrences(c, name) for c in expr.children())


def _replace_occurrences(
    expr: Expression, name: str, replacements: List[str], counter: List[int]
) -> Expression:
    """Rebuild ``expr`` with the k-th Scan(name) replaced by Scan(replacements[k])."""
    if isinstance(expr, Scan):
        if expr.name == name:
            idx = counter[0]
            counter[0] += 1
            return Scan(replacements[idx])
        return expr
    if isinstance(expr, Select):
        return Select(_replace_occurrences(expr.child, name, replacements, counter), expr.predicate)
    if isinstance(expr, Project):
        return Project(_replace_occurrences(expr.child, name, replacements, counter), expr.attrs, expr.dedup)
    if isinstance(expr, Rename):
        return Rename(_replace_occurrences(expr.child, name, replacements, counter), expr.mapping_dict)
    if isinstance(expr, Join):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Join(left, right, expr.condition)
    if isinstance(expr, Union):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Union(left, right)
    if isinstance(expr, Difference):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Difference(left, right)
    raise VDPError(f"unsupported node in rule rewriting: {type(expr).__name__}")


def _delta_parts(
    delta: BagDelta, relation: str, schema: RelationSchema
) -> Tuple[BagRelation, BagRelation]:
    """Split a bag delta into positive and negative part bags."""
    pos = BagRelation(schema)
    neg = BagRelation(schema)
    for r, n in delta.entries_for(relation):
        if n > 0:
            pos.insert(r, n)
        else:
            neg.insert(r, -n)
    return pos, neg


def spj_delta(
    definition: Expression,
    parent: str,
    child: str,
    child_delta: BagDelta,
    catalog: Mapping[str, Relation],
    child_schema: RelationSchema,
    counters: Optional[EvalCounters] = None,
) -> BagDelta:
    """The incremental update to ``parent`` induced by ``child_delta``.

    ``catalog`` must resolve every *other* relation referenced by
    ``definition`` (siblings read their current repositories or temporary
    relations), and — for self-joins — the child itself.
    """
    occurrences = _count_occurrences(definition, child)
    if occurrences == 0:
        raise VDPError(f"definition of {parent!r} does not reference {child!r}")

    pos_name = f"__dpos__{child}"
    neg_name = f"__dneg__{child}"
    new_name = f"__new__{child}"
    pos, neg = _delta_parts(child_delta, child, child_schema)

    extended: Dict[str, Relation] = dict(catalog)
    extended[pos_name] = pos
    extended[neg_name] = neg
    if occurrences > 1:
        new_rel = catalog[child].copy()
        child_delta.apply_to(new_rel, child)
        extended[new_name] = new_rel

    schemas = {name: rel.schema.rename_relation(name) for name, rel in extended.items()}
    # Special scans must expose the child's attribute list.
    for alias in (pos_name, neg_name, new_name):
        schemas[alias] = child_schema.rename_relation(alias)

    result = BagDelta()
    evaluator = Evaluator(extended, schemas=schemas, counters=counters)
    for occ in range(occurrences):
        for delta_name, sign in ((pos_name, +1), (neg_name, -1)):
            replacements = [
                new_name if k < occ else (delta_name if k == occ else child)
                for k in range(occurrences)
            ]
            rewritten = _replace_occurrences(definition, child, replacements, [0])
            contribution = evaluator.evaluate(rewritten, parent)
            for r, n in contribution.items():
                result.add(parent, r, sign * n)
    return result


def _operand_for_child(definition: Difference, child: str) -> List[Tuple[str, Expression, Expression]]:
    """The sides of a difference referencing ``child``: (side, operand, other)."""
    sides = []
    if child in definition.left.relation_names():
        sides.append(("left", definition.left, definition.right))
    if child in definition.right.relation_names():
        sides.append(("right", definition.right, definition.left))
    if not sides:
        raise VDPError(f"difference definition does not reference {child!r}")
    return sides


def operand_support_delta(
    operand: Expression,
    child: str,
    child_delta: BagDelta,
    catalog: Mapping[str, Relation],
    child_schema: RelationSchema,
    counters: Optional[EvalCounters] = None,
) -> Tuple[List[Row], List[Row]]:
    """Rows entering and leaving the *support* of a difference operand.

    The operand is a select/project/rename chain over ``child`` evaluated
    under bag semantics; the set node subtracts supports, so only 0↔positive
    transitions matter.  Requires the child's pre-update value in
    ``catalog`` (the IUP fires rules before applying the child's delta, so
    the repository is exactly that).
    """
    schemas = {name: rel.schema.rename_relation(name) for name, rel in catalog.items()}
    schemas[child] = child_schema.rename_relation(child)
    evaluator = Evaluator(catalog, schemas=schemas, counters=counters)
    old_bag = evaluator.evaluate(operand, "operand_old")
    delta_bag = spj_delta(operand, "operand", child, child_delta, catalog, child_schema, counters)

    entering: List[Row] = []
    leaving: List[Row] = []
    for r, n in delta_bag.entries_for("operand"):
        before = old_bag.count(r)
        after = before + n
        if after < 0:
            raise VDPError(f"operand multiplicity went negative for row {dict(r)}")
        if before == 0 and after > 0:
            entering.append(r)
        elif before > 0 and after == 0:
            leaving.append(r)
    return entering, leaving


@dataclass
class BagNodeRule:
    """Rule for an edge into a bag node (SPJ or union)."""

    parent: str
    child: str
    definition: Expression
    child_schema: RelationSchema

    def fire(
        self,
        child_delta: BagDelta,
        catalog: Mapping[str, Relation],
        counters: Optional[EvalCounters] = None,
    ) -> BagDelta:
        """Compute the parent's bag delta for this child's delta.

        A top-level union is handled per side: only the operand chains that
        actually reference the child contribute (substituting into the full
        union would wrongly re-emit the other operand in its entirety).
        """
        result = BagDelta()
        for part in self._relevant_parts():
            contribution = spj_delta(
                part,
                self.parent,
                self.child,
                child_delta,
                catalog,
                self.child_schema,
                counters,
            )
            result = result.smash(contribution)
        return result

    def _relevant_parts(self) -> List[Expression]:
        if isinstance(self.definition, Union):
            return [
                side
                for side in (self.definition.left, self.definition.right)
                if self.child in side.relation_names()
            ]
        return [self.definition]

    def sibling_names(self) -> Tuple[str, ...]:
        """Relations (other than the delta itself) the rule must read."""
        names = set()
        self_join = False
        for part in self._relevant_parts():
            names |= part.relation_names()
            if _count_occurrences(part, self.child) > 1:
                self_join = True
        if self_join:
            return tuple(sorted(names))  # self-join also reads the child
        return tuple(sorted(names - {self.child}))


@dataclass
class SetNodeRule:
    """Rule for an edge into a set (difference) node."""

    parent: str
    child: str
    definition: Difference
    child_schema: RelationSchema

    def fire(
        self,
        child_delta: BagDelta,
        catalog: Mapping[str, Relation],
        counters: Optional[EvalCounters] = None,
    ) -> SetDelta:
        """Compute the parent's set delta for this child's delta.

        Applies the (corrected) diff1 rule when the child feeds the left
        operand and the diff2 rule when it feeds the right operand; a child
        feeding both sides fires both parts sequentially.
        """
        result = SetDelta()
        schemas = {name: rel.schema.rename_relation(name) for name, rel in catalog.items()}
        schemas[self.child] = self.child_schema.rename_relation(self.child)
        evaluator = Evaluator(catalog, schemas=schemas, counters=counters)
        for side, operand, other in _operand_for_child(self.definition, self.child):
            entering, leaving = operand_support_delta(
                operand, self.child, child_delta, catalog, self.child_schema, counters
            )
            other_support = evaluator.evaluate(other, "other").support()
            if side == "left":
                # diff1 (corrected): rows entering L join T unless in R;
                # rows leaving L leave T unless shadowed by R already.
                for r in entering:
                    if r not in other_support:
                        result = result.smash(_atom(self.parent, r, +1))
                for r in leaving:
                    if r not in other_support:
                        result = result.smash(_atom(self.parent, r, -1))
            else:
                # diff2: rows entering R evict L-rows from T; rows leaving R
                # re-admit L-rows into T.
                for r in entering:
                    if r in other_support:
                        result = result.smash(_atom(self.parent, r, -1))
                for r in leaving:
                    if r in other_support:
                        result = result.smash(_atom(self.parent, r, +1))
        return result

    def sibling_names(self) -> Tuple[str, ...]:
        """Relations the rule must read besides the incoming delta."""
        return tuple(sorted(self.definition.relation_names()))


def _atom(relation: str, r: Row, sign: int) -> SetDelta:
    d = SetDelta()
    if sign > 0:
        d.insert(relation, r)
    else:
        d.delete(relation, r)
    return d


def build_rule(parent: str, definition: Expression, child: str, child_schema: RelationSchema):
    """Construct the edge rule for ``(parent, child)`` from the node kind."""
    if isinstance(definition, Difference):
        return SetNodeRule(parent, child, definition, child_schema)
    return BagNodeRule(parent, child, definition, child_schema)
