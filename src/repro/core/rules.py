"""Update-propagation rules, one per VDP edge (Section 5.2).

For a bag node ``T = π_p σ_f (π_{p1} σ_{f1} R_1 ⋈ … ⋈ π_{pn} σ_{fn} R_n)``
the rule for edge ``(T, R_i)`` computes (bag semantics)::

    ΔT = π_p σ_f (… ⋈ π_{pi} σ_{fi} ΔR_i ⋈ …)

with the *other* operands read from their **current repositories**.  Because
the IUP applies a node's accumulated delta to its repository only after
firing its out-edge rules, and processes nodes children-first, siblings
processed earlier are read in their new state and later ones in their old
state — which is exactly the correction of Example 6.1
(``ΔT = (R' ⋈ ΔS') ∪ (ΔR' ⋈ apply(S', ΔS'))``): no ``ΔR ⋈ ΔS`` cross-term
is missed and none is double-counted.

For a set node ``T = L − R`` the paper gives::

    on ΔR_1:  (ΔT)+ = (ΔR_1)+ − R_2        (ΔT)− = (ΔR_1)− − R_2
    on ΔR_2:  (ΔT)+ = (ΔR_2)− ∩ R_1        (ΔT)− = (ΔR_2)+ ∩ R_1

(The paper's text prints the first rule's deletion case with ``∩``; that is
a typo — a row leaving ``R_1`` leaves ``T`` only if it is *not* in ``R_2``,
i.e. set-minus.  The reproduction implements the corrected rule and the
test suite pins the counterexample.)

Bag deltas carry signed multiplicities; the linear operators (select,
project, join, union) distribute over them, so a rule evaluates the
definition once with the delta's positive part and once with its negative
part and combines the results with signs.  A child appearing *k* times in a
definition (self-join; the paper's footnote 2) contributes *k* occurrence
terms, with earlier occurrences read post-update and later ones pre-update.

**Compiled rules.**  Everything about a rule that does not depend on the
data is resolved once, at rule construction, by :class:`CompiledSPJ`: the
rewritten delta expressions per occurrence and sign, the per-relation
renamed schemas, and the per-join plans (equi-key extraction, projection
maps, residual predicates, index probe specs — see
:func:`repro.relalg.plan_join`).  A ``fire()`` then only splits the delta,
extends the catalog, and evaluates the precompiled terms — probing the
persistent join indexes that :class:`~repro.core.local_store.LocalStore`
maintains on sibling repositories, so steady-state propagation work scales
with |delta|, not |database|.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.deltas import BagDelta, SetDelta
from repro.errors import VDPError
from repro.relalg import (
    BagRelation,
    Difference,
    EvalCounters,
    Evaluator,
    Expression,
    Join,
    JoinPlan,
    Project,
    Relation,
    Rename,
    RelationSchema,
    Scan,
    ScanChain,
    Select,
    SetRelation,
    Union,
    compile_scan_chain,
    plan_join,
)
from repro.relalg.tuples import Row

__all__ = [
    "DELTA_ALIAS_PREFIX",
    "CompiledSPJ",
    "spj_delta",
    "operand_support_delta",
    "BagNodeRule",
    "SetNodeRule",
    "build_rule",
]

#: All synthetic catalog names introduced by rule rewriting share this
#: prefix; they never have persistent indexes and are excluded from
#: index-requirement collection.
DELTA_ALIAS_PREFIX = "__"


def _count_occurrences(expr: Expression, name: str) -> int:
    if isinstance(expr, Scan):
        return 1 if expr.name == name else 0
    return sum(_count_occurrences(c, name) for c in expr.children())


def _replace_occurrences(
    expr: Expression, name: str, replacements: List[str], counter: List[int]
) -> Expression:
    """Rebuild ``expr`` with the k-th Scan(name) replaced by Scan(replacements[k])."""
    if isinstance(expr, Scan):
        if expr.name == name:
            idx = counter[0]
            counter[0] += 1
            return Scan(replacements[idx])
        return expr
    if isinstance(expr, Select):
        return Select(_replace_occurrences(expr.child, name, replacements, counter), expr.predicate)
    if isinstance(expr, Project):
        return Project(_replace_occurrences(expr.child, name, replacements, counter), expr.attrs, expr.dedup)
    if isinstance(expr, Rename):
        return Rename(_replace_occurrences(expr.child, name, replacements, counter), expr.mapping_dict)
    if isinstance(expr, Join):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Join(left, right, expr.condition)
    if isinstance(expr, Union):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Union(left, right)
    if isinstance(expr, Difference):
        left = _replace_occurrences(expr.left, name, replacements, counter)
        right = _replace_occurrences(expr.right, name, replacements, counter)
        return Difference(left, right)
    raise VDPError(f"unsupported node in rule rewriting: {type(expr).__name__}")


def _collect_joins(expr: Expression, out: List[Join]) -> None:
    if isinstance(expr, Join):
        out.append(expr)
    for child in expr.children():
        _collect_joins(child, out)


def _delta_parts(
    delta: BagDelta, relation: str, schema: RelationSchema
) -> Tuple[BagRelation, BagRelation]:
    """Split a bag delta into positive and negative part bags."""
    pos = BagRelation(schema)
    neg = BagRelation(schema)
    for r, n in delta.entries_for(relation):
        if n > 0:
            pos.insert(r, n)
        else:
            neg.insert(r, -n)
    return pos, neg


class CompiledSPJ:
    """One SPJ part of a rule, fully resolved for Δ-evaluation wrt one child.

    Construction precomputes:

    * the rewritten expression for every (occurrence, sign) combination —
      the synthetic scan names (``__dpos__c`` …) depend only on the child's
      name, so the whole term set is static;
    * the renamed-schema catalog the evaluator needs, when node ``schemas``
      are supplied (the rulebase supplies the VDP's); otherwise schemas are
      captured from the first catalog seen and cached;
    * one :class:`~repro.relalg.JoinPlan` per join in every term, including
      the probe specs that let the evaluator answer a sibling side from a
      persistent index.

    ``delta()`` is then a pure per-delta computation.
    """

    def __init__(
        self,
        part: Expression,
        parent: str,
        child: str,
        child_schema: RelationSchema,
        schemas: Optional[Mapping[str, RelationSchema]] = None,
    ):
        self.part = part
        self.parent = parent
        self.child = child
        self.child_schema = child_schema
        self.occurrences = _count_occurrences(part, child)
        if self.occurrences == 0:
            raise VDPError(f"definition of {parent!r} does not reference {child!r}")

        self.pos_name = f"{DELTA_ALIAS_PREFIX}dpos{DELTA_ALIAS_PREFIX}{child}"
        self.neg_name = f"{DELTA_ALIAS_PREFIX}dneg{DELTA_ALIAS_PREFIX}{child}"
        self.new_name = f"{DELTA_ALIAS_PREFIX}new{DELTA_ALIAS_PREFIX}{child}"

        # Static term set: for occurrence k, earlier occurrences read the
        # post-update child, later ones the pre-update child.
        self.terms: List[Tuple[Expression, int]] = []
        for occ in range(self.occurrences):
            for delta_name, sign in ((self.pos_name, +1), (self.neg_name, -1)):
                replacements = [
                    self.new_name if k < occ else (delta_name if k == occ else child)
                    for k in range(self.occurrences)
                ]
                rewritten = _replace_occurrences(part, child, replacements, [0])
                self.terms.append((rewritten, sign))

        self._alias_schemas = {
            alias: child_schema.rename_relation(alias)
            for alias in (self.pos_name, self.neg_name, self.new_name)
        }
        self._schemas: Dict[str, RelationSchema] = dict(self._alias_schemas)
        self._join_plans: Optional[Dict[int, JoinPlan]] = None
        if schemas is not None:
            for name in part.relation_names():
                self._schemas[name] = schemas[name].rename_relation(name)
            self._schemas[child] = child_schema.rename_relation(child)
            self._compile_plans()

    # ------------------------------------------------------------------
    def _compile_plans(self) -> None:
        joins: List[Join] = []
        for rewritten, _ in self.terms:
            _collect_joins(rewritten, joins)
        self._join_plans = {id(j): plan_join(j, self._schemas) for j in joins}

    def _schemas_for(self, extended: Mapping[str, Relation]) -> Mapping[str, RelationSchema]:
        """The renamed-schema catalog; lazily completed from ``extended``.

        Completion is copy-on-write: the sharded kernel fires one compiled
        rule concurrently from several worker threads, so the shared dict
        is swapped atomically rather than mutated while others read it.
        (Eagerly compiled rules never take this path — every name is
        already resolved at construction.)
        """
        missing = {
            name: rel.schema.rename_relation(name)
            for name, rel in extended.items()
            if name not in self._schemas
        }
        if missing:
            self._schemas = {**self._schemas, **missing}
        return self._schemas

    def index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Relations (and key tuples) this part's joins can probe.

        Synthetic delta aliases are excluded: only siblings read from
        repositories or temporaries benefit from persistent indexes.
        """
        out: Dict[str, Set[Tuple[str, ...]]] = {}
        for plan in (self._join_plans or {}).values():
            for spec in (plan.left_probe, plan.right_probe):
                if spec is None or spec.base.startswith(DELTA_ALIAS_PREFIX):
                    continue
                out.setdefault(spec.base, set()).add(spec.index_keys)
        return out

    # ------------------------------------------------------------------
    def delta(
        self,
        child_delta: BagDelta,
        catalog: Mapping[str, Relation],
        counters: Optional[EvalCounters] = None,
    ) -> BagDelta:
        """The incremental update to ``parent`` induced by ``child_delta``.

        ``catalog`` must resolve every *other* relation referenced by the
        part (siblings read their current repositories or temporary
        relations), and — for self-joins — the child itself.
        """
        pos, neg = _delta_parts(child_delta, self.child, self.child_schema)
        extended: Dict[str, Relation] = dict(catalog)
        extended[self.pos_name] = pos
        extended[self.neg_name] = neg
        if self.occurrences > 1:
            new_rel = catalog[self.child].copy()
            child_delta.apply_to(new_rel, self.child)
            extended[self.new_name] = new_rel

        schemas = self._schemas_for(extended)
        if self._join_plans is None:
            self._compile_plans()

        result = BagDelta()
        evaluator = Evaluator(
            extended, schemas=schemas, counters=counters, join_plans=self._join_plans
        )
        for rewritten, sign in self.terms:
            contribution = evaluator.evaluate(rewritten, self.parent)
            for r, n in contribution.items():
                result.add(self.parent, r, sign * n)
        return result


def spj_delta(
    definition: Expression,
    parent: str,
    child: str,
    child_delta: BagDelta,
    catalog: Mapping[str, Relation],
    child_schema: RelationSchema,
    counters: Optional[EvalCounters] = None,
) -> BagDelta:
    """One-shot form of :meth:`CompiledSPJ.delta` (compiles, fires, discards).

    Kept for callers outside the rulebase (compensation, tests); the hot
    path goes through rules' precompiled :class:`CompiledSPJ` instances.
    """
    compiled = CompiledSPJ(definition, parent, child, child_schema)
    return compiled.delta(child_delta, catalog, counters)


def _operand_for_child(definition: Difference, child: str) -> List[Tuple[str, Expression, Expression]]:
    """The sides of a difference referencing ``child``: (side, operand, other)."""
    sides = []
    if child in definition.left.relation_names():
        sides.append(("left", definition.left, definition.right))
    if child in definition.right.relation_names():
        sides.append(("right", definition.right, definition.left))
    if not sides:
        raise VDPError(f"difference definition does not reference {child!r}")
    return sides


def _support_transitions(
    old_bag: Relation, delta_bag: BagDelta, relation: str
) -> Tuple[List[Row], List[Row]]:
    """0↔positive multiplicity transitions of an operand's support."""
    entering: List[Row] = []
    leaving: List[Row] = []
    for r, n in delta_bag.entries_for(relation):
        before = old_bag.count(r)
        after = before + n
        if after < 0:
            raise VDPError(f"operand multiplicity went negative for row {dict(r)}")
        if before == 0 and after > 0:
            entering.append(r)
        elif before > 0 and after == 0:
            leaving.append(r)
    return entering, leaving


def operand_support_delta(
    operand: Expression,
    child: str,
    child_delta: BagDelta,
    catalog: Mapping[str, Relation],
    child_schema: RelationSchema,
    counters: Optional[EvalCounters] = None,
) -> Tuple[List[Row], List[Row]]:
    """Rows entering and leaving the *support* of a difference operand.

    The operand is a select/project/rename chain over ``child`` evaluated
    under bag semantics; the set node subtracts supports, so only 0↔positive
    transitions matter.  Requires the child's pre-update value in
    ``catalog`` (the IUP fires rules before applying the child's delta, so
    the repository is exactly that).
    """
    schemas = {name: rel.schema.rename_relation(name) for name, rel in catalog.items()}
    schemas[child] = child_schema.rename_relation(child)
    evaluator = Evaluator(catalog, schemas=schemas, counters=counters)
    old_bag = evaluator.evaluate(operand, "operand_old")
    delta_bag = spj_delta(operand, "operand", child, child_delta, catalog, child_schema, counters)
    return _support_transitions(old_bag, delta_bag, "operand")


@dataclass
class BagNodeRule:
    """Rule for an edge into a bag node (SPJ or union).

    Construction precompiles one :class:`CompiledSPJ` per relevant part
    (for a top-level union, only the operand chains that reference the
    child — substituting into the full union would wrongly re-emit the
    other operand in its entirety).
    """

    parent: str
    child: str
    definition: Expression
    child_schema: RelationSchema
    schemas: Optional[Mapping[str, RelationSchema]] = None

    def __post_init__(self) -> None:
        self._compiled: List[CompiledSPJ] = [
            CompiledSPJ(part, self.parent, self.child, self.child_schema, self.schemas)
            for part in self._relevant_parts()
        ]

    def fire(
        self,
        child_delta: BagDelta,
        catalog: Mapping[str, Relation],
        counters: Optional[EvalCounters] = None,
    ) -> BagDelta:
        """Compute the parent's bag delta for this child's delta."""
        result = BagDelta()
        for compiled in self._compiled:
            result = result.smash(compiled.delta(child_delta, catalog, counters))
        return result

    @property
    def is_linear(self) -> bool:
        """True when ``fire`` is linear in the child delta (no self-join).

        With every compiled part referencing the child exactly once, the
        delta computation distributes over sub-deltas fired against the
        same sibling states — the property delta provenance relies on to
        attribute a joint firing exactly to per-origin sub-firings.
        """
        return all(compiled.occurrences == 1 for compiled in self._compiled)

    def _relevant_parts(self) -> List[Expression]:
        if isinstance(self.definition, Union):
            return [
                side
                for side in (self.definition.left, self.definition.right)
                if self.child in side.relation_names()
            ]
        return [self.definition]

    def sibling_names(self) -> Tuple[str, ...]:
        """Relations (other than the delta itself) the rule must read."""
        names = set()
        self_join = False
        for part in self._relevant_parts():
            names |= part.relation_names()
            if _count_occurrences(part, self.child) > 1:
                self_join = True
        if self_join:
            return tuple(sorted(names))  # self-join also reads the child
        return tuple(sorted(names - {self.child}))

    def index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Relations this rule's compiled joins can probe, with key tuples."""
        out: Dict[str, Set[Tuple[str, ...]]] = {}
        for compiled in self._compiled:
            for base, keysets in compiled.index_requirements().items():
                out.setdefault(base, set()).update(keysets)
        return out

    def probe_index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Bag rules have no support-probe fast path — nothing to declare."""
        return {}


@dataclass(frozen=True)
class _ProbePlan:
    """A difference operand lowered to index probes over its base relation.

    ``out_to_base`` maps every operand-output attribute to the base column
    it is sourced from; ``index_keys`` is the canonical (sorted,
    de-duplicated) base-attribute tuple a persistent index must cover so
    that the support count of one output row can be answered by probing
    the bucket and re-applying the chain — no full operand re-evaluation.
    """

    chain: ScanChain
    out_to_base: Tuple[Tuple[str, str], ...]
    index_keys: Tuple[str, ...]


@dataclass
class SetNodeRule:
    """Rule for an edge into a set (difference) node.

    Construction hoists everything per-fire work used to rebuild: the
    renamed-schema catalog, the per-side operand :class:`CompiledSPJ`
    instances, and the old-operand/other-side expressions.  When both
    operands of a side are select/project/rename chains whose output
    attributes trace back to base columns, a :class:`_ProbePlan` pair is
    compiled as well; ``fire`` uses it whenever the catalog relations
    carry the matching indexes (declared through
    :meth:`probe_index_requirements`), replacing the two full operand
    evaluations per firing with per-delta-row index probes.
    """

    parent: str
    child: str
    definition: Difference
    child_schema: RelationSchema
    schemas: Optional[Mapping[str, RelationSchema]] = None

    def __post_init__(self) -> None:
        self._sides = _operand_for_child(self.definition, self.child)
        self._compiled: List[CompiledSPJ] = [
            CompiledSPJ(operand, "operand", self.child, self.child_schema, self.schemas)
            for _, operand, _ in self._sides
        ]
        self._eval_schemas: Dict[str, RelationSchema] = {}
        if self.schemas is not None:
            for name in self.definition.relation_names():
                self._eval_schemas[name] = self.schemas[name].rename_relation(name)
            self._eval_schemas[self.child] = self.child_schema.rename_relation(self.child)
        self._probe_plans: List[Tuple[Optional[_ProbePlan], Optional[_ProbePlan]]] = [
            (self._probe_plan(operand), self._probe_plan(other))
            for _, operand, other in self._sides
        ]

    def _probe_plan(self, expr: Expression) -> Optional[_ProbePlan]:
        if not self._eval_schemas:
            return None  # lazily-compiled rule: no schemas to trace through
        chain = compile_scan_chain(expr)
        if chain is None or chain.base.startswith(DELTA_ALIAS_PREFIX):
            return None
        try:
            out_schema = expr.infer_schema(self._eval_schemas, "operand")
        except Exception:
            return None
        pairs: List[Tuple[str, str]] = []
        for a in out_schema.attribute_names:
            b = chain.to_base(a)
            if b is None:
                return None
            pairs.append((a, b))
        index_keys = tuple(sorted({b for _, b in pairs}))
        return _ProbePlan(chain, tuple(pairs), index_keys)

    def _schemas_for(self, catalog: Mapping[str, Relation]) -> Dict[str, RelationSchema]:
        for name, rel in catalog.items():
            if name not in self._eval_schemas:
                self._eval_schemas[name] = rel.schema.rename_relation(name)
        if self.child not in self._eval_schemas:
            self._eval_schemas[self.child] = self.child_schema.rename_relation(self.child)
        return self._eval_schemas

    def fire(
        self,
        child_delta: BagDelta,
        catalog: Mapping[str, Relation],
        counters: Optional[EvalCounters] = None,
    ) -> SetDelta:
        """Compute the parent's set delta for this child's delta.

        Applies the (corrected) diff1 rule when the child feeds the left
        operand and the diff2 rule when it feeds the right operand; a child
        feeding both sides fires both parts sequentially.
        """
        result = SetDelta()
        evaluator: Optional[Evaluator] = None
        for (side, operand, other), compiled, (op_plan, other_plan) in zip(
            self._sides, self._compiled, self._probe_plans
        ):
            op_rel = self._probe_target(op_plan, catalog)
            other_rel = self._probe_target(other_plan, catalog)
            if op_rel is not None and other_rel is not None:
                # Probe path: support counts answered from persistent
                # indexes, touching only base rows matching the delta rows.
                delta_bag = compiled.delta(child_delta, catalog, counters)
                entering, leaving = self._probe_transitions(
                    op_plan, op_rel, delta_bag, counters
                )

                def in_other(r: Row, _p=other_plan, _rel=other_rel) -> bool:
                    return self._probe_count(_p, _rel, r, counters) > 0

            else:
                if evaluator is None:
                    evaluator = Evaluator(
                        catalog, schemas=self._schemas_for(catalog), counters=counters
                    )
                old_bag = evaluator.evaluate(operand, "operand_old")
                delta_bag = compiled.delta(child_delta, catalog, counters)
                entering, leaving = _support_transitions(old_bag, delta_bag, "operand")
                other_support = evaluator.evaluate(other, "other").support()

                def in_other(r: Row, _s=other_support) -> bool:
                    return r in _s

            if side == "left":
                # diff1 (corrected): rows entering L join T unless in R;
                # rows leaving L leave T unless shadowed by R already.
                for r in entering:
                    if not in_other(r):
                        result = result.smash(_atom(self.parent, r, +1))
                for r in leaving:
                    if not in_other(r):
                        result = result.smash(_atom(self.parent, r, -1))
            else:
                # diff2: rows entering R evict L-rows from T; rows leaving R
                # re-admit L-rows into T.
                for r in entering:
                    if in_other(r):
                        result = result.smash(_atom(self.parent, r, -1))
                for r in leaving:
                    if in_other(r):
                        result = result.smash(_atom(self.parent, r, +1))
        return result

    # ------------------------------------------------------------------
    # Probe fast path
    # ------------------------------------------------------------------
    def _probe_target(
        self, plan: Optional[_ProbePlan], catalog: Mapping[str, Relation]
    ) -> Optional[Relation]:
        """The base relation, iff it carries the index this plan probes."""
        if plan is None:
            return None
        rel = catalog.get(plan.chain.base)
        if rel is None or not rel.has_index(plan.index_keys):
            return None
        return rel

    def _probe_count(
        self,
        plan: _ProbePlan,
        rel: Relation,
        row: Row,
        counters: Optional[EvalCounters],
    ) -> int:
        """The operand-support multiplicity of ``row``, via one index probe."""
        values: Dict[str, object] = {}
        for a, b in plan.out_to_base:
            v = row[a]
            if b in values:
                if values[b] != v:
                    return 0  # two output attrs demand different base values
            else:
                values[b] = v
        probe = tuple(values[k] for k in plan.index_keys)
        if counters is not None:
            counters.index_probes += 1
        total = 0
        for br, bn in rel.index_lookup(plan.index_keys, probe):
            if plan.chain.apply(br) == row:
                total += bn
        return total

    def _probe_transitions(
        self,
        plan: _ProbePlan,
        rel: Relation,
        delta_bag: BagDelta,
        counters: Optional[EvalCounters],
    ) -> Tuple[List[Row], List[Row]]:
        """:func:`_support_transitions` with probed (not evaluated) counts."""
        entering: List[Row] = []
        leaving: List[Row] = []
        for r, n in delta_bag.entries_for("operand"):
            before = self._probe_count(plan, rel, r, counters)
            after = before + n
            if after < 0:
                raise VDPError(f"operand multiplicity went negative for row {dict(r)}")
            if before == 0 and after > 0:
                entering.append(r)
            elif before > 0 and after == 0:
                leaving.append(r)
        return entering, leaving

    @property
    def is_linear(self) -> bool:
        """Difference rules are support-transition based — never linear in
        the child delta, so provenance treats their parents as approximate."""
        return False

    def sibling_names(self) -> Tuple[str, ...]:
        """Relations the rule must read besides the incoming delta."""
        return tuple(sorted(self.definition.relation_names()))

    def index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Relations this rule's compiled joins can probe, with key tuples."""
        out: Dict[str, Set[Tuple[str, ...]]] = {}
        for compiled in self._compiled:
            for base, keysets in compiled.index_requirements().items():
                out.setdefault(base, set()).update(keysets)
        return out

    def probe_index_requirements(self) -> Dict[str, Set[Tuple[str, ...]]]:
        """Support-probe indexes the fast path can use, keyed by base name.

        Kept separate from :meth:`index_requirements` on purpose: the
        shard planner derives partition keys from join-probe requirements,
        and support probes must not perturb it.  The mediator declares
        these only for layouts that opt in (columnar), so the row layout's
        firing behaviour and committed baselines stay byte-identical.
        """
        out: Dict[str, Set[Tuple[str, ...]]] = {}
        for op_plan, other_plan in self._probe_plans:
            if op_plan is None or other_plan is None:
                continue  # fire() needs both sides probe-able to switch paths
            for plan in (op_plan, other_plan):
                out.setdefault(plan.chain.base, set()).add(plan.index_keys)
        return out


def _atom(relation: str, r: Row, sign: int) -> SetDelta:
    d = SetDelta()
    if sign > 0:
        d.insert(relation, r)
    else:
        d.delete(relation, r)
    return d


def build_rule(
    parent: str,
    definition: Expression,
    child: str,
    child_schema: RelationSchema,
    schemas: Optional[Mapping[str, RelationSchema]] = None,
):
    """Construct the edge rule for ``(parent, child)`` from the node kind.

    ``schemas`` (node name → schema, e.g. ``vdp.schemas()``) enables eager
    compilation — renamed schemas and join plans resolved here instead of
    on first fire.  Without it the rule compiles its expressions eagerly
    and captures schemas lazily from the first catalog it sees.
    """
    if isinstance(definition, Difference):
        return SetNodeRule(parent, child, definition, child_schema, schemas)
    return BagNodeRule(parent, child, definition, child_schema, schemas)
