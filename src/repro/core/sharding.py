"""Shard planning for parallel update propagation.

The IUP kernel (see :mod:`repro.core.iup`) can fire a *linear* rule over
sub-deltas independently: bag-delta contributions are signed-count sums, and
``fire(d1 + d2) = fire(d1) ! fire(d2)`` whenever every compiled part
references the child exactly once (the same distributivity delta provenance
relies on — :attr:`~repro.core.rules.BagNodeRule.is_linear`).  The shard
planner decides the data layout and the work split that make those
independent firings *cheap*:

* a **shard key** per node — the attribute tuple node relations (and their
  per-shard persistent indexes) are hash-partitioned on, and the key each
  node's pending delta is split by before parallel firing.  Inference is
  purely static, from the compiled rulebase: a node's key is the join-key
  tuple rules probe it on most often (ties broken toward shorter, then
  lexicographically smaller tuples), because those probes then route to a
  single shard (:meth:`~repro.relalg.PartitionedRelation.index_lookup`).
  Nodes no rule probes fall back to their full attribute tuple — any
  deterministic key splits a delta correctly; it just prunes nothing.

* an **edge classification** — for each propagation edge and each sibling
  the rule reads, whether every compiled probe on that sibling covers the
  sibling's shard key (``local``: each probe touches exactly one shard) or
  not (``exchange``: probes and scans fan out across every shard — the
  explicit cross-shard exchange read, counted and traced by the kernel).

The plan never affects results, only layout and scheduling: non-linear
rules (difference nodes, self-joins) always fire serially with the whole
delta, and shard contributions merge in deterministic (rule, shard) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.rulebase import RuleBase
from repro.core.vdp import VDP
from repro.deltas import BagDelta
from repro.relalg.relation import stable_shard_hash

__all__ = ["EdgeShardInfo", "ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class EdgeShardInfo:
    """Static shard behaviour of one propagation edge ``(parent, child)``."""

    parent: str
    child: str
    #: Siblings whose every probe covers their shard key (shard-local reads).
    local_siblings: Tuple[str, ...]
    #: Siblings some probe or scan reads across all shards (exchange reads).
    exchange_siblings: Tuple[str, ...]
    #: True when the edge rule is linear — its firing may be split by shard.
    parallelizable: bool


@dataclass
class ShardPlan:
    """A planner-chosen partitioning of the VDP's relations and work."""

    num_shards: int
    #: node name -> shard-key attribute tuple (every node gets one).
    keys: Dict[str, Tuple[str, ...]]
    #: (parent, child) -> static local/exchange classification.
    edges: Dict[Tuple[str, str], EdgeShardInfo] = field(default_factory=dict)

    def key_for(self, name: str) -> Optional[Tuple[str, ...]]:
        """The shard key of one node (None for nodes outside the plan)."""
        return self.keys.get(name)

    def storage_layout(
        self, name: str, stored_attrs: Tuple[str, ...]
    ) -> Optional[Tuple[Tuple[str, ...], int]]:
        """``(shard_key, num_shards)`` for a repository, or None to store flat.

        A hybrid node's stored projection can only be partitioned when the
        shard key survives the projection; otherwise the repository stays a
        single container (reads of it are trivially shard-local).
        """
        key = self.keys.get(name)
        if key is None or self.num_shards <= 1:
            return None
        if not set(key) <= set(stored_attrs):
            return None
        return key, self.num_shards

    def edge_info(self, parent: str, child: str) -> Optional[EdgeShardInfo]:
        """The classification of one edge (None for unknown edges)."""
        return self.edges.get((parent, child))

    def split(self, name: str, delta: BagDelta) -> List[Optional[BagDelta]]:
        """Split one node's bag delta by its shard key.

        Returns a list of ``num_shards`` entries, ``None`` where the shard
        receives nothing.  Entry order within each sub-delta follows the
        source delta, so the split is deterministic given a deterministic
        input delta; the signed-count sum of the parts is the input.
        """
        key = self.keys[name]
        parts: List[Optional[BagDelta]] = [None] * self.num_shards
        for row, n in delta.entries_for(name):
            shard = stable_shard_hash(row.values_for(key)) % self.num_shards
            sub = parts[shard]
            if sub is None:
                sub = BagDelta()
                parts[shard] = sub
            sub.add(name, row, n)
        return parts


def plan_shards(vdp: VDP, rulebase: RuleBase, num_shards: int) -> ShardPlan:
    """Infer shard keys and edge classifications from the compiled rulebase."""
    # How often each (node, key tuple) is probed across all compiled rules.
    probe_freq: Dict[Tuple[str, Tuple[str, ...]], int] = {}
    for parent, child in rulebase.edges():
        rule = rulebase.edge_rule(parent, child)
        for base, keysets in rule.index_requirements().items():
            for keys in keysets:
                probe_freq[(base, keys)] = probe_freq.get((base, keys), 0) + 1

    keys: Dict[str, Tuple[str, ...]] = {}
    for name in vdp.topological_order():
        candidates = [
            (keyset, count)
            for (base, keyset), count in probe_freq.items()
            if base == name
        ]
        if candidates:
            keys[name] = min(
                candidates, key=lambda pair: (-pair[1], len(pair[0]), pair[0])
            )[0]
        else:
            keys[name] = vdp.node(name).schema.attribute_names

    edges: Dict[Tuple[str, str], EdgeShardInfo] = {}
    for parent, child in rulebase.edges():
        rule = rulebase.edge_rule(parent, child)
        requirements = rule.index_requirements()
        local: List[str] = []
        exchange: List[str] = []
        for sibling in rule.sibling_names():
            keysets = requirements.get(sibling)
            shard_key = keys.get(sibling)
            if (
                keysets
                and shard_key
                and all(set(shard_key) <= set(ks) for ks in keysets)
            ):
                local.append(sibling)
            else:
                exchange.append(sibling)
        edges[(parent, child)] = EdgeShardInfo(
            parent,
            child,
            tuple(local),
            tuple(exchange),
            bool(getattr(rule, "is_linear", False)),
        )
    return ShardPlan(num_shards=num_shards, keys=keys, edges=edges)
