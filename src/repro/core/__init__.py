"""The paper's primary contribution: annotated VDPs and Squirrel mediators.

Public surface:

* :class:`Annotation`, :class:`VDP`, :class:`AnnotatedVDP`, :class:`VDPNode`,
  :class:`NodeKind` — the View Decomposition Plan structure (Section 5);
* :func:`build_vdp`, :func:`annotate` — construction from named view
  definitions;
* :func:`derived_from`, :class:`TempRequest` — the Section 6.3 lineage
  function;
* :class:`RuleBase` and the edge rules — Section 5.2 update propagation;
* :class:`SquirrelMediator` — the assembled five-component mediator
  (Section 4), with :class:`LocalStore`, :class:`UpdateQueue`,
  :class:`VirtualAttributeProcessor`, :class:`IncrementalUpdateProcessor`
  and :class:`QueryProcessor` as its parts;
* :class:`DirectLink` / :class:`SourceLink` — how the mediator reaches
  sources.
"""

from repro.core.annotations import MATERIALIZED, VIRTUAL, Annotation
from repro.core.builder import annotate, build_vdp, extend_vdp
from repro.core.compensation import compensate
from repro.core.derived_from import TempRequest, child_requirements, derived_from
from repro.core.iup import IncrementalUpdateProcessor, IUPStats, UpdateTransactionResult
from repro.core.links import DelayedLink, DirectLink, SourceLink
from repro.core.local_store import LocalStore
from repro.core.mediator import (
    STATS_METRICS,
    AttachResult,
    DetachResult,
    MediatorStats,
    ReplicationStats,
    SquirrelMediator,
)
from repro.core.persistence import restore_mediator, save_mediator
from repro.core.query_processor import QPStats, QueryProcessor
from repro.core.rulebase import RuleBase
from repro.core.rules import BagNodeRule, SetNodeRule, operand_support_delta, spj_delta
from repro.core.update_queue import QueuedUpdate, UpdateQueue
from repro.core.vap import PlannedTemp, VAPStats, VirtualAttributeProcessor
from repro.core.vap_cache import CacheEntry, VAPTempCache
from repro.core.vdp import VDP, AnnotatedVDP, NodeKind, VDPNode, classify_definition

__all__ = [
    "Annotation",
    "MATERIALIZED",
    "VIRTUAL",
    "VDP",
    "AnnotatedVDP",
    "VDPNode",
    "NodeKind",
    "classify_definition",
    "build_vdp",
    "extend_vdp",
    "annotate",
    "TempRequest",
    "derived_from",
    "child_requirements",
    "RuleBase",
    "BagNodeRule",
    "SetNodeRule",
    "spj_delta",
    "operand_support_delta",
    "LocalStore",
    "UpdateQueue",
    "QueuedUpdate",
    "VirtualAttributeProcessor",
    "PlannedTemp",
    "VAPStats",
    "VAPTempCache",
    "CacheEntry",
    "IncrementalUpdateProcessor",
    "IUPStats",
    "UpdateTransactionResult",
    "QueryProcessor",
    "QPStats",
    "SquirrelMediator",
    "AttachResult",
    "DetachResult",
    "MediatorStats",
    "ReplicationStats",
    "STATS_METRICS",
    "DirectLink",
    "DelayedLink",
    "SourceLink",
    "compensate",
    "save_mediator",
    "restore_mediator",
]
