"""Incremental maintenance of match tables.

A :class:`MatchingEngine` owns a derived source database exposing one match
table per :class:`~repro.matching.rules.MatchRule`.  It subscribes to the
commit hooks of both underlying sources and maintains the table
*incrementally*:

* signature indexes map canonical comparison vectors to the key rows on
  each side, so an inserted tuple is matched by one index lookup rather
  than a scan;
* an inserted left tuple adds pairs for every currently matching right
  tuple (and vice versa); a deleted tuple removes its pairs;
* the derived source announces net deltas like any other source, so a
  mediator downstream maintains views joined through the match table with
  the ordinary IUP machinery.

Bag subtlety: several source tuples can share both key and signature only
if the key is non-unique — the engine counts supports per pair, emitting a
match-table insert on 0→1 and a delete on 1→0.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.deltas import SetDelta
from repro.errors import SourceError
from repro.matching.rules import MatchRule
from repro.relalg import Row
from repro.sources.base import SourceDatabase
from repro.sources.memory import MemorySource

__all__ = ["MatchingEngine"]


class _SideIndex:
    """Signature -> list of rows for one side of one rule."""

    def __init__(self) -> None:
        self.by_signature: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)

    def add(self, signature: Tuple[Any, ...], row: Row) -> None:
        self.by_signature[signature].append(row)

    def remove(self, signature: Tuple[Any, ...], row: Row) -> None:
        rows = self.by_signature.get(signature, [])
        try:
            rows.remove(row)
        except ValueError as exc:
            raise SourceError(f"match index out of sync: missing {dict(row)}") from exc
        if not rows:
            self.by_signature.pop(signature, None)

    def lookup(self, signature: Tuple[Any, ...]) -> List[Row]:
        return list(self.by_signature.get(signature, ()))


class MatchingEngine:
    """Maintains the match tables of one or more rules over two sources."""

    def __init__(
        self,
        rules: Sequence[MatchRule],
        left_source: SourceDatabase,
        right_source: SourceDatabase,
        name: str = "matcher",
    ):
        self.rules = list(rules)
        self.left_source = left_source
        self.right_source = right_source
        self.table_source = MemorySource(name, [rule.schema() for rule in self.rules])
        self._left_index: Dict[str, _SideIndex] = {r.name: _SideIndex() for r in self.rules}
        self._right_index: Dict[str, _SideIndex] = {r.name: _SideIndex() for r in self.rules}
        self._pair_support: Dict[str, Dict[Row, int]] = {r.name: defaultdict(int) for r in self.rules}
        self.pairs_emitted = 0
        self.pairs_retracted = 0

        for rule in self.rules:
            if rule.left_relation not in left_source.schemas:
                raise SourceError(
                    f"left source {left_source.name!r} has no relation {rule.left_relation!r}"
                )
            if rule.right_relation not in right_source.schemas:
                raise SourceError(
                    f"right source {right_source.name!r} has no relation {rule.right_relation!r}"
                )

        self._bootstrap()
        left_source.on_commit(self._on_left_commit)
        right_source.on_commit(self._on_right_commit)

    # ------------------------------------------------------------------
    @property
    def source(self) -> MemorySource:
        """The derived source exposing the match tables (plug into a mediator)."""
        return self.table_source

    def match_table(self, rule_name: str):
        """Current value of one match table."""
        return self.table_source.relation(rule_name)

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        batch = SetDelta()
        for rule in self.rules:
            left_rows = list(self.left_source.relation(rule.left_relation).rows())
            right_rows = list(self.right_source.relation(rule.right_relation).rows())
            for r in left_rows:
                self._left_index[rule.name].add(rule.signature_left(r), r)
            for r in right_rows:
                self._right_index[rule.name].add(rule.signature_right(r), r)
            for r in left_rows:
                for other in self._right_index[rule.name].lookup(rule.signature_left(r)):
                    self._adjust_pair(rule, rule.pair(r, other), +1, batch)
        if not batch.is_empty():
            self.table_source.execute(batch)
            # The bootstrap population is the table's *initial* state, not
            # an update to announce.
            self.table_source.take_announcement()

    def _adjust_pair(self, rule: MatchRule, pair: Row, signed: int, batch: SetDelta) -> None:
        support = self._pair_support[rule.name]
        before = support[pair]
        after = before + signed
        if after < 0:
            raise SourceError(f"match pair support went negative for {dict(pair)}")
        support[pair] = after
        if before == 0 and after > 0:
            batch.insert(rule.name, pair)
            self.pairs_emitted += 1
        elif before > 0 and after == 0:
            batch.delete(rule.name, pair)
            self.pairs_retracted += 1
            del support[pair]

    # ------------------------------------------------------------------
    def _on_left_commit(self, source: SourceDatabase, delta: SetDelta) -> None:
        self._on_commit(delta, left_side=True)

    def _on_right_commit(self, source: SourceDatabase, delta: SetDelta) -> None:
        self._on_commit(delta, left_side=False)

    def _on_commit(self, delta: SetDelta, left_side: bool) -> None:
        batch = SetDelta()
        for rule in self.rules:
            relation = rule.left_relation if left_side else rule.right_relation
            own_index = self._left_index[rule.name] if left_side else self._right_index[rule.name]
            other_index = self._right_index[rule.name] if left_side else self._left_index[rule.name]
            for r, sign in delta.atoms_for(relation):
                signature = (
                    rule.signature_left(r) if left_side else rule.signature_right(r)
                )
                # Deletions must stop matching their counterparts BEFORE the
                # index forgets the row; insertions index first.
                if sign > 0:
                    own_index.add(signature, r)
                for other in other_index.lookup(signature):
                    pair = rule.pair(r, other) if left_side else rule.pair(other, r)
                    self._adjust_pair(rule, pair, sign, batch)
                if sign < 0:
                    own_index.remove(signature, r)
        if not batch.is_empty():
            self.table_source.execute(batch)
