"""Value normalizers for object matching.

Heterogeneous sources rarely agree on representation: names differ in case
and whitespace, phone numbers in punctuation, codes in padding.  A
*normalizer* maps raw values into a canonical space in which equality means
"same real-world entity attribute".  These are the building blocks of
:class:`~repro.matching.rules.MatchRule` criteria.

All normalizers are pure callables ``value -> canonical value`` and compose
with :func:`chain`.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

__all__ = [
    "identity",
    "casefold_trim",
    "digits_only",
    "alnum_only",
    "prefix",
    "rounded",
    "soundex",
    "chain",
]

Normalizer = Callable[[Any], Any]


def identity(value: Any) -> Any:
    """No normalization: exact equality."""
    return value


def casefold_trim(value: Any) -> str:
    """Case-insensitive, whitespace-collapsed string comparison."""
    return " ".join(str(value).split()).casefold()


def digits_only(value: Any) -> str:
    """Keep only digits — phone numbers, zip codes, padded ids."""
    return re.sub(r"\D", "", str(value))


def alnum_only(value: Any) -> str:
    """Keep only alphanumerics, casefolded — product codes and the like."""
    return re.sub(r"[^0-9a-z]", "", str(value).casefold())


def prefix(n: int) -> Normalizer:
    """The first ``n`` characters of the casefolded string."""

    def normalize(value: Any) -> str:
        return casefold_trim(value)[:n]

    return normalize


def rounded(ndigits: int = 0) -> Normalizer:
    """Numeric comparison up to rounding (amounts recorded differently)."""

    def normalize(value: Any) -> float:
        return round(float(value), ndigits)

    return normalize


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex(value: Any) -> str:
    """American Soundex of the first word — classic fuzzy name matching.

    Returns the usual letter + three digits (e.g. ``robert`` → ``R163``);
    empty input yields ``0000``.
    """
    word = re.sub(r"[^a-z]", "", casefold_trim(value).split(" ")[0] if value else "")
    if not word:
        return "0000"
    first = word[0]
    encoded = []
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in word[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous code
            previous = code if code else ("" if ch in "aeiouy" else previous)
    return (first.upper() + "".join(encoded) + "000")[:4]


def chain(*normalizers: Normalizer) -> Normalizer:
    """Compose normalizers left to right."""

    def normalize(value: Any) -> Any:
        for n in normalizers:
            value = n(value)
        return value

    return normalize
