"""Object matching ([ZHKF95]): declaring and maintaining entity identity.

The Squirrel view-definition language's second half (Section 5 of the
paper): :class:`MatchRule` declares when tuples of two relations denote the
same real-world object (attribute pairs compared after normalization);
:class:`MatchingEngine` materializes and incrementally maintains the
resulting *match table* as a derived source a mediator can integrate and
join through.  :mod:`~repro.matching.normalizers` supplies the canonical
value maps (casefolding, digit extraction, Soundex, ...).
"""

from repro.matching.engine import MatchingEngine
from repro.matching.normalizers import (
    alnum_only,
    casefold_trim,
    chain,
    digits_only,
    identity,
    prefix,
    rounded,
    soundex,
)
from repro.matching.rules import MatchCriterion, MatchRule

__all__ = [
    "MatchRule",
    "MatchCriterion",
    "MatchingEngine",
    "identity",
    "casefold_trim",
    "digits_only",
    "alnum_only",
    "prefix",
    "rounded",
    "soundex",
    "chain",
]
