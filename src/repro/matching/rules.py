"""Match rules: declaring when tuples denote the same entity.

The Squirrel project's view-definition language has a second half beyond
the algebra: "Another part of the language specifies 'object matching'"
(Section 5, citing [ZHKF95]).  A :class:`MatchRule` declares that a tuple
of relation ``left`` and a tuple of relation ``right`` denote the same
real-world object when every :class:`MatchCriterion` agrees — attribute
pairs compared after normalization.

A rule induces a *match table*: a relation pairing the key attributes of
both sides.  The :mod:`~repro.matching.engine` materializes and
incrementally maintains that table, and the mediator integrates it like
any other source relation — so ordinary VDP joins through the match table
express cross-source object identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Tuple

from repro.errors import SchemaError
from repro.matching.normalizers import Normalizer, identity
from repro.relalg import Attribute, RelationSchema, Row

__all__ = ["MatchCriterion", "MatchRule"]


@dataclass(frozen=True)
class MatchCriterion:
    """One attribute-pair comparison: equal after normalization."""

    left_attr: str
    right_attr: str
    normalizer: Normalizer = identity

    def left_key(self, row: Row) -> Any:
        """The canonical value of the left attribute."""
        return self.normalizer(row[self.left_attr])

    def right_key(self, row: Row) -> Any:
        """The canonical value of the right attribute."""
        return self.normalizer(row[self.right_attr])


@dataclass(frozen=True)
class MatchRule:
    """Declares object identity between two relations.

    ``left_keys`` / ``right_keys`` are the attributes copied into the match
    table (usually each side's primary key); they are prefixed to avoid
    collisions, giving the match table schema
    ``name(l_<k1>, ..., r_<k1>, ...)``.
    """

    name: str
    left_relation: str
    right_relation: str
    criteria: Tuple[MatchCriterion, ...]
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise SchemaError(f"match rule {self.name!r} needs at least one criterion")
        if not self.left_keys or not self.right_keys:
            raise SchemaError(f"match rule {self.name!r} needs key attributes on both sides")

    # ------------------------------------------------------------------
    def schema(self) -> RelationSchema:
        """The match table's schema."""
        attrs = tuple(
            Attribute(f"l_{k}") for k in self.left_keys
        ) + tuple(Attribute(f"r_{k}") for k in self.right_keys)
        return RelationSchema(self.name, attrs, key=tuple(a.name for a in attrs))

    def signature_left(self, row: Row) -> Tuple[Any, ...]:
        """The canonical comparison vector of a left-side row."""
        return tuple(c.left_key(row) for c in self.criteria)

    def signature_right(self, row: Row) -> Tuple[Any, ...]:
        """The canonical comparison vector of a right-side row."""
        return tuple(c.right_key(row) for c in self.criteria)

    def matches(self, left_row: Row, right_row: Row) -> bool:
        """True when the rows denote the same object under this rule."""
        return self.signature_left(left_row) == self.signature_right(right_row)

    def pair(self, left_row: Row, right_row: Row) -> Row:
        """The match-table row pairing two matched tuples."""
        values = {f"l_{k}": left_row[k] for k in self.left_keys}
        values.update({f"r_{k}": right_row[k] for k in self.right_keys})
        return Row(values)
