"""Discrete-event simulation substrate.

Supplies deterministic simulated time (:class:`Clock`, :class:`Simulator`),
FIFO delayed message channels (:class:`Channel`), and the delay parameter
bundles of Theorem 7.2 (:class:`DelayProfile`, :class:`EnvironmentDelays`).
The integration semantics live elsewhere — this package is only time,
ordering, and message transport.

Channels and the simulator may carry a :class:`~repro.faults.FaultPlan`
(re-exported here for convenience): a deterministic, seedable schedule of
drops, duplicates, delays, reorders, and outage windows, consulted on
every transmission and delivery.
"""

from repro.faults.plan import ChannelFaults, FaultDecision, FaultPlan, OutageWindow
from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.network import Channel
from repro.sim.profiles import DelayProfile, EnvironmentDelays, ReplicationDelays
from repro.sim.scheduler import Simulator

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Channel",
    "Simulator",
    "DelayProfile",
    "EnvironmentDelays",
    "ReplicationDelays",
    "FaultPlan",
    "ChannelFaults",
    "FaultDecision",
    "OutageWindow",
]
