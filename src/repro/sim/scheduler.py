"""The discrete-event simulator driving sources, channels and the mediator.

A :class:`Simulator` owns the clock and the event queue.  Components
schedule work with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time); :meth:`Simulator.run` drains
events in deterministic ``(time, seq)`` order.

The simulator is deliberately minimal — all integration semantics live in
the mediator and source packages; this module only supplies time and
ordering.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0, fault_plan=None):
        """``fault_plan`` (a :class:`~repro.faults.FaultPlan`) is the
        simulation-wide fault schedule: channels created without their own
        plan inherit it, and any component may consult
        :meth:`outage_at` to learn whether a link is down right now."""
        self.clock = Clock(start_time)
        self.queue = EventQueue()
        self.fault_plan = fault_plan
        self._running = False
        self.events_processed = 0

    def outage_at(self, key: str):
        """The fault plan's outage window covering ``key`` at the current
        time, or ``None`` (also when no fault plan is installed)."""
        if self.fault_plan is None:
            return None
        return self.fault_plan.outage_at(key, self.now)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None], description: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.now + delay, action, description)

    def schedule_at(self, time: float, action: Callable[[], None], description: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time`` (must not be past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, action, description)

    def every(
        self,
        period: float,
        action: Callable[[], None],
        description: str = "",
        start_offset: Optional[float] = None,
    ) -> None:
        """Schedule ``action`` to repeat every ``period`` time units forever.

        Used for the mediator's periodic queue flush (``u_hold_delay`` policy)
        and for sources that announce on a fixed cadence.  The repetition only
        continues while the simulation keeps running, so a bounded
        :meth:`run_until` terminates normally.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = period if start_offset is None else start_offset

        def tick() -> None:
            action()
            self.schedule(period, tick, description)

        self.schedule(first, tick, description)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self.events_processed += 1
        return True

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` guards against runaway recurring schedules.
        """
        processed = 0
        while processed < max_events and self.step():
            processed += 1
        if processed >= max_events and self.queue:
            raise SimulationError(f"run() exceeded max_events={max_events}")
        return processed

    def run_until(self, end_time: float) -> int:
        """Run every event with time <= ``end_time``; then advance the clock.

        Events scheduled after ``end_time`` remain queued (and recurring
        schedules stop being expanded past the horizon).
        """
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
            processed += 1
        self.clock.advance_to(max(self.now, end_time))
        return processed
