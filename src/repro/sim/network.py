"""FIFO channels with delay, connecting sources to the mediator.

Section 4 assumes "the messages transferred from one source database to the
mediator must be in order and every source database sends all the updates
that reflect the difference between two database states in a single
undividable message".  :class:`Channel` models exactly that: per-channel
FIFO delivery with a configurable delay; delivery times are forced to be
non-decreasing even if the delay parameter changes between sends.

:meth:`Channel.expedite` supports the poll exchange of Section 6.3: a poll
answer travels the same FIFO as announcements, so everything the source sent
before answering is delivered first.  ``expedite`` delivers all in-flight
messages immediately (allowed — configured delays are upper bounds) so the
mediator's update queue is complete before the answer is processed, which is
what the Eager Compensation Algorithm relies on.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.scheduler import Simulator

__all__ = ["Channel"]


class Channel:
    """A FIFO, delayed, in-order message channel."""

    def __init__(
        self,
        simulator: Simulator,
        delay: float,
        deliver: Callable[[Any, float], None],
        name: str = "channel",
    ):
        """``deliver(message, send_time)`` is invoked at delivery time."""
        self.simulator = simulator
        self.delay = delay
        self.deliver = deliver
        self.name = name
        self._last_delivery_time = float("-inf")
        self._in_flight: List[Tuple[Event, Any, float]] = []
        self.messages_sent = 0
        self.messages_delivered = 0

    def send(self, message: Any) -> None:
        """Send ``message``; it is delivered after ``delay`` (FIFO order)."""
        send_time = self.simulator.now
        delivery_time = max(send_time + self.delay, self._last_delivery_time)
        self._last_delivery_time = delivery_time
        self.messages_sent += 1

        def on_delivery(msg=message, st=send_time) -> None:
            self._pop_in_flight(msg)
            self.messages_delivered += 1
            self.deliver(msg, st)

        event = self.simulator.schedule_at(
            delivery_time, on_delivery, f"{self.name}: deliver message"
        )
        self._in_flight.append((event, message, send_time))

    def _pop_in_flight(self, message: Any) -> None:
        for i, (_, msg, _) in enumerate(self._in_flight):
            if msg is message:
                del self._in_flight[i]
                return

    def in_flight_count(self) -> int:
        """Number of sent-but-undelivered messages."""
        return len(self._in_flight)

    def expedite(self) -> int:
        """Deliver all in-flight messages right now, preserving FIFO order.

        Returns the number of messages delivered.  Used when a poll answer
        must be ordered after all earlier announcements (Section 6.3).
        """
        pending = list(self._in_flight)
        self._in_flight.clear()
        for event, _, _ in pending:
            event.cancel()
        for _, message, send_time in pending:
            self.messages_delivered += 1
            self.deliver(message, send_time)
        return len(pending)
