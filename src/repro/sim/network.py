"""FIFO channels with delay, connecting sources to the mediator.

Section 4 assumes "the messages transferred from one source database to the
mediator must be in order and every source database sends all the updates
that reflect the difference between two database states in a single
undividable message".  :class:`Channel` models exactly that: per-channel
FIFO delivery with a configurable delay; delivery times are forced to be
non-decreasing even if the delay parameter changes between sends.

:meth:`Channel.expedite` supports the poll exchange of Section 6.3: a poll
answer travels the same FIFO as announcements, so everything the source sent
before answering is delivered first.  ``expedite`` delivers all in-flight
messages immediately (allowed — configured delays are upper bounds) so the
mediator's update queue is complete before the answer is processed, which is
what the Eager Compensation Algorithm relies on.

A channel may carry a :class:`~repro.faults.FaultPlan` (or inherit one from
its simulator), consulted on **every transmission and every delivery**:
messages can then be dropped, duplicated, delayed, reordered (a delayed
message stops holding back later ones), or swallowed by a scheduled outage
window at either send or delivery time.  Lost messages stay visible as
in-transit records until their nominal delivery time — but they are
*marked dropped*, and both :meth:`in_flight_count` and :meth:`expedite`
exclude them: expediting during an active fault window must never deliver
a message the plan already condemned (regression-pinned in
``tests/sim/test_fault_channel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import Event
from repro.sim.scheduler import Simulator

__all__ = ["Channel"]


@dataclass
class _Transit:
    """One scheduled (or condemned) physical delivery."""

    event: Event
    message: Any
    send_time: float
    dropped: bool = False
    duplicate: bool = False


class Channel:
    """A FIFO, delayed, in-order message channel (optionally faulty)."""

    def __init__(
        self,
        simulator: Simulator,
        delay: float,
        deliver: Callable[[Any, float], None],
        name: str = "channel",
        plan=None,
        fault_key: Optional[str] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        """``deliver(message, send_time)`` is invoked at delivery time.

        ``plan`` is an optional :class:`~repro.faults.FaultPlan`; when
        omitted, the simulator's ``fault_plan`` (if any) applies.
        ``fault_key`` is the name the plan knows this channel by (defaults
        to the channel name).  ``tracer`` receives ``fault_drop`` /
        ``fault_duplicate`` / ``fault_outage`` events when the plan acts.
        """
        self.tracer = tracer
        self.simulator = simulator
        self.delay = delay
        self.deliver = deliver
        self.name = name
        self.plan = plan if plan is not None else simulator.fault_plan
        self.fault_key = fault_key if fault_key is not None else name
        self._last_delivery_time = float("-inf")
        self._in_flight: List[_Transit] = []
        self._transmissions = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Any, attempt: int = 0) -> None:
        """Send ``message``; it is delivered after ``delay`` (FIFO order).

        With a fault plan attached, the plan decides this transmission's
        fate; ``attempt`` is the retransmission attempt number (0 for the
        first send), which reliability layers pass so retries draw fresh
        fates and eventually get through.
        """
        send_time = self.simulator.now
        decision = None
        if self.plan is not None:
            decision = self.plan.decide(
                self.fault_key, self._transmissions, attempt, send_time
            )
        self._transmissions += 1
        self.messages_sent += 1
        self._dispatch(message, send_time, decision)
        if decision is not None and not decision.drop:
            for _ in range(decision.duplicates):
                self.messages_duplicated += 1
                if self.tracer.enabled:
                    self.tracer.event("fault_duplicate", channel=self.fault_key)
                self._dispatch(message, send_time, decision, duplicate=True)

    def _dispatch(self, message, send_time, decision, duplicate: bool = False) -> None:
        extra = decision.extra_delay if decision is not None else 0.0
        delivery_time = send_time + self.delay + extra
        reordered = decision is not None and decision.reorder
        if not reordered:
            # FIFO floor: this message neither arrives before an earlier
            # one nor (unless reordered) lets later ones overtake it.
            delivery_time = max(delivery_time, self._last_delivery_time)
            self._last_delivery_time = delivery_time

        record = _Transit(
            event=None,  # type: ignore[arg-type]  # set right below
            message=message,
            send_time=send_time,
            duplicate=duplicate,
        )

        def on_delivery() -> None:
            self._on_delivery(record)

        record.event = self.simulator.schedule_at(
            delivery_time, on_delivery, f"{self.name}: deliver message"
        )
        self._in_flight.append(record)

        if decision is not None and decision.drop:
            # Lost in transit: the record remains visible until its nominal
            # delivery time (so observers can see the loss window), but it
            # is condemned — nothing may ever deliver it, expedite included.
            record.dropped = True
            record.event.cancel()
            self.messages_dropped += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "fault_drop", channel=self.fault_key, duplicate=duplicate
                )
            self.simulator.schedule_at(
                delivery_time,
                lambda: self._discard(record),
                f"{self.name}: lose message",
            )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _on_delivery(self, record: _Transit) -> None:
        self._remove(record)
        if record.dropped:
            return
        if self.plan is not None and self.plan.in_outage(
            self.fault_key, self.simulator.now
        ):
            # The link is down at arrival time: the message is lost even
            # though it was healthy when sent.
            self.messages_dropped += 1
            if self.tracer.enabled:
                self.tracer.event("fault_outage", channel=self.fault_key, at="delivery")
            return
        self.messages_delivered += 1
        self.deliver(record.message, record.send_time)

    def _discard(self, record: _Transit) -> None:
        self._remove(record)

    def _remove(self, record: _Transit) -> None:
        for i, candidate in enumerate(self._in_flight):
            if candidate is record:
                del self._in_flight[i]
                return

    def in_flight_count(self) -> int:
        """Number of sent-but-undelivered messages still eligible to arrive.

        Messages the fault plan already condemned are excluded — they can
        never be delivered, so counting them would make completeness checks
        (and poll-path expediting) wait on ghosts.
        """
        return sum(1 for record in self._in_flight if not record.dropped)

    def expedite(self) -> int:
        """Deliver all deliverable in-flight messages right now, in FIFO
        send order.

        Returns the number of messages delivered.  Used when a poll answer
        must be ordered after all earlier announcements (Section 6.3).
        Messages the fault plan marked as dropped — including everything
        swallowed by an active outage window — are discarded, never
        delivered: expediting is an early arrival, not a resurrection.
        """
        pending = list(self._in_flight)
        self._in_flight.clear()
        outage = self.plan is not None and self.plan.in_outage(
            self.fault_key, self.simulator.now
        )
        delivered = 0
        for record in pending:
            record.event.cancel()
            if record.dropped:
                continue  # condemned at send time; drop already counted
            if outage:
                self.messages_dropped += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "fault_outage", channel=self.fault_key, at="expedite"
                    )
                continue
            self.messages_delivered += 1
            delivered += 1
            self.deliver(record.message, record.send_time)
        return delivered
