"""Delay profiles: the timing parameters of Theorem 7.2.

Section 7 bounds view staleness in terms of six delay families:

* ``ann_delay_i`` — commit-to-announcement delay of source *i*;
* ``comm_delay_i`` — one-way message latency between source *i* and the
  mediator (symmetric, as in the paper);
* ``u_hold_delay_med`` — worst-case wait between an update arriving and the
  mediator starting the next update transaction (the queue-flush policy);
* ``u_proc_delay_med`` — worst-case update-transaction processing time,
  excluding source queries;
* ``q_proc_delay_i`` — worst-case time for source *i* to answer a query
  (0 when it is never queried);
* ``q_proc_delay_med`` — worst-case mediator-side QP/VAP processing time,
  excluding source queries.

:class:`DelayProfile` bundles per-source delays; :class:`EnvironmentDelays`
bundles everything, and computes the freshness vector ``f̄`` exactly as the
theorem defines it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.errors import SimulationError

__all__ = ["DelayProfile", "EnvironmentDelays", "ReplicationDelays"]


@dataclass(frozen=True)
class DelayProfile:
    """Per-source delays (all non-negative simulated time units)."""

    ann_delay: float = 0.0
    comm_delay: float = 0.0
    q_proc_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("ann_delay", "comm_delay", "q_proc_delay"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnvironmentDelays:
    """All delay bounds of an integration environment (Theorem 7.2 inputs)."""

    sources: Mapping[str, DelayProfile]
    u_hold_delay_med: float = 0.0
    u_proc_delay_med: float = 0.0
    q_proc_delay_med: float = 0.0

    def profile(self, source: str) -> DelayProfile:
        """The delay profile of one source."""
        try:
            return self.sources[source]
        except KeyError as exc:
            raise SimulationError(f"no delay profile for source {source!r}") from exc

    def polling_overhead(self, polled_sources: Sequence[str]) -> float:
        """Total worst-case query round-trip time over the polled sources.

        The theorem's term ``Σ_k (q_proc_delay_k + comm_delay_k)`` — the
        worst case has the mediator querying the sources serially.
        """
        return sum(
            self.profile(s).q_proc_delay + self.profile(s).comm_delay
            for s in polled_sources
        )

    def freshness_bound(
        self,
        materialized: Sequence[str],
        hybrid: Sequence[str] = (),
        virtual: Sequence[str] = (),
    ) -> Dict[str, float]:
        """The freshness vector ``f̄`` of Theorem 7.2.

        For a materialized- or hybrid-contributor ``DB_i``::

            f_i = ann_delay_i + comm_delay_i + u_hold_delay_med
                  + u_proc_delay_med + Σ_k (q_proc_delay_k + comm_delay_k)
                  + q_proc_delay_med

        For a virtual-contributor ``DB_j``::

            f_j = Σ_k (q_proc_delay_k + comm_delay_k) + q_proc_delay_med

        The theorem's worst-case sum nominally ranges over all *n* sources;
        a source that is never queried contributes nothing to the worst
        case (its ``q_proc_delay`` is 0 by the paper's own convention and no
        query round-trip to it ever happens), so the sum here ranges over the
        sources that *can* be queried: the hybrid- and virtual-contributors.
        """
        queryable = [s for s in self.sources if s in set(hybrid) | set(virtual)]
        poll_term = self.polling_overhead(queryable) + self.q_proc_delay_med
        bound: Dict[str, float] = {}
        for name in list(materialized) + list(hybrid):
            p = self.profile(name)
            bound[name] = (
                p.ann_delay
                + p.comm_delay
                + self.u_hold_delay_med
                + self.u_proc_delay_med
                + poll_term
            )
        for name in virtual:
            bound[name] = poll_term
        return bound

    def materialized_only_bound(self, source: str) -> float:
        """Freshness for a materialized-contributor when queries touch only
        materialized data (the tighter bound sketched at the end of Section 7:
        no polling term applies)."""
        p = self.profile(source)
        return p.ann_delay + p.comm_delay + self.u_hold_delay_med + self.u_proc_delay_med

    def replica_freshness_bound(
        self,
        replication: "ReplicationDelays",
        materialized: Sequence[str],
        hybrid: Sequence[str] = (),
        virtual: Sequence[str] = (),
    ) -> Dict[str, float]:
        """Theorem 7.2 extended to a WAL-shipped read replica.

        A replica's copy of the view lags the primary's by the shipping
        pipeline on top of every primary-side term: each source's
        freshness bound grows by :meth:`ReplicationDelays.lag_bound`.
        """
        primary = self.freshness_bound(materialized, hybrid, virtual)
        extra = replication.lag_bound()
        return {name: value + extra for name, value in primary.items()}

    @classmethod
    def uniform(
        cls,
        source_names: Sequence[str],
        ann_delay: float = 0.0,
        comm_delay: float = 0.0,
        q_proc_delay: float = 0.0,
        u_hold_delay_med: float = 0.0,
        u_proc_delay_med: float = 0.0,
        q_proc_delay_med: float = 0.0,
    ) -> "EnvironmentDelays":
        """Same profile for every source — the common benchmark setup."""
        profile = DelayProfile(ann_delay, comm_delay, q_proc_delay)
        return cls(
            {name: profile for name in source_names},
            u_hold_delay_med,
            u_proc_delay_med,
            q_proc_delay_med,
        )


@dataclass(frozen=True)
class ReplicationDelays:
    """Replica-side delay terms: the shipping pipeline's contribution.

    A WAL-shipped replica sees a committed transaction after
    ``ship_delay`` (commit-to-ship plus one-way channel latency) and
    applies it within ``apply_delay``.  Between records the replica only
    learns it is *current* from heartbeats, so one ``heartbeat_interval``
    of ignorance is always possible — :meth:`lag_bound` is the worst-case
    ignorance window a healthy (non-resyncing) replica can accumulate,
    the per-replica term the :class:`~repro.replication.ReadRouter`
    compares staleness budgets against.
    """

    ship_delay: float = 1.0
    apply_delay: float = 0.0
    heartbeat_interval: float = 1.0

    def __post_init__(self) -> None:
        for name in ("ship_delay", "apply_delay", "heartbeat_interval"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")

    def lag_bound(self) -> float:
        """Worst-case healthy-replica ignorance window (time units)."""
        return self.ship_delay + self.apply_delay + self.heartbeat_interval
