"""Event queue for the discrete-event simulator.

Events carry a time, a deterministic tie-breaking sequence number, a
zero-argument action, and a human-readable description (useful when tracing
a run).  The queue is a binary heap ordered by ``(time, seq)``; because
``seq`` is unique, event ordering — and therefore every simulation — is
fully deterministic, matching the paper's "no two events occur at precisely
the same time" assumption.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled simulator event."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Callable[[], None], description: str = "") -> Event:
        """Schedule ``action`` at ``time``; returns the (cancellable) event."""
        event = Event(time, next(self._seq), action, description)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """The time of the earliest pending event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0
