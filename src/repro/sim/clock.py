"""Simulated global time.

Section 3 of the paper models global time as a totally ordered set isomorphic
to (a subset of) the reals, used *only* by the correctness definitions — "we
do not require that any of the database processes have knowledge of the
global time".  The reproduction keeps that discipline: :class:`Clock` is
owned by the event loop and read by the correctness observers; mediator and
source code never consults it for protocol decisions.

The paper also assumes no two events occur at precisely the same time; the
event queue guarantees this with a deterministic tie-breaking sequence
number, so traces are strictly ordered even when delays coincide.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (never backward)."""
        if time < self._now:
            raise SimulationError(f"clock cannot move backward: {self._now} -> {time}")
        self._now = float(time)
